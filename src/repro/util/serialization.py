"""JSON (de)serialization of configurations and experiment payloads.

Snapshots are plain JSON so runs can be archived, diffed, and reloaded
across library versions.  The format stores nodes and colors as parallel
lists plus the color-class count.

Two node orderings are supported:

* ``sort_nodes=True`` (default) — canonical sorted order, best for
  archival snapshots and diffs;
* ``sort_nodes=False`` — preserves the system's insertion order, which
  is what the parallel sweep backend uses: the chain's particle list is
  built from dict order, so an order-preserving round trip reproduces
  the *identical* trajectory a worker process would have seen in the
  parent.

This module also carries the generic versioned payload envelope used by
:mod:`repro.experiments.parallel` to serialize ``(params, replica,
seed)`` sweep tasks and their per-cell checkpoint results.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Union

from repro.system.configuration import ParticleSystem

FORMAT_VERSION = 1

#: Version tag of the generic payload envelope (sweep tasks/results).
PAYLOAD_FORMAT_VERSION = 1


def configuration_to_json(system: ParticleSystem, sort_nodes: bool = True) -> str:
    """Serialize a system to a JSON string.

    With ``sort_nodes=False`` the occupied nodes are emitted in the
    system's own dict order so that deserializing rebuilds a system with
    identical iteration order (trajectory-faithful round trips).
    """
    nodes = sorted(system.colors) if sort_nodes else list(system.colors)
    payload = {
        "format_version": FORMAT_VERSION,
        "num_colors": system.num_colors,
        "nodes": [list(node) for node in nodes],
        "colors": [system.colors[node] for node in nodes],
    }
    return json.dumps(payload)


def configuration_from_json(text: str) -> ParticleSystem:
    """Deserialize a system from a JSON string produced by this module."""
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported configuration format version: {version}")
    nodes = [tuple(node) for node in payload["nodes"]]
    colors = payload["colors"]
    return ParticleSystem.from_nodes(
        nodes, colors, num_colors=payload["num_colors"]
    )


def save_configuration(system: ParticleSystem, path: Union[str, Path]) -> None:
    """Write a system snapshot to ``path``."""
    Path(path).write_text(configuration_to_json(system))


def load_configuration(path: Union[str, Path]) -> ParticleSystem:
    """Read a system snapshot from ``path``."""
    return configuration_from_json(Path(path).read_text())


# ----------------------------------------------------------------------
# Generic versioned payloads (sweep tasks and per-cell checkpoints)
# ----------------------------------------------------------------------


def payload_to_json(payload: Mapping[str, Any]) -> str:
    """Wrap a JSON-able mapping in a versioned envelope."""
    envelope = {
        "format_version": PAYLOAD_FORMAT_VERSION,
        "payload": dict(payload),
    }
    return json.dumps(envelope)


def payload_from_json(text: str) -> Dict[str, Any]:
    """Unwrap a versioned payload envelope produced by this module."""
    envelope = json.loads(text)
    version = envelope.get("format_version")
    if version != PAYLOAD_FORMAT_VERSION:
        raise ValueError(f"unsupported payload format version: {version}")
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise ValueError("payload envelope missing its payload mapping")
    return payload


def _fsync_directory(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    ``os.replace`` makes the rename atomic with respect to crashes of
    the *process*, but the new directory entry itself lives in the
    page cache until the directory inode is flushed — a power cut can
    still lose the whole file.  Some platforms/filesystems refuse to
    fsync a directory fd; that is a durability downgrade, not an
    error, so failures are swallowed.
    """
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


def save_payload(payload: Mapping[str, Any], path: Union[str, Path]) -> None:
    """Atomically write a payload envelope to ``path``.

    Writes to a *uniquely named* sibling temp file (``mkstemp`` in the
    target directory — a fixed ``<name>.tmp`` let two sweeps sharing a
    checkpoint dir, or a retried task racing its first attempt, clobber
    each other's half-written bytes), fsyncs, ``os.replace``\\ s it
    into place, then fsyncs the parent directory so the rename itself
    is durable across power loss — a checkpoint killed mid-write never
    leaves a truncated JSON file for ``--resume`` to trip over.
    Leftover temp files from hard kills are removed by
    :func:`sweep_stale_temp_files` on engine start.
    """
    target = Path(path)
    descriptor, temp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(payload_to_json(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, target)
        _fsync_directory(target.parent)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def save_bytes(data: bytes, path: Union[str, Path]) -> None:
    """Atomically write raw bytes to ``path``.

    The binary twin of :func:`save_payload` — same unique-temp-file +
    fsync + ``os.replace`` dance, used for the columnar checkpoints of
    :mod:`repro.util.codec` so a hard kill mid-write can never leave a
    truncated binary checkpoint for ``--resume`` to trip over.
    """
    target = Path(path)
    descriptor, temp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, target)
        _fsync_directory(target.parent)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def sweep_stale_temp_files(directory: Union[str, Path]) -> int:
    """Remove leftover temp/orphaned files from hard-killed writes.

    Reaps three kinds of debris:

    * ``*.tmp`` — half-written payload temp files from a writer killed
      between ``mkstemp`` and ``os.replace``;
    * ``cell-*.hb`` — worker heartbeat files; these are pure liveness
      signals for the *current* engine run, so any found at start are
      leftovers from a dead run;
    * orphaned ``cell-<key>.state.bin`` mid-run state snapshots whose
      cell already has a committed checkpoint (``cell-<key>.bin`` or
      ``cell-<key>.json``) — the checkpoint supersedes the snapshot,
      which only survives when the parent was killed between the
      checkpoint commit and the snapshot cleanup.  State files for
      cells *without* a checkpoint are live resume material and are
      left alone.

    Returns the number of files removed.  Safe to call concurrently
    with live writers only at engine *start* (before any checkpoints
    are written); races with another engine's in-flight temp files are
    tolerated (a vanished file is simply skipped).
    """
    removed = 0
    root = Path(directory)
    for stale in root.glob("*.tmp"):
        try:
            stale.unlink()
            removed += 1
        except OSError:
            continue
    for beat in root.glob("cell-*.hb"):
        try:
            beat.unlink()
            removed += 1
        except OSError:
            continue
    for state in root.glob("cell-*.state.bin"):
        stem = state.name[: -len(".state.bin")]
        if not any(
            (root / f"{stem}{suffix}").exists() for suffix in (".bin", ".json")
        ):
            continue
        try:
            state.unlink()
            removed += 1
        except OSError:
            continue
    return removed


def load_payload(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a payload envelope from ``path``."""
    return payload_from_json(Path(path).read_text())
