"""JSON (de)serialization of particle-system configurations.

Snapshots are plain JSON so runs can be archived, diffed, and reloaded
across library versions.  The format stores nodes and colors as parallel
lists plus the color-class count.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.system.configuration import ParticleSystem

FORMAT_VERSION = 1


def configuration_to_json(system: ParticleSystem) -> str:
    """Serialize a system to a JSON string."""
    nodes = sorted(system.colors)
    payload = {
        "format_version": FORMAT_VERSION,
        "num_colors": system.num_colors,
        "nodes": [list(node) for node in nodes],
        "colors": [system.colors[node] for node in nodes],
    }
    return json.dumps(payload)


def configuration_from_json(text: str) -> ParticleSystem:
    """Deserialize a system from a JSON string produced by this module."""
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported configuration format version: {version}")
    nodes = [tuple(node) for node in payload["nodes"]]
    colors = payload["colors"]
    return ParticleSystem.from_nodes(
        nodes, colors, num_colors=payload["num_colors"]
    )


def save_configuration(system: ParticleSystem, path: Union[str, Path]) -> None:
    """Write a system snapshot to ``path``."""
    Path(path).write_text(configuration_to_json(system))


def load_configuration(path: Union[str, Path]) -> ParticleSystem:
    """Read a system snapshot from ``path``."""
    return configuration_from_json(Path(path).read_text())
