"""Binary columnar codec for configurations and cell checkpoints.

JSON serialization (:mod:`repro.util.serialization`) is the archival
format: human-readable, diffable, stable.  It is also what the sweep
engine used to ship on *every* worker dispatch, checkpoint write, and
resume — and at paper scale (thousands of cells, snapshot stacks per
cell) the engine spent more time printing and parsing decimal integers
than the kernels spent flipping particles.

This module is the hot-path alternative: a particle configuration is
packed as two NumPy columns — an ``(n, 2)`` integer coordinate array
and an ``(n,)`` color array — zlib-compressed and wrapped in a small
versioned envelope.  Decoding rebuilds the ``ParticleSystem`` without
re-counting edges: the incremental counters travel in the envelope
header (guarded by a CRC over the payload), so a decode is a dict
construction, not an O(n·deg) graph walk.

Two container layers share the same framing:

* **Configuration blobs** (:func:`encode_configuration` /
  :func:`decode_configuration`) — one system, column order preserved.
  Node *insertion order* is the chain's particle indexing, so the
  columns are emitted in dict order and a round trip is
  trajectory-faithful, exactly like ``sort_nodes=False`` JSON.
* **Checkpoint blobs** (:func:`encode_checkpoint` /
  :func:`decode_checkpoint`) — one engine result payload: scalar
  fields in the header, the final configuration and every snapshot as
  nested blobs.  Snapshots can be CRC-validated *without* decoding
  (:func:`validate_blob`), which is what makes the engine's lazy
  snapshot decode safe.

Every decoding error — bad magic, truncated frame, CRC mismatch,
malformed header, zlib failure — surfaces as ``ValueError`` so callers
(checkpoint resume, result validation) handle binary corruption through
the same paths as corrupt JSON.

Setting ``REPRO_DEBUG_CODEC=1`` makes every configuration decode
recount the edge totals from scratch and compare them against the
envelope's counters — the belt-and-braces mode for soak runs.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.system.configuration import ParticleSystem

#: Frame magics: configuration blobs, checkpoint containers, and
#: mid-run chain-state snapshots.
CONFIG_MAGIC = b"RBC1"
CHECKPOINT_MAGIC = b"RBK1"
STATE_MAGIC = b"RBS1"

#: Version recorded inside every envelope header.
CODEC_VERSION = 1

#: zlib level — integer columns compress well even at the fastest
#: setting, and encode throughput is the whole point of this module.
COMPRESS_LEVEL = 1

_HEADER_LEN = struct.Struct("<I")

#: Debug knob: recount counters on every decode and cross-check.
DEBUG_ENV = "REPRO_DEBUG_CODEC"


def is_binary_blob(data: Any) -> bool:
    """True when ``data`` looks like one of this module's frames."""
    return isinstance(data, (bytes, bytearray, memoryview)) and bytes(
        data[:4]
    ) in (CONFIG_MAGIC, CHECKPOINT_MAGIC, STATE_MAGIC)


# ----------------------------------------------------------------------
# Framing: magic + header JSON + zlib-compressed column bytes
# ----------------------------------------------------------------------


def _pack(magic: bytes, header: Dict[str, Any], body: bytes) -> bytes:
    header = dict(header)
    header["v"] = CODEC_VERSION
    header["crc"] = zlib.crc32(body) & 0xFFFFFFFF
    header["blen"] = len(body)
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    return b"".join(
        (magic, _HEADER_LEN.pack(len(header_bytes)), header_bytes, body)
    )


def _split(blob: bytes, magic: bytes) -> Tuple[Dict[str, Any], bytes]:
    """Parse a frame into (header, body), validating everything cheap.

    The CRC over the body *is* checked here — it covers the compressed
    bytes, so it runs at memory bandwidth without decompressing.
    """
    blob = bytes(blob)
    if len(blob) < 8 or blob[:4] != magic:
        raise ValueError(
            f"bad codec frame: expected magic {magic!r}, "
            f"got {blob[:4]!r} ({len(blob)} bytes)"
        )
    (header_len,) = _HEADER_LEN.unpack_from(blob, 4)
    header_end = 8 + header_len
    if header_end > len(blob):
        raise ValueError("truncated codec frame: header overruns blob")
    try:
        header = json.loads(blob[8:header_end].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"corrupt codec header: {error}") from error
    if not isinstance(header, dict):
        raise ValueError("corrupt codec header: not a mapping")
    if header.get("v") != CODEC_VERSION:
        raise ValueError(
            f"unsupported codec version {header.get('v')!r}"
        )
    body = blob[header_end:]
    if len(body) != header.get("blen"):
        raise ValueError(
            f"truncated codec frame: body {len(body)} bytes, "
            f"header promised {header.get('blen')!r}"
        )
    if (zlib.crc32(body) & 0xFFFFFFFF) != header.get("crc"):
        raise ValueError("codec frame CRC mismatch (corrupt body)")
    return header, body


def _pack_columns(
    meta: Dict[str, Any], columns: Sequence[Tuple[str, np.ndarray]]
) -> bytes:
    descriptors = []
    parts = []
    for name, array in columns:
        array = np.ascontiguousarray(array)
        descriptors.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
            }
        )
        parts.append(array.tobytes())
    raw = b"".join(parts)
    header = {
        "meta": dict(meta),
        "cols": descriptors,
        "rlen": len(raw),
    }
    return _pack(CONFIG_MAGIC, header, zlib.compress(raw, COMPRESS_LEVEL))


def _unpack_columns(
    blob: bytes,
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    header, body = _split(blob, CONFIG_MAGIC)
    try:
        raw = zlib.decompress(body)
    except zlib.error as error:
        raise ValueError(f"codec body failed to decompress: {error}") from error
    if len(raw) != header.get("rlen"):
        raise ValueError(
            f"codec body decompressed to {len(raw)} bytes, "
            f"header promised {header.get('rlen')!r}"
        )
    columns: Dict[str, np.ndarray] = {}
    offset = 0
    try:
        for descriptor in header["cols"]:
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(descriptor["shape"])
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            end = offset + count * dtype.itemsize
            if end > len(raw):
                raise ValueError("codec column overruns body")
            columns[descriptor["name"]] = np.frombuffer(
                raw, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
            offset = end
    except (KeyError, TypeError) as error:
        raise ValueError(f"corrupt codec column table: {error}") from error
    if offset != len(raw):
        raise ValueError("codec body has trailing bytes after last column")
    meta = header.get("meta")
    if not isinstance(meta, dict):
        raise ValueError("codec header missing its meta mapping")
    return meta, columns


def validate_blob(blob: bytes) -> None:
    """Structurally validate a configuration blob without decoding it.

    Checks the magic, header JSON, declared body length, and the CRC
    over the (still-compressed) body — enough to detect every
    truncation/bit-rot mode the chaos tests inject, at a fraction of
    the cost of building the ``ParticleSystem``.  Raises ``ValueError``
    on any problem.
    """
    header, _ = _split(blob, CONFIG_MAGIC)
    meta = header.get("meta")
    if not isinstance(meta, dict) or meta.get("kind") != "configuration":
        raise ValueError("codec blob is not a configuration frame")


# ----------------------------------------------------------------------
# Configurations
# ----------------------------------------------------------------------


def _color_dtype(num_colors: int) -> np.dtype:
    return np.dtype(np.uint8 if num_colors <= 255 else np.int32)


def encode_columns(
    x: np.ndarray,
    y: np.ndarray,
    colors: np.ndarray,
    num_colors: int,
    edge_total: int,
    hetero_total: int,
) -> bytes:
    """Encode a configuration directly from coordinate/color columns.

    The zero-copy path for array-native producers (the batch kernel
    exports its replicas as columns without materializing a dict).
    Row order must be the intended particle insertion order.
    """
    n = len(colors)
    xy = np.empty((n, 2), dtype=np.int32)
    xy[:, 0] = x
    xy[:, 1] = y
    meta = {
        "kind": "configuration",
        "n": n,
        "num_colors": int(num_colors),
        "edge_total": int(edge_total),
        "hetero_total": int(hetero_total),
    }
    return _pack_columns(
        meta,
        (
            ("xy", xy),
            ("colors", np.asarray(colors, dtype=_color_dtype(num_colors))),
        ),
    )


def encode_configuration(system: ParticleSystem) -> bytes:
    """Encode a system as a columnar blob, preserving insertion order."""
    nodes = list(system.colors)
    xy = np.array(nodes, dtype=np.int32).reshape(len(nodes), 2)
    colors = np.fromiter(
        system.colors.values(),
        dtype=_color_dtype(system.num_colors),
        count=len(nodes),
    )
    meta = {
        "kind": "configuration",
        "n": len(nodes),
        "num_colors": system.num_colors,
        "edge_total": system.edge_total,
        "hetero_total": system.hetero_total,
    }
    return _pack_columns(meta, (("xy", xy), ("colors", colors)))


def decode_configuration(blob: bytes) -> ParticleSystem:
    """Decode a configuration blob back into a ``ParticleSystem``.

    The system is assembled directly — node dict in recorded column
    order, edge counters restored from the (CRC-guarded) header — so
    decoding skips the O(n·deg) neighbor recount the JSON path pays in
    the ``ParticleSystem`` constructor.  Trajectories are therefore
    bit-identical to a JSON round trip at a fraction of the cost.
    """
    meta, columns = _unpack_columns(blob)
    if meta.get("kind") != "configuration":
        raise ValueError(
            f"expected a configuration blob, got kind={meta.get('kind')!r}"
        )
    try:
        n = int(meta["n"])
        num_colors = int(meta["num_colors"])
        edge_total = int(meta["edge_total"])
        hetero_total = int(meta["hetero_total"])
        xy = columns["xy"]
        color_column = columns["colors"]
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"corrupt configuration meta: {error}") from error
    if xy.shape != (n, 2) or color_column.shape != (n,):
        raise ValueError(
            f"configuration columns have shapes {xy.shape}/"
            f"{color_column.shape}, expected ({n}, 2)/({n},)"
        )
    colors = dict(
        zip((tuple(pair) for pair in xy.tolist()), color_column.tolist())
    )
    if len(colors) != n:
        raise ValueError("configuration blob contains duplicate nodes")
    system = ParticleSystem.__new__(ParticleSystem)
    system.colors = colors
    system.num_colors = num_colors
    system.edge_total = edge_total
    system.hetero_total = hetero_total
    if os.environ.get(DEBUG_ENV):
        reference = ParticleSystem(dict(colors), num_colors=num_colors)
        if (reference.edge_total, reference.hetero_total) != (
            edge_total,
            hetero_total,
        ):
            raise ValueError(
                f"configuration counters disagree with recount: "
                f"stored ({edge_total}, {hetero_total}), recounted "
                f"({reference.edge_total}, {reference.hetero_total})"
            )
    return system


# ----------------------------------------------------------------------
# Checkpoint container: scalars + final + snapshot stack in one file
# ----------------------------------------------------------------------

#: Result payload keys embedded in the checkpoint header (everything
#: except the configuration blobs themselves).
_SCALAR_KEYS_EXCLUDED = ("final", "snapshots")

#: Adaptive-execution stop metadata (schema extension, PR "adaptive"):
#: the scalar keys an adaptive run records in the checkpoint header,
#: with the defaults a legacy checkpoint (written before the extension)
#: decodes to.  ``stop_reason`` is one of the
#: :mod:`repro.obs.convergence` ``STOP_*`` constants; ``ess_at_stop``
#: is the worst-stream ESS when the cell stopped; ``budget_steps`` is
#: the fixed budget the adaptive run was capped by; ``warm_parent`` /
#: ``warm_digest`` are the warm-start provenance (parent task key and
#: the digest of the inherited initial configuration — the same digest
#: that participates in the task identity, so a stale parent already
#: invalidates the checkpoint key).  The keys ride in the ordinary
#: header meta, so the container format itself is unchanged and old
#: readers ignore them.
STOP_METADATA_DEFAULTS: Dict[str, Any] = {
    "stop_reason": None,
    "ess_at_stop": None,
    "budget_steps": None,
    "warm_parent": None,
    "warm_digest": None,
}


def stop_metadata(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The stop-metadata view of a checkpoint payload, with defaults.

    Works on payloads from :func:`decode_checkpoint`,
    :func:`peek_checkpoint_meta`, or the legacy JSON loader; payloads
    written before the adaptive extension yield the defaults (a fixed
    budget run with nothing recorded).
    """
    return {
        key: payload.get(key, default)
        for key, default in STOP_METADATA_DEFAULTS.items()
    }


def encode_checkpoint(payload: Dict[str, Any]) -> bytes:
    """Serialize an engine result payload as one binary checkpoint.

    Scalar fields ride in the header; ``final`` and each entry of
    ``snapshots`` are stored as length-prefixed items.  Items may be
    configuration blobs (bytes) or legacy JSON strings — the engine
    writes blobs, but mixed payloads survive a round trip unchanged.
    """
    items: List[Union[bytes, str]] = [payload["final"]]
    items.extend(payload["snapshots"])
    kinds = []
    parts = []
    for item in items:
        if isinstance(item, (bytes, bytearray)):
            kinds.append("b")
            parts.append(bytes(item))
        elif isinstance(item, str):
            kinds.append("j")
            parts.append(item.encode())
        else:
            raise ValueError(
                f"checkpoint item must be bytes or str, "
                f"got {type(item).__name__}"
            )
    meta = {
        key: value
        for key, value in payload.items()
        if key not in _SCALAR_KEYS_EXCLUDED
    }
    header = {
        "meta": meta,
        "items": [
            {"kind": kind, "len": len(part)}
            for kind, part in zip(kinds, parts)
        ],
    }
    return _pack(CHECKPOINT_MAGIC, header, b"".join(parts))


def peek_checkpoint_meta(blob: bytes) -> Dict[str, Any]:
    """Header scalars of a binary checkpoint (CRC-validated, no decode)."""
    header, _ = _split(blob, CHECKPOINT_MAGIC)
    meta = header.get("meta")
    if not isinstance(meta, dict):
        raise ValueError("checkpoint header missing its meta mapping")
    return dict(meta)


def decode_checkpoint(blob: bytes) -> Dict[str, Any]:
    """Rebuild a result payload from a binary checkpoint.

    The returned payload carries the final configuration and snapshots
    as *still-encoded* items (bytes blobs or JSON strings) — decoding
    them is the caller's choice, which is what keeps resume-time
    snapshot decode lazy.  Every blob item is structurally validated
    (magic + CRC) here so a corrupt checkpoint fails the load, not a
    later lazy access.
    """
    header, body = _split(blob, CHECKPOINT_MAGIC)
    meta = header.get("meta")
    table = header.get("items")
    if not isinstance(meta, dict) or not isinstance(table, list):
        raise ValueError("corrupt checkpoint header")
    if not table:
        raise ValueError("checkpoint container holds no items")
    items: List[Union[bytes, str]] = []
    offset = 0
    for entry in table:
        try:
            kind = entry["kind"]
            length = int(entry["len"])
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(
                f"corrupt checkpoint item table: {error}"
            ) from error
        end = offset + length
        if end > len(body):
            raise ValueError("checkpoint item overruns container body")
        part = body[offset:end]
        offset = end
        if kind == "b":
            validate_blob(part)
            items.append(part)
        elif kind == "j":
            items.append(part.decode())
        else:
            raise ValueError(f"unknown checkpoint item kind {kind!r}")
    if offset != len(body):
        raise ValueError("checkpoint container has trailing bytes")
    payload = dict(meta)
    payload["final"] = items[0]
    payload["snapshots"] = items[1:]
    return payload


# ----------------------------------------------------------------------
# State frames: crash-consistent mid-run chain snapshots (``RBS1``)
# ----------------------------------------------------------------------

#: State payload keys that are *not* header scalars.
_STATE_KEYS_EXCLUDED = ("items", "columns")


def encode_state(payload: Dict[str, Any]) -> bytes:
    """Serialize a mid-run chain-state snapshot as one ``RBS1`` frame.

    A state payload is a durability record, not an archive: it carries
    everything a worker needs to resume a cell *mid-run* and replay to
    a bit-identical final result.  Structure:

    * scalar/JSON fields (RNG state, counters, buffer tails, estimator
      payloads, progress bookkeeping) ride in the CRC-guarded header;
    * ``items`` — an optional list of nested configuration blobs
      (bytes) or legacy JSON configuration strings, length-prefixed in
      the body exactly like checkpoint items (the restored chain's
      configuration, plus any checkpoint snapshots already produced);
    * ``columns`` — an optional mapping of named NumPy arrays (the
      batch kernel's arenas, proposal streams, and cursors), packed as
      one nested columnar blob.

    Corruption anywhere — magic, header, item table, nested blob CRCs —
    surfaces as ``ValueError``, so a loader can always fall back to a
    cold start through the same path as a corrupt checkpoint.
    """
    items: List[Union[bytes, str]] = list(payload.get("items") or ())
    kinds = []
    parts = []
    for item in items:
        if isinstance(item, (bytes, bytearray)):
            kinds.append("b")
            parts.append(bytes(item))
        elif isinstance(item, str):
            kinds.append("j")
            parts.append(item.encode())
        else:
            raise ValueError(
                f"state item must be bytes or str, got {type(item).__name__}"
            )
    columns = payload.get("columns") or {}
    if columns:
        kinds.append("c")
        parts.append(
            _pack_columns(
                {"kind": "state-columns"},
                tuple(
                    (name, np.asarray(array))
                    for name, array in columns.items()
                ),
            )
        )
    meta = {
        key: value
        for key, value in payload.items()
        if key not in _STATE_KEYS_EXCLUDED
    }
    header = {
        "meta": meta,
        "items": [
            {"kind": kind, "len": len(part)}
            for kind, part in zip(kinds, parts)
        ],
    }
    return _pack(STATE_MAGIC, header, b"".join(parts))


def peek_state_meta(blob: bytes) -> Dict[str, Any]:
    """Header scalars of a state frame (CRC-validated, no item decode)."""
    header, _ = _split(blob, STATE_MAGIC)
    meta = header.get("meta")
    if not isinstance(meta, dict):
        raise ValueError("state header missing its meta mapping")
    return dict(meta)


def decode_state(blob: bytes) -> Dict[str, Any]:
    """Rebuild a state payload from an ``RBS1`` frame.

    Returns the header scalars plus ``items`` (still-encoded
    configuration blobs / JSON strings, each structurally validated)
    and ``columns`` (named NumPy arrays, empty dict when the frame
    carries none).  Raises ``ValueError`` on any corruption.
    """
    header, body = _split(blob, STATE_MAGIC)
    meta = header.get("meta")
    table = header.get("items")
    if not isinstance(meta, dict) or not isinstance(table, list):
        raise ValueError("corrupt state header")
    items: List[Union[bytes, str]] = []
    columns: Dict[str, np.ndarray] = {}
    offset = 0
    for entry in table:
        try:
            kind = entry["kind"]
            length = int(entry["len"])
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"corrupt state item table: {error}") from error
        end = offset + length
        if end > len(body):
            raise ValueError("state item overruns frame body")
        part = body[offset:end]
        offset = end
        if kind == "b":
            validate_blob(part)
            items.append(part)
        elif kind == "j":
            items.append(part.decode())
        elif kind == "c":
            column_meta, columns = _unpack_columns(part)
            if column_meta.get("kind") != "state-columns":
                raise ValueError("state frame column blob has wrong kind")
        else:
            raise ValueError(f"unknown state item kind {kind!r}")
    if offset != len(body):
        raise ValueError("state frame has trailing bytes")
    payload = dict(meta)
    payload["items"] = items
    payload["columns"] = columns
    return payload
