"""Shared utilities: seeded RNG helpers and configuration serialization."""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    load_configuration,
    save_configuration,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "configuration_to_json",
    "configuration_from_json",
    "save_configuration",
    "load_configuration",
]
