"""Shared utilities: seeded RNG helpers and configuration serialization."""

from repro.util.rng import (
    derive_seed,
    make_rng,
    seed_entropy,
    spawn_rngs,
    uniform_chunk,
)
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    load_configuration,
    load_payload,
    payload_from_json,
    payload_to_json,
    save_configuration,
    save_payload,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "derive_seed",
    "seed_entropy",
    "uniform_chunk",
    "configuration_to_json",
    "configuration_from_json",
    "save_configuration",
    "load_configuration",
    "payload_to_json",
    "payload_from_json",
    "save_payload",
    "load_payload",
]
