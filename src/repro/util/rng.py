"""Random-number-generator helpers.

All stochastic components of the library accept either a seed or a
``random.Random`` instance.  Centralizing the coercion logic here keeps
every simulation reproducible: passing the same integer seed to any entry
point yields bit-identical trajectories.

The hot simulation loops use the standard-library ``random.Random`` rather
than ``numpy.random.Generator`` because scalar draws from the former are
several times faster, and Markov-chain steps are irreducibly scalar.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Union

RngLike = Union[int, random.Random, None]


def make_rng(seed: RngLike = None) -> random.Random:
    """Coerce ``seed`` into a ``random.Random`` instance.

    Accepts an integer seed, an existing ``random.Random`` (returned
    unchanged, so callers can share one stream), or ``None`` for an
    OS-seeded generator.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rngs(seed: RngLike, count: int) -> List[random.Random]:
    """Derive ``count`` independent generators from one seed.

    Used by the distributed schedulers, where each particle carries its own
    stream so that activation order does not perturb per-particle
    randomness.  Derivation is deterministic: the parent stream draws one
    64-bit integer per child.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = make_rng(seed)
    return [random.Random(parent.getrandbits(64)) for _ in range(count)]


def uniform_chunk(rng: random.Random, count: int) -> List[float]:
    """Draw ``count`` uniform variates from ``rng`` in one batch.

    The values are exactly the ones ``count`` sequential ``rng.random()``
    calls would produce, so a consumer that buffers a chunk and serves it
    in order sees the identical stream — this is what lets the batched
    fast path of :meth:`repro.core.separation_chain.SeparationChain.run`
    reproduce the reference single-step path bit for bit.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    draw = rng.random
    return [draw() for _ in range(count)]


def seed_entropy(seed: RngLike) -> int:
    """Collapse an ``RngLike`` into an integer entropy base.

    * integers pass through unchanged (so integer-seeded runs keep their
      historical trajectories);
    * a ``random.Random`` contributes one 64-bit draw, advancing its
      stream — two generators in different states therefore yield
      different bases (previously such seeds silently degraded to ``0``,
      giving every sweep identical replica seeds);
    * ``None`` draws fresh OS entropy;
    * anything else raises ``TypeError`` instead of silently degrading.
    """
    if isinstance(seed, int):
        return seed
    if isinstance(seed, random.Random):
        return seed.getrandbits(64)
    if seed is None:
        return random.SystemRandom().getrandbits(64)
    raise TypeError(
        f"cannot derive seed entropy from {type(seed).__name__}; "
        "pass an int, random.Random, or None"
    )


def derive_seed(base: int, *parts: object) -> int:
    """Deterministic 64-bit child seed from an integer base plus context.

    Uses a SHA-256 digest of the ``repr`` of each context part rather
    than ``hash()``, whose string hashing is salted per process and would
    break cross-process reproducibility — the parallel sweep backend
    relies on every worker deriving the same per-task seed the serial
    backend would.
    """
    blob = "|".join([str(base), *[repr(part) for part in parts]]).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def random_unit(rng: random.Random) -> float:
    """Draw a uniform value in the open interval (0, 1).

    ``random.random()`` can return exactly 0.0, which the Metropolis filter
    in Algorithm 1 excludes (q is drawn from the open interval).  A zero
    draw would wrongly accept moves whose bias ratio is zero.
    """
    q = rng.random()
    while q == 0.0:
        q = rng.random()
    return q


def maybe_seeded(seed: RngLike, default_seed: Optional[int]) -> random.Random:
    """Like :func:`make_rng` but with an explicit fallback seed.

    Experiment harnesses use this so that "no seed given" still produces a
    documented, reproducible default run.
    """
    if seed is None:
        return random.Random(default_seed)
    return make_rng(seed)
