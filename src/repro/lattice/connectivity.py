"""Connectivity queries over sets of occupied lattice nodes."""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Set

from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node
from repro.lattice.holes import has_holes


def connected_components(occupied: Iterable[Node]) -> List[Set[Node]]:
    """Connected components of the induced subgraph on ``occupied``."""
    remaining = set(occupied)
    components: List[Set[Node]] = []
    while remaining:
        seed = remaining.pop()
        component = {seed}
        queue = deque([seed])
        while queue:
            x, y = queue.popleft()
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr = (x + dx, y + dy)
                if nbr in remaining:
                    remaining.discard(nbr)
                    component.add(nbr)
                    queue.append(nbr)
        components.append(component)
    return components


def is_connected(occupied: Iterable[Node]) -> bool:
    """Whether the occupied nodes induce a connected subgraph.

    The empty set is vacuously connected.
    """
    occupied_set = set(occupied)
    if len(occupied_set) <= 1:
        return True
    seed = next(iter(occupied_set))
    seen = {seed}
    queue = deque([seed])
    while queue:
        x, y = queue.popleft()
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            if nbr in occupied_set and nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
    return len(seen) == len(occupied_set)


def is_simply_connected(occupied: Iterable[Node]) -> bool:
    """Connected and hole-free — the state space of the chain at stationarity."""
    occupied_set = set(occupied)
    return is_connected(occupied_set) and not has_holes(occupied_set)


def component_containing(occupied: Set[Node], node: Node) -> Set[Node]:
    """The connected component of ``occupied`` that contains ``node``."""
    if node not in occupied:
        raise ValueError(f"node {node} is not occupied")
    seen = {node}
    queue = deque([node])
    while queue:
        x, y = queue.popleft()
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            if nbr in occupied and nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
    return seen
