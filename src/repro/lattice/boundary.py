"""Boundary walks and perimeter computation.

The paper defines the *perimeter* :math:`p(\\sigma)` of a connected,
hole-free configuration as the length of the closed walk over configuration
edges that encloses all particles and no unoccupied vertices.  We provide:

* :func:`boundary_walk` — explicit contour tracing of the outer boundary,
  valid for any connected configuration (with or without holes);
* :func:`perimeter` — the walk length, with the degenerate single-particle
  case (perimeter 0) handled;
* :func:`perimeter_from_edges` — the O(1) identity
  :math:`p = 3n - 3 - e` of [CannonDRR16], valid only for connected
  hole-free configurations (the regime where the chain operates after
  burn-in).  Tests cross-validate the two.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node


def _start_node(occupied: Set[Node]) -> Node:
    """Lexicographically least occupied node by (y, x).

    Its west, southwest, and southeast neighbors are guaranteed
    unoccupied, so it lies on the outer boundary.
    """
    return min(occupied, key=lambda node: (node[1], node[0]))


def boundary_walk(occupied: Set[Node]) -> List[Node]:
    """Trace the outer boundary of a connected configuration.

    Returns the sequence of nodes visited by the closed boundary walk,
    starting and ending at the same node (the endpoint is *not* repeated;
    the walk has ``len(result)`` edges when ``len(result) >= 2``).  For a
    single particle, returns a one-element list (a walk of length 0).

    The walk uses the left-hand rule on the six-neighbor grid: arriving at
    a node via direction ``d``, the next step is the first occupied
    direction scanning counterclockwise from ``d + 4 (mod 6)``.  Nodes may
    repeat (cut vertices are traversed once per incident boundary arc),
    matching the paper's definition of the boundary as a closed *walk*.
    """
    if not occupied:
        return []
    if len(occupied) == 1:
        return [next(iter(occupied))]

    start = _start_node(occupied)
    sx, sy = start
    first_dir = None
    for d in range(6):
        dx, dy = NEIGHBOR_OFFSETS[d]
        if (sx + dx, sy + dy) in occupied:
            first_dir = d
            break
    if first_dir is None:
        raise ValueError("configuration is disconnected: isolated particle")

    walk: List[Node] = [start]
    node = start
    d = first_dir
    while True:
        dx, dy = NEIGHBOR_OFFSETS[d]
        node = (node[0] + dx, node[1] + dy)
        # Find next direction: scan counterclockwise from d + 4.
        nx, ny = node
        for turn in range(6):
            cand = (d + 4 + turn) % 6
            cdx, cdy = NEIGHBOR_OFFSETS[cand]
            if (nx + cdx, ny + cdy) in occupied:
                next_dir = cand
                break
        else:  # pragma: no cover - unreachable for len(occupied) >= 2
            raise ValueError("boundary walk reached an isolated particle")
        if node == start and next_dir == first_dir:
            return walk
        walk.append(node)
        d = next_dir


def perimeter(occupied: Set[Node]) -> int:
    """Length of the outer boundary walk of a connected configuration."""
    walk = boundary_walk(occupied)
    return len(walk) if len(walk) >= 2 else 0


def outer_boundary_length(occupied: Set[Node]) -> int:
    """Alias for :func:`perimeter`, emphasizing holes are not counted."""
    return perimeter(occupied)


def perimeter_from_edges(n: int, edge_count: int) -> int:
    """Perimeter of a connected *hole-free* configuration from edge count.

    Uses the identity :math:`e(\\sigma) = 3n - p(\\sigma) - 3` from
    [CannonDRR16], rearranged.  Callers must ensure the configuration is
    connected and hole-free; the identity fails otherwise.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    return 3 * n - 3 - edge_count


def turning_number(walk: Sequence[Node]) -> int:
    """Total turning of a closed boundary walk, in units of 60 degrees.

    At each vertex of the walk the direction changes by a multiple of
    60°; summing the signed changes around the whole walk gives the
    total turning, which for the counterclockwise outer boundary of any
    connected configuration is exactly +6 (one full turn) — a discrete
    Gauss-Bonnet invariant the property-based tests exploit.  Walks of
    fewer than 2 nodes have no defined turning and return 0.
    """
    from repro.lattice.triangular import direction_between

    if len(walk) < 2:
        return 0
    directions = [
        direction_between(walk[i], walk[(i + 1) % len(walk)])
        for i in range(len(walk))
    ]
    total = 0
    for i in range(len(directions)):
        turn = (directions[(i + 1) % len(directions)] - directions[i]) % 6
        if turn > 3:
            turn -= 6
        total += turn
    return total


def walk_edges(walk: Sequence[Node]) -> List[Tuple[Node, Node]]:
    """Directed edge list of a closed walk returned by :func:`boundary_walk`."""
    if len(walk) < 2:
        return []
    return [
        (walk[i], walk[(i + 1) % len(walk)])
        for i in range(len(walk))
    ]
