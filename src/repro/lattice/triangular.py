"""Axial-coordinate triangular lattice :math:`G_\\Delta`.

Nodes are integer pairs ``(x, y)``.  The six neighbors of a node are found
by adding :data:`NEIGHBOR_OFFSETS`, listed in counterclockwise order
starting from "east".  Under the Cartesian embedding
``(x + y/2, y * sqrt(3)/2)`` every edge has unit length and every node has
six unit-distance neighbors, so this is exactly the triangular lattice of
the amoebot model.

A fact used heavily by the move-validity logic (Properties 4 and 5 of the
paper): for an adjacent pair of nodes ``(u, v)``, the eight lattice nodes
adjacent to ``u`` or ``v`` (excluding ``u`` and ``v`` themselves) form a
*chordless 8-cycle*.  :func:`edge_ring` returns that cycle in order, which
reduces the local connectivity checks of Properties 4/5 to scanning runs
of occupied positions along a ring.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Set, Tuple

Node = Tuple[int, int]

#: Offsets to the six neighbors, counterclockwise starting from east.
NEIGHBOR_OFFSETS: Tuple[Node, ...] = (
    (1, 0),
    (0, 1),
    (-1, 1),
    (-1, 0),
    (0, -1),
    (1, -1),
)

#: Direction names matching :data:`NEIGHBOR_OFFSETS`, for debugging/rendering.
DIRECTIONS: Tuple[str, ...] = ("E", "NE", "NW", "W", "SW", "SE")

_OFFSET_TO_DIRECTION: Dict[Node, int] = {
    offset: index for index, offset in enumerate(NEIGHBOR_OFFSETS)
}

SQRT3 = math.sqrt(3.0)


def neighbors(node: Node) -> List[Node]:
    """The six lattice neighbors of ``node``, counterclockwise from east."""
    x, y = node
    return [(x + dx, y + dy) for dx, dy in NEIGHBOR_OFFSETS]


def neighborhood(node: Node, include_self: bool = False) -> List[Node]:
    """``node``'s neighbors, optionally with ``node`` itself prepended."""
    result = neighbors(node)
    if include_self:
        result.insert(0, node)
    return result


def are_adjacent(u: Node, v: Node) -> bool:
    """Whether ``u`` and ``v`` are joined by a lattice edge."""
    return (v[0] - u[0], v[1] - u[1]) in _OFFSET_TO_DIRECTION


def direction_between(u: Node, v: Node) -> int:
    """Index into :data:`NEIGHBOR_OFFSETS` taking ``u`` to adjacent ``v``.

    Raises ``ValueError`` if the nodes are not adjacent.
    """
    delta = (v[0] - u[0], v[1] - u[1])
    try:
        return _OFFSET_TO_DIRECTION[delta]
    except KeyError:
        raise ValueError(f"nodes {u} and {v} are not adjacent") from None


def common_neighbors(u: Node, v: Node) -> List[Node]:
    """The lattice nodes adjacent to both ``u`` and ``v``.

    Adjacent nodes share exactly two common neighbors; these are the
    candidate members of the set :math:`\\mathbb{S}` in Properties 4/5.
    """
    nbrs_u = set(neighbors(u))
    return [w for w in neighbors(v) if w in nbrs_u]


def edge_key(u: Node, v: Node) -> Tuple[Node, Node]:
    """Canonical (sorted) key for the undirected edge ``{u, v}``."""
    return (u, v) if u <= v else (v, u)


def edge_ring(u: Node, v: Node) -> List[Node]:
    """The 8-cycle of nodes surrounding the adjacent pair ``(u, v)``.

    Returns the eight nodes adjacent to ``u`` or ``v`` (excluding ``u`` and
    ``v``) in cyclic order, starting from one of the two common neighbors.
    Consecutive returned nodes are lattice-adjacent, the first and last are
    adjacent, and no non-consecutive pair is adjacent (the cycle is
    chordless).  Positions 0 and 4 of the result are the two common
    neighbors of ``u`` and ``v``.
    """
    d = direction_between(u, v)
    ux, uy = u
    vx, vy = v
    steps = (
        (vx, vy, d + 1),  # far side of v, counterclockwise
        (vx, vy, d),  # directly beyond v
        (vx, vy, d + 5),  # far side of v, clockwise
        (ux, uy, d + 5),  # common neighbor (clockwise side)
        (ux, uy, d + 4),
        (ux, uy, d + 3),
        (ux, uy, d + 2),
    )
    dx, dy = NEIGHBOR_OFFSETS[(d + 1) % 6]
    ring: List[Node] = [(ux + dx, uy + dy)]  # common neighbor (ccw side)
    for bx, by, direction in steps:
        dx, dy = NEIGHBOR_OFFSETS[direction % 6]
        ring.append((bx + dx, by + dy))
    return ring


def _edge_ring_explicit(u: Node, v: Node) -> List[Node]:
    """Reference construction of the edge ring by angular sort.

    Sorts the eight surrounding nodes by angle around the midpoint of the
    edge, then rotates so the ring starts at a common neighbor.  Used by
    :func:`edge_ring`; kept separate so the fast path can be swapped in
    without changing the contract.
    """
    surround: Set[Node] = set(neighbors(u)) | set(neighbors(v))
    surround.discard(u)
    surround.discard(v)
    mx = (u[0] + v[0]) / 2.0
    my = (u[1] + v[1]) / 2.0
    mcx = mx + my / 2.0
    mcy = my * SQRT3 / 2.0

    def angle(node: Node) -> float:
        cx, cy = to_cartesian(node)
        return math.atan2(cy - mcy, cx - mcx)

    ordered = sorted(surround, key=angle)
    commons = set(common_neighbors(u, v))
    start = next(i for i, node in enumerate(ordered) if node in commons)
    return ordered[start:] + ordered[:start]


def to_cartesian(node: Node) -> Tuple[float, float]:
    """Cartesian embedding of ``node`` with unit edge length."""
    x, y = node
    return (x + y / 2.0, y * SQRT3 / 2.0)


def edges_of(nodes: Iterable[Node]) -> Set[Tuple[Node, Node]]:
    """All lattice edges with both endpoints in ``nodes`` (canonical keys)."""
    node_set = set(nodes)
    result: Set[Tuple[Node, Node]] = set()
    for node in node_set:
        for nbr in neighbors(node):
            if nbr in node_set:
                result.add(edge_key(node, nbr))
    return result


def induced_degree(node: Node, occupied: Set[Node]) -> int:
    """Number of occupied neighbors of ``node``."""
    x, y = node
    return sum((x + dx, y + dy) in occupied for dx, dy in NEIGHBOR_OFFSETS)


def translate(nodes: Iterable[Node], delta: Node) -> List[Node]:
    """Translate every node by ``delta``."""
    dx, dy = delta
    return [(x + dx, y + dy) for x, y in nodes]


def rotate60(node: Node, times: int = 1) -> Node:
    """Rotate ``node`` by ``times`` multiples of 60 degrees about the origin.

    Under our Cartesian embedding the counterclockwise 60-degree rotation
    is the linear map ``(x, y) -> (-y, x + y)``; composing it six times is
    the identity, which the test suite verifies.
    """
    x, y = node
    for _ in range(times % 6):
        x, y = -y, x + y
    return (x, y)


def canonical_form(nodes: Sequence[Node]) -> Tuple[Node, ...]:
    """Translation-canonical form of a node set.

    Configurations in the paper are equivalence classes of arrangements
    under translation; this returns the lexicographically-least translate,
    suitable as a dictionary key when enumerating configurations.
    """
    if not nodes:
        return ()
    min_x = min(x for x, _ in nodes)
    candidates = [(x, y) for x, y in nodes if x == min_x]
    min_y = min(y for _, y in candidates)
    shifted = sorted((x - min_x, y - min_y) for x, y in nodes)
    return tuple(shifted)
