"""Hole detection for particle configurations.

A configuration has a *hole* if the unoccupied nodes of :math:`G_\\Delta`
contain a finite (maximal) connected component.  The chain of the paper
eliminates all holes and never re-creates one (Lemma 6); the detectors
here are used by tests and debug assertions to verify that invariant, and
by observables that must behave sensibly before burn-in.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Set

from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node


def _bounding_box(occupied: Set[Node], margin: int = 1):
    xs = [x for x, _ in occupied]
    ys = [y for _, y in occupied]
    return (
        min(xs) - margin,
        max(xs) + margin,
        min(ys) - margin,
        max(ys) + margin,
    )


def find_holes(occupied: Set[Node]) -> List[Set[Node]]:
    """All holes of the configuration, as sets of unoccupied nodes.

    Flood-fills the unoccupied exterior from outside the bounding box;
    any unoccupied node inside the box not reached by the fill belongs to
    a finite complement component, i.e. a hole.  Returns each hole as its
    own connected set.
    """
    if not occupied:
        return []
    min_x, max_x, min_y, max_y = _bounding_box(occupied)

    def in_box(node: Node) -> bool:
        return min_x <= node[0] <= max_x and min_y <= node[1] <= max_y

    # Exterior flood fill seeded from every empty node on the box frame.
    exterior: Set[Node] = set()
    frontier: deque = deque()
    for x in range(min_x, max_x + 1):
        for y in (min_y, max_y):
            node = (x, y)
            if node not in occupied and node not in exterior:
                exterior.add(node)
                frontier.append(node)
    for y in range(min_y, max_y + 1):
        for x in (min_x, max_x):
            node = (x, y)
            if node not in occupied and node not in exterior:
                exterior.add(node)
                frontier.append(node)
    while frontier:
        x, y = frontier.popleft()
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            if in_box(nbr) and nbr not in occupied and nbr not in exterior:
                exterior.add(nbr)
                frontier.append(nbr)

    # Remaining empty in-box nodes are hole nodes; group into components.
    hole_nodes: Set[Node] = set()
    for x in range(min_x + 1, max_x):
        for y in range(min_y + 1, max_y):
            node = (x, y)
            if node not in occupied and node not in exterior:
                hole_nodes.add(node)

    holes: List[Set[Node]] = []
    remaining = set(hole_nodes)
    while remaining:
        seed = remaining.pop()
        component = {seed}
        queue = deque([seed])
        while queue:
            x, y = queue.popleft()
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr = (x + dx, y + dy)
                if nbr in remaining:
                    remaining.discard(nbr)
                    component.add(nbr)
                    queue.append(nbr)
        holes.append(component)
    return holes


def has_holes(occupied: Set[Node]) -> bool:
    """Whether the configuration encloses at least one hole."""
    return bool(find_holes(occupied))


def fill_holes(occupied: Set[Node]) -> Set[Node]:
    """Return a copy of the configuration with every hole filled in.

    Useful for constructing hole-free variants of randomly generated
    initial configurations.
    """
    filled = set(occupied)
    for hole in find_holes(occupied):
        filled.update(hole)
    return filled


def hole_boundary_lengths(occupied: Set[Node]) -> Dict[FrozenSet[Node], int]:
    """Map each hole to the number of configuration edges on its boundary.

    The boundary edges of a hole are the occupied-occupied lattice edges
    with at least one endpoint adjacent to the hole; this count is a
    diagnostic observable, not part of the paper's perimeter definition.
    """
    result: Dict[FrozenSet[Node], int] = {}
    for hole in find_holes(occupied):
        rim: Set[Node] = set()
        for x, y in hole:
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr = (x + dx, y + dy)
                if nbr in occupied:
                    rim.add(nbr)
        edges = 0
        for x, y in rim:
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr = (x + dx, y + dy)
                if nbr in rim and (x, y) < nbr:
                    edges += 1
        result[frozenset(hole)] = edges
    return result
