"""Triangular-lattice substrate.

The geometric amoebot model places particles on the infinite triangular
lattice :math:`G_\\Delta`.  This package provides the coordinate system,
neighborhood structure, geometric constructions (hexagons, rings, lines),
boundary/perimeter computation, hole detection, and connectivity queries
that every higher layer builds on.

Coordinates are *axial*: node ``(x, y)`` sits at Cartesian position
``(x + y/2, y * sqrt(3)/2)`` and its six neighbors are obtained by adding
the offsets in :data:`NEIGHBOR_OFFSETS`.
"""

from repro.lattice.triangular import (
    DIRECTIONS,
    NEIGHBOR_OFFSETS,
    Node,
    are_adjacent,
    common_neighbors,
    direction_between,
    edge_key,
    edge_ring,
    neighborhood,
    neighbors,
    to_cartesian,
)
from repro.lattice.geometry import (
    disk,
    hexagon,
    hexagon_perimeter_length,
    hexagon_size,
    lattice_distance,
    line,
    parallelogram,
    ring,
)
from repro.lattice.boundary import boundary_walk, outer_boundary_length, perimeter
from repro.lattice.holes import find_holes, has_holes, fill_holes
from repro.lattice.connectivity import (
    connected_components,
    is_connected,
    is_simply_connected,
)

__all__ = [
    "Node",
    "NEIGHBOR_OFFSETS",
    "DIRECTIONS",
    "neighbors",
    "neighborhood",
    "are_adjacent",
    "common_neighbors",
    "direction_between",
    "edge_key",
    "edge_ring",
    "to_cartesian",
    "hexagon",
    "hexagon_size",
    "hexagon_perimeter_length",
    "ring",
    "disk",
    "line",
    "parallelogram",
    "lattice_distance",
    "boundary_walk",
    "perimeter",
    "outer_boundary_length",
    "find_holes",
    "has_holes",
    "fill_holes",
    "connected_components",
    "is_connected",
    "is_simply_connected",
]
