"""Geometric constructions on the triangular lattice.

These builders produce the node sets used as initial configurations and as
the finite regions :math:`\\Lambda` of the cluster-expansion analysis:
hexagons (the minimum-perimeter shapes of Lemma 2), rings, disks, lines,
and parallelograms.
"""

from __future__ import annotations

from typing import List, Set

from repro.lattice.triangular import Node, neighbors


def lattice_distance(u: Node, v: Node) -> int:
    """Graph (hop) distance between two nodes of the triangular lattice.

    With axial coordinates this is the standard hexagonal-grid distance:
    ``max(|dx|, |dy|, |dx + dy|)``.
    """
    dx = v[0] - u[0]
    dy = v[1] - u[1]
    return max(abs(dx), abs(dy), abs(dx + dy))


def ring(center: Node, radius: int) -> List[Node]:
    """All nodes at hop distance exactly ``radius`` from ``center``.

    Returns the single-node list ``[center]`` for radius 0.  The ring at
    radius ``r >= 1`` contains exactly ``6r`` nodes, returned in cyclic
    order.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if radius == 0:
        return [center]
    cx, cy = center
    result: List[Node] = []
    # Walk the hexagonal ring: start at distance `radius` to the east,
    # then take `radius` steps in each of the six directions, rotated so
    # the walk circles the center.
    x, y = cx + radius, cy
    walk_directions = ((-1, 1), (-1, 0), (0, -1), (1, -1), (1, 0), (0, 1))
    for dx, dy in walk_directions:
        for _ in range(radius):
            result.append((x, y))
            x, y = x + dx, y + dy
    return result


def disk(center: Node, radius: int) -> List[Node]:
    """All nodes at hop distance at most ``radius`` from ``center``."""
    result: List[Node] = []
    for r in range(radius + 1):
        result.extend(ring(center, r))
    return result


def hexagon_size(side: int) -> int:
    """Number of nodes in a regular hexagon of side length ``side``.

    Matches the paper's count :math:`3\\ell^2 + 3\\ell + 1` (Appendix A.1).
    """
    if side < 0:
        raise ValueError(f"side must be non-negative, got {side}")
    return 3 * side * side + 3 * side + 1


def hexagon_perimeter_length(side: int) -> int:
    """Boundary-walk length of the regular hexagon of side ``side``.

    The hexagon with side :math:`\\ell \\ge 1` has perimeter :math:`6\\ell`.
    """
    if side < 0:
        raise ValueError(f"side must be non-negative, got {side}")
    return 6 * side if side >= 1 else 0


def hexagon(n: int, center: Node = (0, 0)) -> List[Node]:
    """A near-minimum-perimeter configuration of ``n`` particles (Lemma 2).

    Builds the largest regular hexagon with at most ``n`` nodes, then adds
    the remaining particles around the outside in a single layer,
    completing one side before beginning the next — exactly the
    construction in the proof of Lemma 2, which has perimeter at most
    :math:`2\\sqrt{3}\\sqrt{n}`.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    side = 0
    while hexagon_size(side + 1) <= n:
        side += 1
    nodes = disk(center, side)
    remaining = n - len(nodes)
    if remaining > 0:
        outer = ring(center, side + 1)
        # Start the layer just past a corner: the first node added then
        # touches two hexagon nodes (+1 perimeter) instead of one (+2),
        # which is what achieves the paper's exact perimeter values
        # (Figure 4b: side 3 plus 6 extras has perimeter 20, not 21).
        outer = outer[1:] + outer[:1]
        nodes.extend(outer[:remaining])
    return nodes


def line(n: int, start: Node = (0, 0), direction: Node = (1, 0)) -> List[Node]:
    """``n`` collinear nodes starting at ``start``.

    A line is the worst-case (maximum-perimeter) connected configuration
    and the canonical intermediate form in the paper's irreducibility
    argument (Lemma 8).
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if direction not in set(_UNIT_DIRECTIONS):
        raise ValueError(f"direction must be a unit lattice vector, got {direction}")
    x, y = start
    dx, dy = direction
    return [(x + i * dx, y + i * dy) for i in range(n)]


_UNIT_DIRECTIONS = ((1, 0), (0, 1), (-1, 1), (-1, 0), (0, -1), (1, -1))


def parallelogram(rows: int, cols: int, origin: Node = (0, 0)) -> List[Node]:
    """A ``rows x cols`` rhombus of nodes, row-major.

    Useful as a compact two-region initial configuration: the first
    ``rows//2`` rows can be colored differently from the rest to start in
    a fully separated state.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"rows and cols must be positive, got {rows}x{cols}")
    ox, oy = origin
    return [(ox + c, oy + r) for r in range(rows) for c in range(cols)]


def bounding_radius(nodes: Set[Node], center: Node = (0, 0)) -> int:
    """Smallest ``r`` such that every node lies within hop distance ``r``."""
    if not nodes:
        return 0
    return max(lattice_distance(center, node) for node in nodes)


def boundary_nodes(nodes: Set[Node]) -> Set[Node]:
    """Nodes of the set with at least one unoccupied lattice neighbor."""
    return {
        node
        for node in nodes
        if any(nbr not in nodes for nbr in neighbors(node))
    }
