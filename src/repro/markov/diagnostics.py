"""Markov-chain diagnostics: balance, ergodicity, distances, estimation.

Implements the textbook notions of Section 2.4 as executable checks:
detailed balance, irreducibility, aperiodicity, total-variation distance,
and empirical state-visit distributions of simulated chains.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

import numpy as np

from repro.markov.chain import MarkovChainProtocol


def total_variation_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """:math:`\\tfrac12 \\sum_x |p(x) - q(x)|` for distributions on a common space."""
    p_arr = np.asarray(p, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    if p_arr.shape != q_arr.shape:
        raise ValueError(f"shape mismatch: {p_arr.shape} vs {q_arr.shape}")
    return 0.5 * float(np.abs(p_arr - q_arr).sum())


def stationary_from_matrix(matrix: np.ndarray, iterations: int = 200) -> np.ndarray:
    """Stationary distribution by repeated squaring of the matrix.

    Robust for the small dense matrices produced by
    :mod:`repro.markov.exact`; assumes the chain is ergodic.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"transition matrix must be square, got {m.shape}")
    power = m.copy()
    for _ in range(iterations):
        nxt = power @ power
        if np.allclose(nxt, power, atol=1e-15):
            power = nxt
            break
        power = nxt
    pi = power.mean(axis=0)
    return pi / pi.sum()


def detailed_balance_violations(
    matrix: np.ndarray,
    pi: Sequence[float],
    tolerance: float = 1e-10,
) -> List[Tuple[int, int, float]]:
    """State pairs violating :math:`\\pi_i M_{ij} = \\pi_j M_{ji}`.

    Returns ``(i, j, |violation|)`` triples with ``i < j``; empty for a
    reversible chain (which Lemma 9's proof shows this chain is).
    """
    m = np.asarray(matrix, dtype=float)
    pi_arr = np.asarray(pi, dtype=float)
    flow = pi_arr[:, None] * m
    diff = np.abs(flow - flow.T)
    bad = np.argwhere(np.triu(diff, k=1) > tolerance)
    return [(int(i), int(j), float(diff[i, j])) for i, j in bad]


def _reachable(adjacency: List[List[int]], start: int) -> set:
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for nxt in adjacency[node]:
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen


def is_irreducible(matrix: np.ndarray) -> bool:
    """Whether the transition graph is strongly connected.

    For a reversible chain, forward reachability from one state suffices,
    but we check both directions to stay correct for arbitrary input.
    """
    m = np.asarray(matrix, dtype=float)
    size = m.shape[0]
    forward: List[List[int]] = [list(np.nonzero(m[i] > 0)[0]) for i in range(size)]
    backward: List[List[int]] = [list(np.nonzero(m[:, i] > 0)[0]) for i in range(size)]
    return (
        len(_reachable(forward, 0)) == size
        and len(_reachable(backward, 0)) == size
    )


def is_aperiodic(matrix: np.ndarray) -> bool:
    """Aperiodicity via a self-loop in an irreducible chain.

    An irreducible chain with any positive diagonal entry is aperiodic —
    the argument used in the proof of Lemma 8 (rejected proposals keep
    the configuration unchanged).
    """
    m = np.asarray(matrix, dtype=float)
    return is_irreducible(m) and bool((np.diag(m) > 0).any())


def empirical_distribution(
    chain: MarkovChainProtocol,
    state_index: Callable[[], Hashable],
    steps: int,
    record_every: int = 1,
) -> Dict[Hashable, float]:
    """Visit frequencies of states along a simulated trajectory.

    ``state_index`` is a zero-argument callable mapping the chain's
    current state to a hashable key (e.g. a canonical configuration key
    or an index from :class:`~repro.markov.exact.ExactChainAnalysis`).
    The chain is advanced ``steps`` iterations, recording every
    ``record_every``-th state; frequencies are normalized to sum to 1.
    """
    if steps < 1:
        raise ValueError(f"steps must be positive, got {steps}")
    if record_every < 1:
        raise ValueError(f"record_every must be positive, got {record_every}")
    counts: Dict[Hashable, int] = {}
    recorded = 0
    done = 0
    while done < steps:
        block = min(record_every, steps - done)
        chain.run(block)
        done += block
        key = state_index()
        counts[key] = counts.get(key, 0) + 1
        recorded += 1
    return {key: value / recorded for key, value in counts.items()}


def empirical_vs_exact_tv(
    empirical: Dict[Hashable, float],
    exact: Dict[Hashable, float],
) -> float:
    """Total-variation distance between keyed distributions.

    Keys present in only one distribution are treated as zero-probability
    in the other.
    """
    keys = set(empirical) | set(exact)
    return 0.5 * sum(
        abs(empirical.get(k, 0.0) - exact.get(k, 0.0)) for k in keys
    )
