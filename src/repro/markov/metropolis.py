"""The Metropolis-Hastings filter in isolation.

Algorithm 1 is a Metropolis chain: moves are proposed symmetrically
(uniform particle, uniform direction) and accepted with probability
:math:`\\min(1, \\pi(\\tau)/\\pi(\\sigma))`.  These helpers express that
rule generically; the tests assert the hand-optimized acceptance logic in
:class:`~repro.core.separation_chain.SeparationChain` agrees with the
generic formula computed from full configuration weights.
"""

from __future__ import annotations

import math
from typing import Callable, TypeVar

from repro.util.rng import RngLike, make_rng

S = TypeVar("S")


def metropolis_acceptance(log_weight_current: float, log_weight_proposed: float) -> float:
    """Acceptance probability :math:`\\min(1, e^{\\Delta \\log w})`."""
    delta = log_weight_proposed - log_weight_current
    if delta >= 0:
        return 1.0
    return math.exp(delta)


def metropolis_step(
    state: S,
    propose: Callable[[S], S],
    log_weight: Callable[[S], float],
    seed: RngLike = None,
) -> S:
    """One generic Metropolis step with a symmetric proposal.

    Returns the next state (either the proposal or ``state``).  Intended
    for reference computations and tests; production chains inline this
    logic for speed.
    """
    rng = make_rng(seed)
    proposal = propose(state)
    accept_prob = metropolis_acceptance(log_weight(state), log_weight(proposal))
    if accept_prob >= 1.0 or rng.random() < accept_prob:
        return proposal
    return state
