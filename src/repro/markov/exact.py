"""Exact transition matrices and stationary distributions for small systems.

For small ``n`` the full state space of the separation chain (connected,
hole-free, colored configurations up to translation) can be enumerated;
this module assembles the exact transition matrix of Algorithm 1 over it
and the Lemma 9 stationary distribution, enabling:

* verification of detailed balance (Appendix A.2) numerically;
* verification of ergodicity (Lemma 8) by strong connectivity;
* convergence tests of the simulated chain's empirical distribution to
  the exact stationary distribution in total variation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.separation_chain import evaluate_move, evaluate_swap
from repro.lattice.triangular import NEIGHBOR_OFFSETS
from repro.system.configuration import ParticleSystem
from repro.markov.enumerate_configs import enumerate_colored_configurations

StateKey = Tuple


def lemma9_distribution(
    states: Sequence[ParticleSystem], lam: float, gamma: float
) -> np.ndarray:
    """The stationary distribution of Lemma 9 over ``states``.

    :math:`\\pi(\\sigma) \\propto (\\lambda\\gamma)^{-p(\\sigma)}
    \\gamma^{-h(\\sigma)}`.  Computed in log space then normalized.
    """
    log_weights = np.array(
        [
            -s.perimeter() * math.log(lam * gamma)
            - s.hetero_total * math.log(gamma)
            for s in states
        ]
    )
    log_weights -= log_weights.max()
    weights = np.exp(log_weights)
    return weights / weights.sum()


def build_transition_matrix(
    states: Sequence[ParticleSystem],
    lam: float,
    gamma: float,
    swaps: bool = True,
) -> np.ndarray:
    """Exact transition matrix of Algorithm 1 over the given state space.

    Entry ``M[i, j]`` is the one-step probability from state ``i`` to
    state ``j``.  Every proposal has probability :math:`1/(6n)` (particle
    choice times direction choice); rejected or invalid proposals
    contribute to the diagonal.  Raises if a move leads outside the given
    state space — which would indicate the space is not closed under the
    chain's moves, i.e. an enumeration or validity-check bug.
    """
    index: Dict[StateKey, int] = {
        state.canonical_key(): i for i, state in enumerate(states)
    }
    if len(index) != len(states):
        raise ValueError("duplicate states in state space")
    size = len(states)
    matrix = np.zeros((size, size))
    for i, state in enumerate(states):
        n = state.n
        proposal_prob = 1.0 / (6 * n)
        colors = state.colors
        for src in list(colors):
            ci = colors[src]
            x, y = src
            for dx, dy in NEIGHBOR_OFFSETS:
                dst = (x + dx, y + dy)
                dst_color = colors.get(dst)
                if dst_color is None:
                    accept, _, _ = evaluate_move(colors, src, dst, lam, gamma)
                    if accept > 0.0:
                        successor = state.copy()
                        successor.move_particle(src, dst)
                        j = _lookup(index, successor, "move")
                        matrix[i, j] += proposal_prob * accept
                        matrix[i, i] += proposal_prob * (1.0 - accept)
                    else:
                        matrix[i, i] += proposal_prob
                elif swaps and dst_color != ci:
                    accept, _ = evaluate_swap(colors, src, dst, gamma)
                    successor = state.copy()
                    successor.swap_particles(src, dst)
                    j = _lookup(index, successor, "swap")
                    matrix[i, j] += proposal_prob * accept
                    matrix[i, i] += proposal_prob * (1.0 - accept)
                else:
                    matrix[i, i] += proposal_prob
    return matrix


def _lookup(index: Dict[StateKey, int], successor: ParticleSystem, kind: str) -> int:
    key = successor.canonical_key()
    try:
        return index[key]
    except KeyError:
        raise AssertionError(
            f"{kind} led outside the enumerated state space: {successor!r}; "
            "the space is not closed under the chain's moves"
        ) from None


class ExactChainAnalysis:
    """Exact analysis of the separation chain on an enumerated state space.

    Parameters mirror :class:`~repro.core.separation_chain.SeparationChain`.
    Builds the full state space for ``n`` particles with the given color
    counts, the exact transition matrix, and the Lemma 9 distribution.
    """

    def __init__(
        self,
        n: int,
        color_counts: Sequence[int],
        lam: float,
        gamma: float,
        swaps: bool = True,
    ):
        self.n = n
        self.lam = lam
        self.gamma = gamma
        self.swaps = swaps
        self.states: List[ParticleSystem] = enumerate_colored_configurations(
            n, color_counts, hole_free_only=True
        )
        self.index: Dict[StateKey, int] = {
            state.canonical_key(): i for i, state in enumerate(self.states)
        }
        self.matrix = build_transition_matrix(self.states, lam, gamma, swaps)
        self.pi = lemma9_distribution(self.states, lam, gamma)

    def state_index(self, system: ParticleSystem) -> int:
        """Index of (the translation class of) ``system`` in the space."""
        return self.index[system.canonical_key()]

    def stationary_by_eigenvector(self) -> np.ndarray:
        """Stationary distribution from the left unit eigenvector of M.

        Independent of Lemma 9 — used to cross-validate the closed form.
        """
        eigenvalues, eigenvectors = np.linalg.eig(self.matrix.T)
        closest = int(np.argmin(np.abs(eigenvalues - 1.0)))
        vec = np.real(eigenvectors[:, closest])
        vec = np.abs(vec)
        return vec / vec.sum()

    def detailed_balance_error(self) -> float:
        """Max over state pairs of ``|pi_i M_ij - pi_j M_ji|``."""
        flow = self.pi[:, None] * self.matrix
        return float(np.abs(flow - flow.T).max())

    def expected_observable(self, values: Sequence[float]) -> float:
        """Stationary expectation of a per-state observable vector."""
        values_arr = np.asarray(values, dtype=float)
        if values_arr.shape != self.pi.shape:
            raise ValueError(
                f"observable has shape {values_arr.shape}, "
                f"expected {self.pi.shape}"
            )
        return float(np.dot(self.pi, values_arr))

    def separation_probability(
        self, beta: float, delta: float, certifier=None
    ) -> float:
        """Stationary probability of being (β, δ)-separated.

        Uses the exact certifier from :mod:`repro.analysis` by default.
        """
        if certifier is None:
            from repro.analysis.separation_metric import is_separated_exact

            certifier = lambda s: is_separated_exact(s, beta, delta)  # noqa: E731
        indicator = [1.0 if certifier(state) else 0.0 for state in self.states]
        return self.expected_observable(indicator)

    def mixing_time_upper_bound(self, epsilon: float = 0.25) -> Optional[int]:
        """Smallest power of two ``t`` with worst-start TV distance < ``epsilon``.

        Computed by repeated squaring of the transition matrix, so the
        result overestimates the true mixing time by at most a factor of
        two.  Feasible only for the small spaces this class targets;
        returns ``None`` if not reached within ``2**30`` steps.
        """
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0,1), got {epsilon}")
        power = self.matrix.copy()
        t = 1
        while t < 2**30:
            tv = 0.5 * np.abs(power - self.pi[None, :]).sum(axis=1).max()
            if tv < epsilon:
                return t
            power = power @ power
            t *= 2
        return None
