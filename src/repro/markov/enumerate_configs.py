"""Exhaustive enumeration of small particle-system configurations.

Enumerates *fixed site animals* of the triangular lattice — connected
``n``-node subsets up to translation — via Redelmeier's algorithm, then
layers colorings on top to produce the exact state space of the
separation chain for small ``n``.  This is the foundation of the
strongest correctness tests in the suite: the empirical distribution of
the simulated chain is compared against the exact stationary distribution
of Lemma 9 over the enumerated space.

The animal counts match OEIS A001334 (connected site animals on the
triangular lattice, fixed orientation): 1, 3, 11, 44, 186, 814, 3652, ...
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterator, List, Sequence, Tuple

from repro.lattice.holes import has_holes
from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node
from repro.system.configuration import ParticleSystem

Animal = Tuple[Node, ...]


def _after_origin(node: Node) -> bool:
    """Whether ``node`` follows the origin in (y, x) lexicographic order."""
    x, y = node
    return y > 0 or (y == 0 and x > 0)


def enumerate_animals(n: int, hole_free_only: bool = False) -> List[Animal]:
    """All connected ``n``-node subsets of :math:`G_\\Delta` up to translation.

    Each animal is returned as a sorted node tuple whose minimum node in
    (y, x) order is the origin.  With ``hole_free_only`` the animals
    enclosing holes (possible from ``n = 6``) are filtered out.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    results: List[Animal] = []
    origin: Node = (0, 0)

    def recurse(animal: List[Node], untried: List[Node], seen: frozenset) -> None:
        # ``seen`` holds every cell ever placed on the untried list along
        # this branch (cells in the animal, still untried, or already
        # rejected).  A rejected cell stays in ``seen`` for the remaining
        # iterations of this level, which is what makes each fixed animal
        # appear exactly once; deeper levels get their own extended copy
        # so sibling branches are not affected.
        while untried:
            cell = untried.pop()
            if len(animal) + 1 == n:
                results.append(tuple(sorted(animal + [cell])))
                continue
            new_neighbors = []
            x, y = cell
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr = (x + dx, y + dy)
                if nbr not in seen and _after_origin(nbr):
                    new_neighbors.append(nbr)
            animal.append(cell)
            recurse(animal, untried + new_neighbors, seen | frozenset(new_neighbors))
            animal.pop()

    if n == 1:
        results.append((origin,))
    else:
        recurse([], [origin], frozenset({origin}))
    if hole_free_only:
        results = [a for a in results if not has_holes(set(a))]
    return results


def count_animals(n: int, hole_free_only: bool = False) -> int:
    """Number of connected ``n``-node subsets up to translation."""
    return len(enumerate_animals(n, hole_free_only=hole_free_only))


def colorings_with_counts(
    n: int, color_counts: Sequence[int]
) -> Iterator[Tuple[int, ...]]:
    """All assignments of colors to positions ``0..n-1`` with exact counts.

    Yields tuples ``c`` with ``c[i]`` the color of position ``i``.  Only
    implemented for up to three colors, which covers the paper (k = 2)
    and the Potts extension tests (k = 3).
    """
    if sum(color_counts) != n:
        raise ValueError(f"color counts {color_counts} do not sum to {n}")
    k = len(color_counts)
    if k == 1:
        yield (0,) * n
        return
    if k == 2:
        for ones in combinations(range(n), color_counts[1]):
            coloring = [0] * n
            for i in ones:
                coloring[i] = 1
            yield tuple(coloring)
        return
    if k == 3:
        positions = range(n)
        for ones in combinations(positions, color_counts[1]):
            rest = [i for i in positions if i not in set(ones)]
            for twos in combinations(rest, color_counts[2]):
                coloring = [0] * n
                for i in ones:
                    coloring[i] = 1
                for i in twos:
                    coloring[i] = 2
                yield tuple(coloring)
        return
    raise NotImplementedError("colorings_with_counts supports at most 3 colors")


def enumerate_colored_configurations(
    n: int,
    color_counts: Sequence[int],
    hole_free_only: bool = True,
) -> List[ParticleSystem]:
    """The exact state space of the chain for small systems.

    Every connected (optionally hole-free) configuration of ``n``
    particles with the given per-color particle counts, one representative
    per translation class.  Distinct colorings of the same node set are
    distinct states; node sets from :func:`enumerate_animals` are already
    translation-canonical, so no further deduplication is needed (a
    colored configuration cannot equal a *different* coloring of a
    translate of the same canonical node set).
    """
    num_colors = max(len(color_counts), 2)
    systems: List[ParticleSystem] = []
    for animal in enumerate_animals(n, hole_free_only=hole_free_only):
        for coloring in colorings_with_counts(n, color_counts):
            systems.append(
                ParticleSystem.from_nodes(animal, coloring, num_colors=num_colors)
            )
    return systems


def state_space_size(n: int, color_counts: Sequence[int]) -> int:
    """Size of the hole-free colored state space without materializing it."""
    from math import comb

    animals = count_animals(n, hole_free_only=True)
    k = len(color_counts)
    ways = 1
    remaining = n
    for count in color_counts[1:] if k > 1 else []:
        ways *= comb(remaining, count)
        remaining -= count
    return animals * ways


FrozenAnimal = FrozenSet[Node]
