"""Coupled chains: shared-randomness runs from different starts.

A classical diagnostic for convergence (and the standard route to
rigorous mixing bounds, which the paper notes remain open): run two
copies of the chain from different initial configurations feeding both
the *same* randomness, and watch their observables coalesce.  Because
configurations are translation classes and moves depend on geometry,
exact state coalescence is not guaranteed by this naive coupling, so we
measure *observable* coalescence — the time until chosen observables of
the two runs agree and stay within tolerance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.separation_chain import SeparationChain
from repro.system.configuration import ParticleSystem
from repro.util.rng import RngLike, make_rng


class _ReplayRandom(random.Random):
    """A Random that serves a shared pre-drawn stream to both chains.

    Each coupled chain gets its own cursor into one underlying stream, so
    both consume identical values in identical order regardless of how
    many draws each step makes.
    """

    def __init__(self, stream: List[float]):
        super().__init__(0)
        self._stream = stream
        self._cursor = 0
        self._source = random.Random()

    def attach_source(self, source: random.Random) -> None:
        self._source = source

    def random(self) -> float:  # noqa: A003 - mirrors random.Random API
        if self._cursor == len(self._stream):
            self._stream.append(self._source.random())
        value = self._stream[self._cursor]
        self._cursor += 1
        return value

    def rewind(self) -> None:
        self._cursor = 0


@dataclass
class CoalescenceResult:
    """Outcome of a coupled run."""

    coalesced: bool
    steps: Optional[int]
    trajectory_a: List[float]
    trajectory_b: List[float]


def coupled_observable_coalescence(
    system_a: ParticleSystem,
    system_b: ParticleSystem,
    lam: float,
    gamma: float,
    observable: Callable[[ParticleSystem], float],
    max_steps: int = 200_000,
    check_every: int = 1_000,
    tolerance: float = 0.0,
    patience: int = 3,
    swaps: bool = True,
    seed: RngLike = None,
) -> CoalescenceResult:
    """Run two chains on shared randomness until observables coalesce.

    Both chains consume the identical uniform stream.  Coalescence is
    declared when ``|obs(a) - obs(b)| <= tolerance`` for ``patience``
    consecutive checkpoints.  Returns the trajectories either way, so
    callers can plot approach curves.
    """
    if max_steps < 1 or check_every < 1 or patience < 1:
        raise ValueError("max_steps, check_every, patience must be positive")
    source = make_rng(seed)
    stream: List[float] = []
    rng_a = _ReplayRandom(stream)
    rng_a.attach_source(source)
    rng_b = _ReplayRandom(stream)
    rng_b.attach_source(source)

    chain_a = SeparationChain(system_a, lam=lam, gamma=gamma, swaps=swaps, seed=rng_a)
    chain_b = SeparationChain(system_b, lam=lam, gamma=gamma, swaps=swaps, seed=rng_b)

    trajectory_a: List[float] = []
    trajectory_b: List[float] = []
    agree_run = 0
    steps_done = 0
    while steps_done < max_steps:
        block = min(check_every, max_steps - steps_done)
        # Advance A on the shared stream, then rewind and advance B over
        # the very same values.
        start_cursor = rng_a._cursor
        chain_a.run(block)
        end_cursor = rng_a._cursor
        rng_b._cursor = start_cursor
        chain_b.run(block)
        # Both cursors must land together; B may have consumed fewer
        # draws (different rejection pattern), so fast-forward it.
        rng_b._cursor = end_cursor
        steps_done += block

        value_a = observable(system_a)
        value_b = observable(system_b)
        trajectory_a.append(value_a)
        trajectory_b.append(value_b)
        if abs(value_a - value_b) <= tolerance:
            agree_run += 1
            if agree_run >= patience:
                return CoalescenceResult(
                    coalesced=True,
                    steps=steps_done,
                    trajectory_a=trajectory_a,
                    trajectory_b=trajectory_b,
                )
        else:
            agree_run = 0
    return CoalescenceResult(
        coalesced=False,
        steps=None,
        trajectory_a=trajectory_a,
        trajectory_b=trajectory_b,
    )


def convergence_from_extremes(
    n: int,
    lam: float,
    gamma: float,
    observable: Callable[[ParticleSystem], float],
    max_steps: int = 200_000,
    seed: RngLike = 0,
    tolerance: float = 0.0,
) -> CoalescenceResult:
    """Coalescence between the two extreme starts: hexagon vs. line.

    The standard worst-case pairing for perimeter-like observables —
    one chain starts fully compressed, the other fully expanded.
    """
    from repro.system.initializers import hexagon_system, line_system

    compressed = hexagon_system(n, seed=seed)
    expanded = line_system(n, seed=seed)
    return coupled_observable_coalescence(
        compressed,
        expanded,
        lam=lam,
        gamma=gamma,
        observable=observable,
        max_steps=max_steps,
        tolerance=tolerance,
        seed=seed,
    )
