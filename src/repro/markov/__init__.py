"""Generic Markov-chain machinery and exact small-system analysis.

* :mod:`repro.markov.chain` — protocols and runners shared by all chains.
* :mod:`repro.markov.metropolis` — the Metropolis filter in isolation.
* :mod:`repro.markov.enumerate_configs` — exhaustive enumeration of
  connected (hole-free) colored configurations for small ``n``.
* :mod:`repro.markov.exact` — exact transition matrices and stationary
  distributions over the enumerated state space.
* :mod:`repro.markov.diagnostics` — detailed balance, ergodicity,
  total-variation distance, and empirical-vs-exact comparisons.
"""

from repro.markov.chain import MarkovChainProtocol, sample_observable, run_chunked
from repro.markov.metropolis import metropolis_acceptance, metropolis_step
from repro.markov.enumerate_configs import (
    enumerate_animals,
    enumerate_colored_configurations,
    count_animals,
)
from repro.markov.exact import (
    ExactChainAnalysis,
    build_transition_matrix,
    lemma9_distribution,
)
from repro.markov.coupling import (
    CoalescenceResult,
    convergence_from_extremes,
    coupled_observable_coalescence,
)
from repro.markov.spectral import (
    SpectralSummary,
    bottleneck_ratio,
    gap_versus_parameters,
    spectral_summary,
)
from repro.markov.diagnostics import (
    detailed_balance_violations,
    empirical_distribution,
    is_aperiodic,
    is_irreducible,
    stationary_from_matrix,
    total_variation_distance,
)

__all__ = [
    "MarkovChainProtocol",
    "sample_observable",
    "run_chunked",
    "metropolis_acceptance",
    "metropolis_step",
    "enumerate_animals",
    "enumerate_colored_configurations",
    "count_animals",
    "ExactChainAnalysis",
    "build_transition_matrix",
    "lemma9_distribution",
    "detailed_balance_violations",
    "empirical_distribution",
    "is_aperiodic",
    "is_irreducible",
    "stationary_from_matrix",
    "total_variation_distance",
    "SpectralSummary",
    "spectral_summary",
    "bottleneck_ratio",
    "gap_versus_parameters",
    "CoalescenceResult",
    "coupled_observable_coalescence",
    "convergence_from_extremes",
]
