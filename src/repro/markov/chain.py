"""Protocols and generic runners for discrete-time Markov chains."""

from __future__ import annotations

from typing import Callable, Iterator, List, Protocol, TypeVar, runtime_checkable

T = TypeVar("T")


@runtime_checkable
class MarkovChainProtocol(Protocol):
    """Minimal interface all chain samplers in this library satisfy."""

    iterations: int

    def step(self) -> bool:
        """Advance one iteration; return whether the state changed."""
        ...

    def run(self, steps: int) -> "MarkovChainProtocol":
        """Advance ``steps`` iterations."""
        ...


def sample_observable(
    chain: MarkovChainProtocol,
    observable: Callable[[], T],
    samples: int,
    thinning: int,
    burn_in: int = 0,
) -> List[T]:
    """Collect ``samples`` values of ``observable``, ``thinning`` steps apart.

    Runs ``burn_in`` iterations first.  The observable is a zero-argument
    callable (typically a closure over the chain's system), evaluated
    after each thinning block — the standard MCMC estimation loop used by
    the stationary-distribution tests and the experiment harness.
    """
    if samples < 0:
        raise ValueError(f"samples must be non-negative, got {samples}")
    if thinning < 1:
        raise ValueError(f"thinning must be positive, got {thinning}")
    if burn_in < 0:
        raise ValueError(f"burn_in must be non-negative, got {burn_in}")
    chain.run(burn_in)
    values: List[T] = []
    for _ in range(samples):
        chain.run(thinning)
        values.append(observable())
    return values


def run_chunked(
    chain: MarkovChainProtocol,
    total_steps: int,
    chunks: int,
) -> Iterator[int]:
    """Run ``total_steps`` in ``chunks`` pieces, yielding the step count so far.

    Lets callers interleave measurement with simulation without paying
    per-step callback overhead::

        for done in run_chunked(chain, 1_000_000, 100):
            record(done, system.perimeter())
    """
    if total_steps < 0:
        raise ValueError(f"total_steps must be non-negative, got {total_steps}")
    if chunks < 1:
        raise ValueError(f"chunks must be positive, got {chunks}")
    base = total_steps // chunks
    remainder = total_steps - base * chunks
    done = 0
    for i in range(chunks):
        size = base + (1 if i < remainder else 0)
        chain.run(size)
        done += size
        yield done
