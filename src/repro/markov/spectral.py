"""Spectral analysis of the chain: gaps, relaxation times, bottlenecks.

Section 5 of the paper discusses the open problem of bounding the mixing
time of :math:`\\mathcal{M}` (related to Glauber dynamics of the
low-temperature Ising model).  While no useful rigorous bounds are
known, for small systems the exact transition matrix makes the spectrum
directly computable:

* the **spectral gap** :math:`1 - \\lambda_2` and **relaxation time**
  :math:`1/(1-\\lambda_2)`, which bound mixing via
  :math:`t_{mix}(\\varepsilon) \\le t_{rel} \\ln(1/(\\varepsilon
  \\pi_{min}))` for reversible chains;
* the **conductance (bottleneck ratio)** of observable-defined cuts,
  exposing *where* the slowdown lives (e.g. between left-sorted and
  right-sorted configurations at large γ);
* empirical **autocorrelation-based relaxation estimates** for systems
  too large to enumerate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.markov.exact import ExactChainAnalysis


@dataclass(frozen=True)
class SpectralSummary:
    """Spectral quantities of a reversible chain."""

    second_eigenvalue: float
    spectral_gap: float
    relaxation_time: float
    mixing_time_bound: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"lambda_2={self.second_eigenvalue:.6f}, "
            f"gap={self.spectral_gap:.6f}, "
            f"t_rel={self.relaxation_time:.1f}, "
            f"t_mix(1/4) <= {self.mixing_time_bound:.0f}"
        )


def spectral_summary(
    analysis: ExactChainAnalysis, epsilon: float = 0.25
) -> SpectralSummary:
    """Exact spectral gap and mixing bound from the transition matrix.

    Uses the symmetrization :math:`D^{1/2} M D^{-1/2}` (with
    :math:`D = \\operatorname{diag}(\\pi)`), which shares M's spectrum
    for reversible chains and is numerically well behaved.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0,1), got {epsilon}")
    pi = analysis.pi
    sqrt_pi = np.sqrt(pi)
    symmetric = (sqrt_pi[:, None] / sqrt_pi[None, :]) * analysis.matrix
    eigenvalues = np.linalg.eigvalsh((symmetric + symmetric.T) / 2.0)
    eigenvalues = np.sort(eigenvalues)[::-1]
    if not math.isclose(eigenvalues[0], 1.0, abs_tol=1e-8):
        raise AssertionError(
            f"leading eigenvalue {eigenvalues[0]} is not 1; "
            "is the chain stochastic and reversible?"
        )
    second = float(eigenvalues[1])
    gap = 1.0 - second
    relaxation = math.inf if gap <= 0 else 1.0 / gap
    pi_min = float(pi.min())
    mixing_bound = (
        math.inf
        if relaxation == math.inf
        else relaxation * math.log(1.0 / (epsilon * pi_min))
    )
    return SpectralSummary(
        second_eigenvalue=second,
        spectral_gap=gap,
        relaxation_time=relaxation,
        mixing_time_bound=mixing_bound,
    )


def bottleneck_ratio(
    analysis: ExactChainAnalysis,
    in_cut: Callable[[object], bool],
) -> float:
    """Conductance :math:`\\Phi(S)` of the cut defined by a predicate.

    :math:`\\Phi(S) = \\sum_{x \\in S, y \\notin S} \\pi_x M_{xy} /
    \\min(\\pi(S), \\pi(S^c))`.  By Cheeger's inequality the spectral
    gap is at most :math:`2\\Phi_* \\le 2\\Phi(S)`, so a small cut value
    certifies slow mixing — the energy/entropy bottlenecks the paper's
    Section 5 alludes to.
    """
    membership = np.array([in_cut(state) for state in analysis.states])
    pi_s = float(analysis.pi[membership].sum())
    if pi_s <= 0.0 or pi_s >= 1.0:
        raise ValueError("cut must be a nontrivial subset of the state space")
    flow = float(
        (analysis.pi[membership, None] * analysis.matrix[membership][:, ~membership]).sum()
    )
    return flow / min(pi_s, 1.0 - pi_s)


def gap_versus_parameters(
    n: int,
    color_counts: Sequence[int],
    lambdas: Sequence[float],
    gammas: Sequence[float],
    swaps: bool = True,
) -> dict:
    """Spectral gap over a (λ, γ) grid for an enumerable system size.

    Returns ``{(lam, gamma): SpectralSummary}``.  The paper's slow-mixing
    intuition shows up as the gap shrinking with γ (deep separation
    creates bottlenecks between mirror-image sorted states).
    """
    results = {}
    for lam in lambdas:
        for gamma in gammas:
            analysis = ExactChainAnalysis(
                n, color_counts, lam=lam, gamma=gamma, swaps=swaps
            )
            results[(lam, gamma)] = spectral_summary(analysis)
    return results


def empirical_relaxation_time(
    chain,
    observable: Callable[[], float],
    samples: int = 2000,
    thinning: int = 10,
    burn_in: int = 10_000,
) -> float:
    """Autocorrelation-based relaxation estimate for large systems.

    Runs the chain and returns the integrated autocorrelation time of
    the observable, in *chain steps* (i.e. multiplied by the thinning
    interval).  A lower bound proxy for the relaxation time: slow modes
    visible to the observable bound the gap from above.
    """
    from repro.analysis.estimators import autocorrelation_time
    from repro.markov.chain import sample_observable

    series = sample_observable(
        chain, observable, samples=samples, thinning=thinning, burn_in=burn_in
    )
    return autocorrelation_time(series) * thinning
