"""Minimum perimeter and α-compression (Section 2.2, Lemma 2).

A configuration of ``n`` particles is α-compressed when its perimeter is
at most :math:`\\alpha \\cdot p_{min}(n)`.  The minimum perimeter is
achieved by hexagonal spirals; :func:`minimum_perimeter` implements the
closed form that follows from the construction in the proof of Lemma 2
(hexagon of side :math:`\\ell` plus a partial outer layer), which the
test suite verifies against brute-force enumeration for small ``n``.
"""

from __future__ import annotations

import math

from repro.system.configuration import ParticleSystem


def minimum_perimeter(n: int) -> int:
    """Exact minimum perimeter :math:`p_{min}(n)` over ``n``-particle configs.

    Derivation (Appendix A.1): the regular hexagon of side :math:`\\ell`
    holds :math:`3\\ell^2 + 3\\ell + 1` particles with perimeter
    :math:`6\\ell`; each of the six sides of the next layer adds one to
    the perimeter when first started.  For ``n = 1`` the perimeter is 0,
    and the small cases ``n <= 6`` follow the same pattern with
    :math:`\\ell = 0`.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if n == 1:
        return 0
    ell = int((math.isqrt(12 * n - 3) - 3) // 6)
    # Guard against floating/isqrt boundary effects.
    while 3 * (ell + 1) ** 2 + 3 * (ell + 1) + 1 <= n:
        ell += 1
    while 3 * ell**2 + 3 * ell + 1 > n:
        ell -= 1
    k = n - (3 * ell**2 + 3 * ell + 1)
    if k == 0:
        return 6 * ell
    # k extra particles in the next layer: perimeter 6*ell + i where i is
    # the number of sides of the new layer that have been started,
    # i.e. the smallest i in 1..6 with k <= i*ell + (i - 1).
    for i in range(1, 7):
        if k <= i * ell + (i - 1):
            return 6 * ell + i
    raise AssertionError(f"unreachable: n={n}, ell={ell}, k={k}")


def lemma2_upper_bound(n: int) -> float:
    """The bound :math:`p_{min}(n) \\le 2\\sqrt{3}\\sqrt{n}` of Lemma 2."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    return 2.0 * math.sqrt(3.0) * math.sqrt(n)


def alpha_of(system: ParticleSystem) -> float:
    """Compression factor :math:`p(\\sigma) / p_{min}(n)` of a configuration.

    Defined as 1.0 for the single-particle system (whose perimeter is 0).
    """
    p_min = minimum_perimeter(system.n)
    if p_min == 0:
        return 1.0
    return system.perimeter() / p_min


def is_alpha_compressed(system: ParticleSystem, alpha: float) -> bool:
    """Whether :math:`p(\\sigma) \\le \\alpha \\cdot p_{min}(n)`."""
    if alpha < 1:
        raise ValueError(f"alpha must be at least 1, got {alpha}")
    return system.perimeter() <= alpha * minimum_perimeter(system.n)


def maximum_perimeter(n: int) -> int:
    """Perimeter of the worst (line) configuration: :math:`2(n-1)`."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    return 2 * (n - 1)


def normalized_perimeter(system: ParticleSystem) -> float:
    """Perimeter rescaled to [0, 1] between minimum and maximum.

    0 for a perfect hexagon, 1 for a line; a convenient bounded order
    parameter for phase diagrams.
    """
    p_min = minimum_perimeter(system.n)
    p_max = maximum_perimeter(system.n)
    if p_max == p_min:
        return 0.0
    return (system.perimeter() - p_min) / (p_max - p_min)
