"""Geometry of color interfaces and monochromatic regions.

Observables beyond Definition 3's binary verdict: how long is the
boundary between the color classes, how many separate interfaces exist,
how spatially concentrated is each color, and how far apart the color
classes sit.  These quantify *degrees* of separation for phase diagrams
and time-series plots, complementing the certificate-based metric.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node, to_cartesian
from repro.system.configuration import ParticleSystem


def interface_edges(system: ParticleSystem) -> List[Tuple[Node, Node]]:
    """The heterogeneous edges (canonical orientation ``u < v``)."""
    colors = system.colors
    result: List[Tuple[Node, Node]] = []
    for (x, y), color in colors.items():
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            nbr_color = colors.get(nbr)
            if nbr_color is not None and nbr_color != color and (x, y) < nbr:
                result.append(((x, y), nbr))
    return result


def interface_component_count(system: ParticleSystem) -> int:
    """Number of connected components of the heterogeneous-edge set.

    Two interface edges are connected when they share an endpoint.  A
    cleanly separated system has one (or very few) interface components;
    an integrated one has many scattered fragments.
    """
    edges = interface_edges(system)
    if not edges:
        return 0
    adjacency: Dict[Node, List[int]] = {}
    for index, (u, v) in enumerate(edges):
        adjacency.setdefault(u, []).append(index)
        adjacency.setdefault(v, []).append(index)
    seen: Set[int] = set()
    components = 0
    for start in range(len(edges)):
        if start in seen:
            continue
        components += 1
        queue = deque([start])
        seen.add(start)
        while queue:
            index = queue.popleft()
            for endpoint in edges[index]:
                for other in adjacency[endpoint]:
                    if other not in seen:
                        seen.add(other)
                        queue.append(other)
    return components


@dataclass(frozen=True)
class ColorGeometry:
    """Spatial summary of one color class."""

    color: int
    count: int
    centroid: Tuple[float, float]
    radius_of_gyration: float


def color_geometry(system: ParticleSystem, color: int) -> ColorGeometry:
    """Centroid and radius of gyration of a color class (Cartesian)."""
    points = [
        to_cartesian(node)
        for node, c in system.colors.items()
        if c == color
    ]
    if not points:
        return ColorGeometry(color, 0, (0.0, 0.0), 0.0)
    cx = sum(p[0] for p in points) / len(points)
    cy = sum(p[1] for p in points) / len(points)
    gyration = math.sqrt(
        sum((p[0] - cx) ** 2 + (p[1] - cy) ** 2 for p in points) / len(points)
    )
    return ColorGeometry(color, len(points), (cx, cy), gyration)


def centroid_separation(system: ParticleSystem) -> float:
    """Cartesian distance between the color centroids, normalized by √n.

    Zero for perfectly intermixed systems (coinciding centroids); of
    order 1 when the colors occupy opposite halves of a compressed blob.
    """
    geometries = [
        color_geometry(system, color) for color in range(system.num_colors)
    ]
    present = [g for g in geometries if g.count > 0]
    if len(present) < 2:
        return 0.0
    best = 0.0
    for i in range(len(present)):
        for j in range(i + 1, len(present)):
            (ax, ay), (bx, by) = present[i].centroid, present[j].centroid
            best = max(best, math.hypot(ax - bx, ay - by))
    return best / math.sqrt(system.n)


def interface_summary(system: ParticleSystem) -> Dict[str, float]:
    """All interface observables in one dictionary.

    Keys: ``length`` (heterogeneous edges), ``components``,
    ``normalized_length`` (per √n, the natural scale of a single flat
    interface through a compressed blob), and ``centroid_separation``.
    """
    length = system.hetero_total
    return {
        "length": float(length),
        "components": float(interface_component_count(system)),
        "normalized_length": length / math.sqrt(system.n),
        "centroid_separation": centroid_separation(system),
    }


def demixing_index(system: ParticleSystem) -> float:
    """A [0, 1] order parameter for separation.

    Compares the observed heterogeneous-edge count against the
    expectation under a uniformly random recoloring of the same node set
    with the same color counts: ``1 - h / E_random[h]``, clipped at 0.
    For a balanced bichromatic system, a random coloring makes each edge
    heterogeneous with probability ``2 * (n/2) * (n/2) / (n(n-1)/ ...)``
    — computed exactly from the color counts below.  Values near 0 mean
    integrated; values near 1 mean separated.
    """
    n = system.n
    if system.edge_total == 0 or n < 2:
        return 0.0
    counts: Dict[int, int] = {}
    for color in system.colors.values():
        counts[color] = counts.get(color, 0) + 1
    # Probability two distinct uniformly-placed particles differ in color.
    same_pairs = sum(c * (c - 1) for c in counts.values())
    probability_hetero = 1.0 - same_pairs / (n * (n - 1))
    expected = system.edge_total * probability_hetero
    if expected == 0:
        return 0.0
    return max(0.0, 1.0 - system.hetero_total / expected)
