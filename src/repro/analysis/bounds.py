"""Executable forms of the paper's parameter conditions (Theorems 13-16).

Each theorem states a condition on the bias parameters under which a
behavior (α-compression, (β, δ)-separation, integration) occurs with high
probability.  These functions evaluate the conditions exactly as printed,
plus searches for the extremal parameters they admit — used by the
theorem-bound benchmark (E8) to compare proven regions against simulated
behavior.
"""

from __future__ import annotations

import math
from typing import Optional

#: The constant :math:`2(2+\sqrt{2})` of the Peierls arguments.
PEIERLS_CONSTANT = 2.0 * (2.0 + math.sqrt(2.0))

#: γ threshold of Theorem 13: :math:`4^{5/4} \approx 5.66`.
GAMMA_THRESHOLD_LARGE = 4.0 ** (5.0 / 4.0)

#: λγ threshold of the separation corollary:
#: :math:`2(2+\sqrt 2)e^{0.0003} \approx 6.83`.
SEPARATION_LAMBDA_GAMMA_THRESHOLD = PEIERLS_CONSTANT * math.exp(0.0003)

#: The γ window of Theorems 15/16, :math:`(79/81, 81/79)`.
GAMMA_WINDOW_SMALL = (79.0 / 81.0, 81.0 / 79.0)


def theorem13_condition(
    alpha: float, lam: float, gamma: float, c: float = 0.0001
) -> bool:
    """Compression condition for large γ (Theorem 13).

    :math:`\\gamma > 4^{5/4}` and
    :math:`\\frac{2(2+\\sqrt2)e^{3c}}{\\lambda\\gamma}
    (e^{3c} \\lambda \\gamma^{3/2})^{1/\\alpha} < 1`.
    """
    if alpha <= 1 or lam <= 0 or gamma <= 0:
        return False
    if gamma <= GAMMA_THRESHOLD_LARGE:
        return False
    lhs = (PEIERLS_CONSTANT * math.exp(3 * c) / (lam * gamma)) * (
        math.exp(3 * c) * lam * gamma**1.5
    ) ** (1.0 / alpha)
    return lhs < 1.0


def theorem13_min_alpha(
    lam: float, gamma: float, c: float = 0.0001
) -> Optional[float]:
    """Smallest α for which Theorem 13 proves α-compression.

    The condition's left side decreases in α toward
    :math:`2(2+\\sqrt2)e^{3c}/(\\lambda\\gamma)`, so a solution exists iff
    that limit is below 1 (the λγ > ~6.83 corollary).  Found by binary
    search; ``None`` when no α works.
    """
    if gamma <= GAMMA_THRESHOLD_LARGE:
        return None
    if PEIERLS_CONSTANT * math.exp(3 * c) / (lam * gamma) >= 1.0:
        return None
    low, high = 1.0, 2.0
    while not theorem13_condition(high, lam, gamma, c):
        high *= 2.0
        if high > 1e9:
            return None
    for _ in range(80):
        mid = 0.5 * (low + high)
        if theorem13_condition(mid, lam, gamma, c):
            high = mid
        else:
            low = mid
    return high


def theorem14_condition(
    alpha: float, beta: float, delta: float, gamma: float
) -> bool:
    """Separation condition among compressed configurations (Theorem 14).

    Requires :math:`\\beta > 2\\sqrt{3}\\alpha`, :math:`\\delta < 1/2`, and
    :math:`3^{2\\alpha\\sqrt3/\\beta} \\, 4^{(1+3\\delta)/(4\\delta)} \\,
    \\gamma^{-1 + 2\\alpha\\sqrt3/\\beta} < 1`.
    """
    if alpha < 1 or gamma <= 0:
        return False
    if beta <= 2.0 * math.sqrt(3.0) * alpha or not 0 < delta < 0.5:
        return False
    exponent = 2.0 * alpha * math.sqrt(3.0) / beta
    lhs = (
        3.0**exponent
        * 4.0 ** ((1.0 + 3.0 * delta) / (4.0 * delta))
        * gamma ** (-1.0 + exponent)
    )
    return lhs < 1.0


def theorem14_min_gamma(
    alpha: float, beta: float, delta: float
) -> Optional[float]:
    """Smallest γ for which Theorem 14 applies (``None`` if impossible).

    For :math:`\\beta > 2\\sqrt3\\alpha` the γ exponent
    :math:`-1 + 2\\alpha\\sqrt3/\\beta` is negative, so the condition
    holds for all sufficiently large γ; solve for the threshold in closed
    form.
    """
    if beta <= 2.0 * math.sqrt(3.0) * alpha or not 0 < delta < 0.5:
        return None
    exponent = 2.0 * alpha * math.sqrt(3.0) / beta
    # 3^exponent * 4^((1+3δ)/(4δ)) * γ^(exponent - 1) < 1
    # γ^(1 - exponent) > 3^exponent * 4^((1+3δ)/(4δ))
    log_rhs = exponent * math.log(3.0) + ((1.0 + 3.0 * delta) / (4.0 * delta)) * math.log(4.0)
    return math.exp(log_rhs / (1.0 - exponent))


def theorem15_condition(
    alpha: float, lam: float, gamma: float, a: float = 1e-5
) -> bool:
    """Compression condition for γ near one (Theorem 15).

    :math:`\\gamma \\in (79/81, 81/79)` and
    :math:`\\frac{2(2+\\sqrt2)e^{3a}}{\\lambda(\\gamma+1)}
    \\left(\\frac{\\lambda(\\gamma+1)}{2e^{-3a}(79/81)}\\right)^{1/\\alpha}
    < 1`.
    """
    if alpha <= 1 or lam <= 0:
        return False
    low, high = GAMMA_WINDOW_SMALL
    if not low < gamma < high:
        return False
    lhs = (PEIERLS_CONSTANT * math.exp(3 * a) / (lam * (gamma + 1.0))) * (
        lam * (gamma + 1.0) / (2.0 * math.exp(-3 * a) * (79.0 / 81.0))
    ) ** (1.0 / alpha)
    return lhs < 1.0


def theorem15_min_alpha(
    lam: float, gamma: float, a: float = 1e-5
) -> Optional[float]:
    """Smallest α for which Theorem 15 proves α-compression."""
    low, high_gamma = GAMMA_WINDOW_SMALL
    if not low < gamma < high_gamma:
        return None
    if PEIERLS_CONSTANT * math.exp(3 * a) / (lam * (gamma + 1.0)) >= 1.0:
        return None
    low_a, high_a = 1.0, 2.0
    while not theorem15_condition(high_a, lam, gamma, a):
        high_a *= 2.0
        if high_a > 1e9:
            return None
    for _ in range(80):
        mid = 0.5 * (low_a + high_a)
        if theorem15_condition(mid, lam, gamma, a):
            high_a = mid
        else:
            low_a = mid
    return high_a


def theorem16_condition(delta: float, gamma: float, grid: int = 2000) -> bool:
    """Integration condition (Theorem 16).

    Holds when :math:`\\delta < 1/4` and there exists
    :math:`\\mu \\in (\\delta/(1-2\\delta), 1/2)` with

    .. math::
       \\left(\\frac{\\mu}{1-\\mu}\\right)^{(\\mu - \\delta/(1-2\\delta))/11}
       < \\gamma <
       \\left(\\frac{1-\\mu}{\\mu}\\right)^{(\\mu - \\delta/(1-2\\delta))/11}.

    Searched over a μ grid.
    """
    if not 0 < delta < 0.25 or gamma <= 0:
        return False
    mu_low = delta / (1.0 - 2.0 * delta)
    if mu_low >= 0.5:
        return False
    for i in range(1, grid):
        mu = mu_low + (0.5 - mu_low) * i / grid
        exponent = (mu - mu_low) / 11.0
        ratio = mu / (1.0 - mu)
        lower = ratio**exponent
        upper = (1.0 / ratio) ** exponent
        if lower < gamma < upper:
            return True
    return False


def predicted_regime(lam: float, gamma: float) -> str:
    """What the paper's corollaries prove about (λ, γ), if anything.

    Returns one of:

    * ``"separates"`` — Theorems 13+14 apply: compressed and separated
      w.h.p. (:math:`\\gamma > 4^{5/4}`, :math:`\\lambda\\gamma > 6.83`);
    * ``"integrates"`` — Theorems 15+16 apply: compressed but not
      separated w.h.p. (:math:`\\gamma \\in (79/81, 81/79)`,
      :math:`\\lambda(\\gamma+1) > 6.83`);
    * ``"unproven"`` — outside both proven regions (the simulations of
      Figure 3 explore this much larger territory).
    """
    if lam > 1 and gamma > GAMMA_THRESHOLD_LARGE and (
        lam * gamma > SEPARATION_LAMBDA_GAMMA_THRESHOLD
    ):
        return "separates"
    low, high = GAMMA_WINDOW_SMALL
    if lam > 1 and low < gamma < high and (
        lam * (gamma + 1.0) > SEPARATION_LAMBDA_GAMMA_THRESHOLD
    ):
        return "integrates"
    return "unproven"
