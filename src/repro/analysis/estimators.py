"""Time-series estimation utilities for chain observables.

Standard MCMC output analysis: integrated autocorrelation times, batch
means error bars, and convergence/threshold detection for the
time-to-separation measurements of the swap-move ablation (E3).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np


def autocorrelation_time(
    series: Sequence[float], max_lag: Optional[int] = None
) -> float:
    """Integrated autocorrelation time with adaptive windowing.

    :math:`\\tau = 1 + 2\\sum_{t \\ge 1} \\rho_t`, truncated at the first
    lag where the window exceeds ``5 * tau`` (Sokal's heuristic).
    Returns 1.0 for i.i.d.-like or constant series.
    """
    data = np.asarray(series, dtype=float)
    n = len(data)
    if n < 4:
        raise ValueError(f"need at least 4 samples, got {n}")
    data = data - data.mean()
    variance = float(np.dot(data, data)) / n
    if variance == 0:
        return 1.0
    if max_lag is None:
        max_lag = n // 3
    tau = 1.0
    for lag in range(1, max_lag + 1):
        rho = float(np.dot(data[:-lag], data[lag:])) / ((n - lag) * variance)
        tau += 2.0 * rho
        if lag >= 5.0 * tau:
            break
    return max(tau, 1.0)


def effective_sample_size(series: Sequence[float]) -> float:
    """Number of samples divided by the autocorrelation time."""
    return len(series) / autocorrelation_time(series)


def batch_means_error(
    series: Sequence[float], num_batches: int = 20
) -> Tuple[float, float]:
    """Mean and standard error via the method of batch means.

    Splits the series into ``num_batches`` contiguous batches; the
    standard error of the overall mean is estimated from the spread of
    batch means, which absorbs autocorrelation for batches longer than
    the correlation time.
    """
    data = np.asarray(series, dtype=float)
    if num_batches < 2:
        raise ValueError(f"need at least 2 batches, got {num_batches}")
    if len(data) < 2 * num_batches:
        raise ValueError(
            f"need at least {2 * num_batches} samples, got {len(data)}"
        )
    usable = (len(data) // num_batches) * num_batches
    batches = data[:usable].reshape(num_batches, -1)
    means = batches.mean(axis=1)
    overall = float(means.mean())
    error = float(means.std(ddof=1) / math.sqrt(num_batches))
    return overall, error


def time_to_threshold(
    times: Sequence[int],
    values: Sequence[float],
    threshold: float,
    direction: str = "below",
    patience: int = 1,
) -> Optional[int]:
    """First time the series crosses a threshold and stays there.

    ``direction`` is ``"below"`` or ``"above"``; ``patience`` is the
    number of consecutive qualifying samples required (guards against a
    single fluctuation through the threshold).  Returns the time of the
    first sample of the qualifying run, or ``None``.
    """
    if len(times) != len(values):
        raise ValueError(
            f"times and values length mismatch: {len(times)} vs {len(values)}"
        )
    if direction not in ("below", "above"):
        raise ValueError(f"direction must be 'below' or 'above', got {direction!r}")
    if patience < 1:
        raise ValueError(f"patience must be positive, got {patience}")
    run_start: Optional[int] = None
    run_length = 0
    for t, value in zip(times, values):
        qualifies = value <= threshold if direction == "below" else value >= threshold
        if qualifies:
            if run_length == 0:
                run_start = t
            run_length += 1
            if run_length >= patience:
                return run_start
        else:
            run_length = 0
            run_start = None
    return None


def running_mean(series: Sequence[float], window: int) -> np.ndarray:
    """Centered-window running mean (shorter windows at the edges)."""
    if window < 1:
        raise ValueError(f"window must be positive, got {window}")
    data = np.asarray(series, dtype=float)
    result = np.empty_like(data)
    half = window // 2
    for i in range(len(data)):
        lo = max(0, i - half)
        hi = min(len(data), i + half + 1)
        result[i] = data[lo:hi].mean()
    return result
