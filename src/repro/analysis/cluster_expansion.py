"""Abstract polymer models and the cluster expansion (Theorems 10 and 11).

A polymer model is a finite set of polymers with real weights and a
symmetric compatibility relation.  Its partition function

.. math::
   \\Xi = \\sum_{\\Gamma' \\text{ compatible}} \\prod_{\\xi \\in \\Gamma'} w(\\xi)

is the weighted independent-set polynomial of the incompatibility graph.
This module computes:

* :func:`log_partition_function` — exact Ξ by branch recursion;
* :func:`truncated_cluster_expansion` — the power series
  :math:`\\ln \\Xi = \\sum_X \\Psi(X)` truncated at a cluster size, with
  Ursell functions computed by inclusion-exclusion over connected
  spanning subgraphs (Equation 2 of the paper);
* :func:`kotecky_preiss_margin` — the convergence condition of
  Theorem 10 / Equation 3, evaluated numerically;
* :func:`psi_per_edge` and :func:`volume_surface_split` — the
  volume/surface decomposition of Theorem 11, with numerical bounds
  :math:`e^{\\psi|\\Lambda| - c|\\partial\\Lambda|} \\le \\Xi_\\Lambda \\le
  e^{\\psi|\\Lambda| + c|\\partial\\Lambda|}`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations, combinations_with_replacement
from typing import Callable, Dict, List, Optional, Sequence, Tuple

Polymer = object
Weight = Callable[[Polymer], float]
Compatible = Callable[[Polymer, Polymer], bool]


@dataclass
class PolymerModel:
    """A finite polymer model: polymers, weights, pairwise compatibility."""

    polymers: Sequence[Polymer]
    weight: Weight
    compatible: Compatible

    def incompatibility_matrix(self) -> List[List[bool]]:
        """``m[i][j]`` — whether polymers i and j are incompatible.

        By convention a polymer is incompatible with itself (a cluster may
        repeat a polymer; repeats always touch).
        """
        size = len(self.polymers)
        matrix = [[False] * size for _ in range(size)]
        for i in range(size):
            matrix[i][i] = True
            for j in range(i + 1, size):
                if not self.compatible(self.polymers[i], self.polymers[j]):
                    matrix[i][j] = True
                    matrix[j][i] = True
        return matrix

    def weights(self) -> List[float]:
        """Weight of each polymer, in order."""
        return [self.weight(p) for p in self.polymers]


def partition_function(model: PolymerModel) -> float:
    """Exact Ξ by branching on polymer inclusion.

    Recurrence: pick a polymer p; Ξ(S) = Ξ(S − p) + w(p)·Ξ(S − N[p]),
    where N[p] is p plus everything incompatible with it.  Exponential in
    the worst case but fast for the moderately sized models used in tests
    and benchmarks.
    """
    incompatible = model.incompatibility_matrix()
    weights = model.weights()
    size = len(weights)

    def recurse(available: Tuple[int, ...]) -> float:
        if not available:
            return 1.0
        head, rest = available[0], available[1:]
        without = recurse(rest)
        reduced = tuple(i for i in rest if not incompatible[head][i])
        with_head = weights[head] * recurse(reduced)
        return without + with_head

    return recurse(tuple(range(size)))


def log_partition_function(model: PolymerModel) -> float:
    """:math:`\\ln \\Xi`; raises if Ξ is non-positive.

    Ξ can be non-positive for wildly negative weights, in which case the
    cluster expansion is meaningless anyway.
    """
    xi = partition_function(model)
    if xi <= 0:
        raise ValueError(f"partition function is non-positive: {xi}")
    return math.log(xi)


def ursell_factor(
    indices: Tuple[int, ...], incompatible: List[List[bool]]
) -> float:
    """The combinatorial factor of a cluster in Equation 2.

    For the multiset of polymer ``indices`` (with repetition), computes
    :math:`\\sum_{G \\subseteq H_X \\text{ conn. spanning}} (-1)^{|E(G)|}`
    divided by the product of multiplicities' factorials — i.e. exactly
    the coefficient multiplying :math:`\\prod w` after grouping the
    ordered multisets of Equation 2 into unordered ones.  Returns 0 for
    disconnected incompatibility graphs (not clusters).
    """
    m = len(indices)
    # Incompatibility graph H_X on positions 0..m-1.
    h_edges = [
        (a, b)
        for a, b in combinations(range(m), 2)
        if incompatible[indices[a]][indices[b]]
    ]
    adjacency = {i: set() for i in range(m)}
    for a, b in h_edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    if not _connected(adjacency, m):
        return 0.0
    # Inclusion-exclusion over connected spanning subgraphs of H_X.
    total = 0
    for k in range(m - 1, len(h_edges) + 1):
        for subset in combinations(h_edges, k):
            sub_adj = {i: set() for i in range(m)}
            for a, b in subset:
                sub_adj[a].add(b)
                sub_adj[b].add(a)
            if _connected(sub_adj, m):
                total += (-1) ** k
    multiplicity_product = 1
    for index in set(indices):
        multiplicity_product *= math.factorial(indices.count(index))
    return total / multiplicity_product


def _connected(adjacency: Dict[int, set], size: int) -> bool:
    if size == 0:
        return True
    seen = {0}
    stack = [0]
    while stack:
        node = stack.pop()
        for nxt in adjacency[node]:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return len(seen) == size


def truncated_cluster_expansion(
    model: PolymerModel, max_cluster_size: int
) -> float:
    """:math:`\\ln \\Xi` approximated by clusters of at most the given size.

    Under the Kotecký–Preiss condition the truncation error decays
    geometrically in the cluster size; the tests compare this against the
    exact :func:`log_partition_function` on small models.
    """
    if max_cluster_size < 1:
        raise ValueError(
            f"max_cluster_size must be positive, got {max_cluster_size}"
        )
    incompatible = model.incompatibility_matrix()
    weights = model.weights()
    total = 0.0
    size = len(weights)
    for m in range(1, max_cluster_size + 1):
        for indices in combinations_with_replacement(range(size), m):
            factor = ursell_factor(indices, incompatible)
            if factor == 0.0:
                continue
            product = 1.0
            for index in indices:
                product *= weights[index]
            total += factor * product
    return total


def kotecky_preiss_margin(
    polymers_through_element: Sequence[Polymer],
    weight: Weight,
    closure_size: Callable[[Polymer], int],
    c: float,
) -> float:
    """Slack in Theorem 11's condition (Equation 3) for one lattice edge.

    Returns :math:`c - \\sum_{\\xi \\ni e} |w(\\xi)| e^{c|[\\xi]|}` over the
    supplied (truncated) enumeration of polymers through a fixed edge.
    Positive slack means the truncated sum satisfies the condition; the
    caller must separately bound the enumeration tail (e.g. with the
    :math:`\\nu^k` counting bound of Lemma 1).
    """
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    total = sum(
        abs(weight(p)) * math.exp(c * closure_size(p))
        for p in polymers_through_element
    )
    return c - total


def find_kp_constant(
    polymers_through_element: Sequence[Polymer],
    weight: Weight,
    closure_size: Callable[[Polymer], int],
    c_max: float = 1.0,
    steps: int = 200,
) -> Optional[float]:
    """Smallest ``c`` (on a grid) satisfying the Kotecký–Preiss condition.

    Scans ``c`` over ``(0, c_max]`` and returns the first value whose
    margin is non-negative for the supplied truncated enumeration, or
    ``None``.  The weighted sum increases with ``c`` while the bound is
    ``c`` itself, so once the weight total at ``c -> 0`` exceeds ``c_max``
    no grid value will work.
    """
    for i in range(1, steps + 1):
        c = c_max * i / steps
        if kotecky_preiss_margin(
            polymers_through_element, weight, closure_size, c
        ) >= 0:
            return c
    return None


def psi_per_edge(
    model: PolymerModel,
    element_of: Callable[[Polymer], Sequence[object]],
    reference_element: object,
    max_cluster_size: int,
) -> float:
    """The volume constant ψ of Theorem 11, truncated.

    :math:`\\psi = \\sum_{X: e \\in \\bar X} \\Psi(X) / |\\bar X|` over
    clusters whose support contains the reference element, where the
    support :math:`\\bar X` is the union of the polymers' elements.
    ``model.polymers`` must contain every polymer that could participate
    in such a cluster (e.g. all polymers through or near the reference
    edge).  Irrelevant polymers are pruned automatically: a cluster is
    connected through incompatibility, so only polymers within
    ``max_cluster_size - 1`` incompatibility hops of one containing the
    reference element can contribute.
    """
    incompatible = model.incompatibility_matrix()
    elements = [frozenset(element_of(p)) for p in model.polymers]

    # Prune to polymers reachable from the reference element's polymers.
    seeds = [i for i, els in enumerate(elements) if reference_element in els]
    reachable = set(seeds)
    frontier = set(seeds)
    for _ in range(max_cluster_size - 1):
        nxt = {
            j
            for i in frontier
            for j in range(len(elements))
            if j not in reachable and incompatible[i][j]
        }
        reachable |= nxt
        frontier = nxt
    keep = sorted(reachable)
    incompatible = [
        [incompatible[i][j] for j in keep] for i in keep
    ]
    elements = [elements[i] for i in keep]
    weights = [model.weight(model.polymers[i]) for i in keep]

    total = 0.0
    size = len(weights)
    for m in range(1, max_cluster_size + 1):
        for indices in combinations_with_replacement(range(size), m):
            support = frozenset().union(*(elements[i] for i in indices))
            if reference_element not in support:
                continue
            factor = ursell_factor(indices, incompatible)
            if factor == 0.0:
                continue
            product = 1.0
            for index in indices:
                product *= weights[index]
            total += factor * product / len(support)
    return total


def volume_surface_split(
    log_xi: float,
    psi: float,
    volume: int,
    boundary: int,
    c: float,
) -> Tuple[float, float, bool]:
    """Check Theorem 11's sandwich for a concrete region.

    Given :math:`\\ln \\Xi_\\Lambda`, the volume constant ψ,
    :math:`|\\Lambda|`, :math:`|\\partial\\Lambda|`, and ``c``, returns
    ``(lower, upper, holds)`` where the bounds are
    :math:`\\psi|\\Lambda| \\mp c|\\partial\\Lambda|` and ``holds`` is
    whether :math:`\\ln \\Xi_\\Lambda` lies between them.
    """
    lower = psi * volume - c * boundary
    upper = psi * volume + c * boundary
    return lower, upper, lower <= log_xi <= upper
