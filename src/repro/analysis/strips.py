"""Strip decomposition and concentration checks (Theorem 16 machinery).

Theorem 16's proof "uses a probabilistic argument, a Chernoff-type
bound, and a decomposition of configurations into different regions":
if a compressed configuration were separated, some region would have to
carry a large color surplus, but for γ near 1 the colors behave like a
near-uniform random assignment, making large per-region surpluses
exponentially unlikely.

This module makes that argument executable:

* :func:`strip_decomposition` — cut a configuration into vertical strips
  of a given width (regions in the proof's sense);
* :func:`strip_color_surpluses` — the per-strip deviation of the color
  balance from the global balance;
* :func:`chernoff_surplus_bound` — the Chernoff/Hoeffding tail bound on
  a strip's surplus under uniformly random coloring;
* :func:`max_surplus_summary` — observed maximum surplus vs. the union
  bound over strips, the quantity whose smallness certifies integration
  (and whose largeness accompanies separation).

The integration benchmark (E14) shows: at γ ≈ 1 the observed maxima sit
inside the Chernoff envelope (integration), while at large γ they blow
past it (separation), reproducing the dichotomy the theorems establish.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.system.configuration import ParticleSystem


@dataclass(frozen=True)
class Strip:
    """One vertical strip of a configuration."""

    index: int
    x_min: int
    x_max: int  # inclusive
    size: int
    count_color1: int

    @property
    def fraction_color1(self) -> float:
        """Fraction of this strip's particles with color 1."""
        return self.count_color1 / self.size if self.size else 0.0


#: The three lattice axes: coordinate functions whose level sets are the
#: three families of lattice lines (cube coordinates q, r, s).
AXIS_COORDINATES = (
    lambda x, y: x,
    lambda x, y: y,
    lambda x, y: -x - y,
)


def strip_decomposition(
    system: ParticleSystem, width: int, color: int = 1, axis: int = 0
) -> List[Strip]:
    """Partition particles into strips of ``width`` lattice lines.

    ``axis`` selects one of the three lattice-line families (cube
    coordinates q, r, s) to band by; the proof's "regions" correspond to
    such bands.  Empty strips are omitted.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1, or 2, got {axis}")
    coordinate = AXIS_COORDINATES[axis]
    entries: Dict[int, List[int]] = {}
    for (x, y), c in system.colors.items():
        column = coordinate(x, y) // width
        entries.setdefault(column, []).append(c)
    strips: List[Strip] = []
    for index, column in enumerate(sorted(entries)):
        colors = entries[column]
        strips.append(
            Strip(
                index=index,
                x_min=column * width,
                x_max=(column + 1) * width - 1,
                size=len(colors),
                count_color1=sum(1 for c in colors if c == color),
            )
        )
    return strips


def strip_color_surpluses(
    system: ParticleSystem, width: int, color: int = 1, axis: int = 0
) -> List[float]:
    """Per-strip surplus: |strip count - fair share| along one axis.

    In the proof's terms, the number of excess particles of the
    reference color a region holds beyond its fair share.
    """
    global_count = sum(1 for c in system.colors.values() if c == color)
    global_fraction = global_count / system.n
    return [
        abs(strip.count_color1 - global_fraction * strip.size)
        for strip in strip_decomposition(system, width, color, axis)
    ]


def chernoff_surplus_bound(
    strip_size: int, n: int, count_color1: int, probability: float
) -> float:
    """Hoeffding tail: P(|surplus| >= t) <= 2 exp(-2 t² / m).

    For a strip of ``m`` particles whose colors were assigned by
    uniformly sampling ``count_color1`` of ``n`` positions (sampling
    without replacement only sharpens Hoeffding), the probability the
    surplus reaches ``t = probability-quantile`` is bounded; this
    function returns the smallest ``t`` with tail below ``probability``.
    """
    if strip_size < 1:
        raise ValueError(f"strip_size must be positive, got {strip_size}")
    if not 0 < probability < 1:
        raise ValueError(f"probability must be in (0,1), got {probability}")
    if not 0 <= count_color1 <= n:
        raise ValueError("count_color1 out of range")
    return math.sqrt(strip_size * math.log(2.0 / probability) / 2.0)


@dataclass(frozen=True)
class SurplusSummary:
    """Observed vs. bound for the maximum strip surplus."""

    width: int
    axis: int
    num_strips: int
    max_surplus: float
    chernoff_envelope: float

    @property
    def exceeds_envelope(self) -> bool:
        """Whether the observed maximum breaks the random-coloring bound.

        True is evidence of genuine color segregation (Theorem 14
        regime); False is consistent with integration (Theorem 16).
        """
        return self.max_surplus > self.chernoff_envelope


def max_surplus_summary(
    system: ParticleSystem,
    width: int,
    color: int = 1,
    confidence: float = 0.99,
    axis: int = None,
) -> SurplusSummary:
    """Maximum observed strip surplus vs. the union-bounded envelope.

    The envelope is the Chernoff quantile at failure probability
    ``(1 - confidence) / num_strips`` applied to the largest strip —
    i.e. with probability ``confidence`` a uniformly random coloring
    keeps *every* strip inside it.  With ``axis=None`` all three lattice
    axes are scanned and the most segregated one is reported (a
    separated system shows its surplus only perpendicular to its
    interface).
    """
    axes = (0, 1, 2) if axis is None else (axis,)
    best: SurplusSummary = None
    count_color1 = sum(1 for c in system.colors.values() if c == color)
    for candidate_axis in axes:
        strips = strip_decomposition(system, width, color, candidate_axis)
        if not strips:
            raise ValueError("configuration produced no strips")
        surpluses = strip_color_surpluses(
            system, width, color, candidate_axis
        )
        per_strip_probability = (1.0 - confidence) / len(strips)
        envelope = max(
            chernoff_surplus_bound(
                strip.size, system.n, count_color1, per_strip_probability
            )
            for strip in strips
        )
        summary = SurplusSummary(
            width=width,
            axis=candidate_axis,
            num_strips=len(strips),
            max_surplus=max(surpluses),
            chernoff_envelope=envelope,
        )
        if best is None or (
            summary.max_surplus - summary.chernoff_envelope
            > best.max_surplus - best.chernoff_envelope
        ):
            best = summary
    return best


def surplus_profile(
    system: ParticleSystem, widths: Sequence[int], color: int = 1
) -> Dict[int, SurplusSummary]:
    """Surplus summaries across strip widths (the proof sweeps scales)."""
    return {
        width: max_surplus_summary(system, width, color) for width in widths
    }
