"""Enumeration of polymers on the triangular lattice.

The paper's two polymer models (Section 4) use:

* **loop polymers** — minimal cut sets, geometrically closed loops of
  lattice edges; compatible when they share no edges.  We realize them as
  self-avoiding cycles.
* **even polymers** — connected edge sets with even degree at every
  vertex (the high-temperature expansion's terms); compatible when they
  share no vertices.

Both enumerations are parameterized by a maximum size so that truncated
Kotecký–Preiss sums and cluster expansions can be computed numerically,
with tails bounded by the :math:`\\nu^k` counting bound of Lemma 1.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lattice.triangular import Node, edge_key, neighbors

Edge = Tuple[Node, Node]
EdgeSet = FrozenSet[Edge]
EdgeFilter = Optional[Callable[[Edge], bool]]

#: The canonical reference edge used by translation-invariant sums.
REFERENCE_EDGE: Edge = edge_key((0, 0), (1, 0))


def _loops_through(
    edge: Edge, max_length: int, allowed: EdgeFilter = None
) -> List[EdgeSet]:
    """Self-avoiding cycles through ``edge`` using only ``allowed`` edges."""
    if max_length < 3:
        return []
    u, v = edge
    loops: List[EdgeSet] = []
    path_edges: List[Edge] = [edge]
    visited: Set[Node] = {u, v}

    def extend(current: Node) -> None:
        for nxt in neighbors(current):
            step = edge_key(current, nxt)
            if allowed is not None and not allowed(step):
                continue
            if nxt == u and len(path_edges) >= 2:
                loops.append(frozenset(path_edges + [step]))
                continue
            if nxt in visited or len(path_edges) + 2 > max_length:
                continue
            visited.add(nxt)
            path_edges.append(step)
            extend(nxt)
            path_edges.pop()
            visited.discard(nxt)

    extend(v)
    return loops


@lru_cache(maxsize=8)
def enumerate_loops_through_edge(
    max_length: int, edge: Edge = REFERENCE_EDGE
) -> List[EdgeSet]:
    """All self-avoiding cycles through ``edge`` with at most ``max_length`` edges.

    A cycle is returned as a frozen set of canonical edge keys; each
    undirected cycle appears exactly once.  The shortest loops on the
    triangular lattice are the two unit triangles through the edge.
    """
    return _loops_through(edge, max_length)


def loop_counts_by_length(max_length: int) -> Dict[int, int]:
    """Number of loops through the reference edge, by length.

    Used to estimate the loop growth constant and bound Kotecký–Preiss
    tails; on the triangular lattice the counts begin 2 (triangles),
    3 (rhombi), ...
    """
    counts: Dict[int, int] = {}
    for loop in enumerate_loops_through_edge(max_length):
        counts[len(loop)] = counts.get(len(loop), 0) + 1
    return counts


def _edges_touching(edge_set: FrozenSet[Edge], allowed: EdgeFilter) -> Set[Edge]:
    """Allowed lattice edges sharing a vertex with ``edge_set``, not in it."""
    vertices: Set[Node] = set()
    for a, b in edge_set:
        vertices.add(a)
        vertices.add(b)
    adjacent: Set[Edge] = set()
    for vertex in vertices:
        for nbr in neighbors(vertex):
            candidate = edge_key(vertex, nbr)
            if candidate in edge_set:
                continue
            if allowed is not None and not allowed(candidate):
                continue
            adjacent.add(candidate)
    return adjacent


def _connected_edge_sets_through(
    edge: Edge, max_edges: int, allowed: EdgeFilter = None
) -> List[EdgeSet]:
    """Connected edge sets containing ``edge``, grown breadth-first."""
    if max_edges < 1:
        return []
    start: EdgeSet = frozenset([edge])
    level: Set[EdgeSet] = {start}
    all_sets: List[EdgeSet] = [start]
    for _ in range(2, max_edges + 1):
        next_level: Set[EdgeSet] = set()
        for edge_set in level:
            for extra in _edges_touching(edge_set, allowed):
                next_level.add(edge_set | {extra})
        all_sets.extend(next_level)
        level = next_level
    return all_sets


@lru_cache(maxsize=8)
def enumerate_connected_edge_sets_through_edge(
    max_edges: int, edge: Edge = REFERENCE_EDGE
) -> List[EdgeSet]:
    """All connected edge sets containing ``edge`` with at most ``max_edges``
    edges.  Exponential in ``max_edges`` — keep it at 7 or below.
    """
    return _connected_edge_sets_through(edge, max_edges)


def is_even_subgraph(edge_set: FrozenSet[Edge]) -> bool:
    """Whether every vertex of the edge set has even degree."""
    degree: Dict[Node, int] = {}
    for a, b in edge_set:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1
    return all(d % 2 == 0 for d in degree.values())


@lru_cache(maxsize=8)
def enumerate_even_polymers_through_edge(
    max_edges: int, edge: Edge = REFERENCE_EDGE
) -> List[EdgeSet]:
    """Connected even-degree edge sets through ``edge``, up to ``max_edges``.

    These are the polymers of the high-temperature expansion (Theorem 15
    machinery).  The smallest are the two triangles through the edge; at
    six edges, pairs of triangles sharing a vertex appear (degree 4 at
    the shared vertex is even).
    """
    return [
        edge_set
        for edge_set in enumerate_connected_edge_sets_through_edge(max_edges, edge)
        if is_even_subgraph(edge_set)
    ]


def polymer_vertices(edge_set: FrozenSet[Edge]) -> Set[Node]:
    """All vertices incident to the polymer's edges."""
    vertices: Set[Node] = set()
    for a, b in edge_set:
        vertices.add(a)
        vertices.add(b)
    return vertices


def loops_share_edge(a: FrozenSet[Edge], b: FrozenSet[Edge]) -> bool:
    """Incompatibility for loop polymers: sharing at least one edge."""
    return not a.isdisjoint(b)


def polymers_share_vertex(a: FrozenSet[Edge], b: FrozenSet[Edge]) -> bool:
    """Incompatibility for even polymers: sharing at least one vertex."""
    return not polymer_vertices(a).isdisjoint(polymer_vertices(b))


def loop_closure_size(edge_set: FrozenSet[Edge]) -> int:
    """:math:`|[\\xi]|` for loop polymers: the loop's own edges."""
    return len(edge_set)


def even_closure_size(edge_set: FrozenSet[Edge]) -> int:
    """:math:`|[\\xi]|` for even polymers: edges sharing a vertex with ξ.

    Per Section 4, the closure of an even polymer is the set of edges with
    an endpoint among the polymer's vertices (including its own edges).
    """
    closure: Set[Edge] = set(edge_set)
    for vertex in polymer_vertices(edge_set):
        for nbr in neighbors(vertex):
            closure.add(edge_key(vertex, nbr))
    return len(closure)


def all_polymers_in_region(
    region_edges: Set[Edge],
    max_size: int,
    kind: str = "loop",
) -> List[EdgeSet]:
    """Every polymer of the given kind fully inside a finite region Λ.

    Enumerated directly within the region: for each region edge ``e`` (in
    canonical order), polymers through ``e`` whose minimum edge is ``e``
    — so each polymer appears exactly once.  ``kind`` is ``"loop"`` or
    ``"even"``.
    """
    if kind not in ("loop", "even"):
        raise ValueError(f"unknown polymer kind: {kind!r}")
    region = set(region_edges)
    found: List[EdgeSet] = []
    for base_edge in sorted(region):
        remaining = {e for e in region if e >= base_edge}
        allowed = remaining.__contains__
        if kind == "loop":
            candidates = _loops_through(base_edge, max_size, allowed)
        else:
            candidates = [
                edge_set
                for edge_set in _connected_edge_sets_through(
                    base_edge, max_size, allowed
                )
                if is_even_subgraph(edge_set)
            ]
        found.extend(c for c in candidates if min(c) == base_edge)
    return sorted(found, key=lambda p: (len(p), sorted(p)))


def triangle_edges(region_nodes: Set[Node]) -> Set[Edge]:
    """All lattice edges with both endpoints in a node region.

    Convenience for building the finite regions Λ used by
    :func:`all_polymers_in_region` and the Theorem 11 verification.
    """
    edges: Set[Edge] = set()
    for node in region_nodes:
        for nbr in neighbors(node):
            if nbr in region_nodes:
                edges.add(edge_key(node, nbr))
    return edges
