"""(β, δ)-separation certification (Definition 3).

A 2-heterogeneous configuration σ is (β, δ)-separated when there exists a
particle subset R with:

1. at most :math:`\\beta\\sqrt{n}` configuration edges crossing between R
   and its complement;
2. density of the reference color inside R at least :math:`1 - \\delta`;
3. density of the reference color outside R at most :math:`\\delta`.

The definition is *existential*, and R need not be connected, so deciding
it exactly requires searching over subsets.  We provide:

* :func:`is_separated_exact` — exhaustive search, exponential in ``n``
  (practical to ``n`` around 18; used on enumerated small systems);
* :func:`best_certificate` — polynomial-time certificate search combining
  monochromatic-cluster unions and minimum-cut relaxations (via
  networkx max-flow).  Certificates are always *verified* against the
  definition before being returned, so a returned certificate is sound;
  only completeness (failing to find an R that exists) is heuristic.

Both colors are tried as the reference color ``c1`` — the definition
names a specific color, but a system separated with respect to either
color has the large monochromatic regions the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node
from repro.system.configuration import ParticleSystem


@dataclass(frozen=True)
class SeparationCertificate:
    """A verified witness that a configuration is (β, δ)-separated.

    Attributes record the witnessing subset and the quantities entering
    Definition 3, so callers can report how much slack the certificate
    has.
    """

    region: FrozenSet[Node]
    color: int
    cut_edges: int
    density_inside: float
    density_outside: float
    beta_achieved: float

    def satisfies(self, beta: float, delta: float) -> bool:
        """Whether this witness meets the given (β, δ) thresholds."""
        return (
            self.beta_achieved <= beta
            and self.density_inside >= 1.0 - delta
            and self.density_outside <= delta
        )


def cut_edge_count(system: ParticleSystem, region: Set[Node]) -> int:
    """Number of configuration edges with exactly one endpoint in ``region``."""
    colors = system.colors
    count = 0
    for x, y in region:
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            if nbr in colors and nbr not in region:
                count += 1
    return count


def evaluate_region(
    system: ParticleSystem, region: Set[Node], color: int
) -> Optional[SeparationCertificate]:
    """Measure a candidate region against Definition 3's quantities.

    Returns ``None`` for degenerate regions (empty or all particles,
    which cannot certify separation of a genuinely bichromatic system
    for δ < 1/2) and for regions containing unoccupied nodes (stale
    certificates measured against a different configuration).
    """
    n = system.n
    if not region or len(region) == n:
        return None
    colors = system.colors
    if any(node not in colors for node in region):
        return None
    inside_total = len(region)
    inside_color = sum(1 for node in region if colors[node] == color)
    outside_total = n - inside_total
    outside_color = sum(
        1 for node, c in colors.items() if c == color and node not in region
    )
    cut = cut_edge_count(system, region)
    return SeparationCertificate(
        region=frozenset(region),
        color=color,
        cut_edges=cut,
        density_inside=inside_color / inside_total,
        density_outside=outside_color / outside_total,
        beta_achieved=cut / math.sqrt(n),
    )


def verify_certificate(
    system: ParticleSystem,
    certificate: SeparationCertificate,
    beta: float,
    delta: float,
) -> bool:
    """Re-measure a certificate's region and check it against (β, δ).

    Guards against stale certificates: all quantities are recomputed from
    the current system state.
    """
    measured = evaluate_region(system, set(certificate.region), certificate.color)
    return measured is not None and measured.satisfies(beta, delta)


# ----------------------------------------------------------------------
# Exact decision (exponential; small systems only)
# ----------------------------------------------------------------------


def is_separated_exact(
    system: ParticleSystem, beta: float, delta: float, max_n: int = 18
) -> bool:
    """Exhaustively decide (β, δ)-separation.

    Searches all subsets R over each reference color.  Raises for systems
    larger than ``max_n`` to prevent accidental exponential blowups; use
    :func:`best_certificate` for larger systems.
    """
    n = system.n
    if n > max_n:
        raise ValueError(
            f"exact separation check is exponential; n={n} exceeds max_n={max_n}"
        )
    nodes = sorted(system.colors)
    for color in range(system.num_colors):
        for size in range(1, n):
            for subset in combinations(nodes, size):
                cert = evaluate_region(system, set(subset), color)
                if cert is not None and cert.satisfies(beta, delta):
                    return True
    return False


# ----------------------------------------------------------------------
# Polynomial-time certificate search
# ----------------------------------------------------------------------


def _cluster_union_candidates(
    system: ParticleSystem, color: int
) -> List[Set[Node]]:
    """Candidate regions: unions of the largest same-color clusters."""
    colors = system.colors
    # Collect clusters of `color` with their node sets, largest first.
    seen: Set[Node] = set()
    clusters: List[Set[Node]] = []
    for start, c in colors.items():
        if c != color or start in seen:
            continue
        component = {start}
        stack = [start]
        seen.add(start)
        while stack:
            x, y = stack.pop()
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr = (x + dx, y + dy)
                if nbr not in seen and colors.get(nbr) == color:
                    seen.add(nbr)
                    component.add(nbr)
                    stack.append(nbr)
        clusters.append(component)
    clusters.sort(key=len, reverse=True)
    candidates: List[Set[Node]] = []
    union: Set[Node] = set()
    for cluster in clusters[:6]:
        union = union | cluster
        candidates.append(set(union))
    return candidates


def _mincut_candidates(system: ParticleSystem, color: int) -> List[Set[Node]]:
    """Candidate regions from s-t minimum cuts.

    Builds the configuration graph with unit capacities, attaches every
    particle of the reference color to a super-source and every other
    particle to a super-sink with capacity μ, and sweeps the
    misclassification penalty μ.  Small μ tolerates impurities (few cut
    edges); large μ forces color purity.  Each min cut yields a candidate
    R = source side.
    """
    colors = system.colors
    graph = nx.Graph()
    for (x, y), c in colors.items():
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            if nbr in colors and (x, y) < nbr:
                graph.add_edge((x, y), nbr, capacity=1.0)
    source = "__source__"
    sink = "__sink__"
    candidates: List[Set[Node]] = []
    for mu in (0.25, 0.5, 1.0, 2.0, 4.0):
        graph.add_node(source)
        graph.add_node(sink)
        for node, c in colors.items():
            if c == color:
                graph.add_edge(source, node, capacity=mu)
            else:
                graph.add_edge(node, sink, capacity=mu)
        _, (source_side, _) = nx.minimum_cut(graph, source, sink)
        region = {node for node in source_side if node != source}
        if region and len(region) < len(colors):
            candidates.append(region)
        graph.remove_node(source)
        graph.remove_node(sink)
    return candidates


def best_certificate(
    system: ParticleSystem,
    beta: Optional[float] = None,
    delta: Optional[float] = None,
) -> Optional[SeparationCertificate]:
    """Best verified separation certificate found by the heuristics.

    Tries cluster-union and min-cut candidate regions for each reference
    color and returns the certificate minimizing
    ``beta_achieved + max(density violations)`` — or, when (β, δ) are
    given, the first certificate satisfying them (preferring the
    smallest ``beta_achieved``).  Returns ``None`` when no nondegenerate
    candidate exists.
    """
    certificates: List[SeparationCertificate] = []
    for color in range(system.num_colors):
        candidates = _cluster_union_candidates(system, color)
        candidates.extend(_mincut_candidates(system, color))
        for region in candidates:
            cert = evaluate_region(system, region, color)
            if cert is not None:
                certificates.append(cert)
    if not certificates:
        return None
    if beta is not None and delta is not None:
        satisfying = [c for c in certificates if c.satisfies(beta, delta)]
        if satisfying:
            return min(satisfying, key=lambda c: c.beta_achieved)
    return min(certificates, key=_certificate_badness)


def _certificate_badness(cert: SeparationCertificate) -> float:
    """Scalar ranking: smaller is a better separation witness."""
    impurity = max(1.0 - cert.density_inside, cert.density_outside)
    return cert.beta_achieved + 10.0 * impurity


def is_separated(
    system: ParticleSystem,
    beta: float,
    delta: float,
    exact_threshold: int = 12,
) -> bool:
    """Decide (β, δ)-separation: exactly for small systems, else heuristically.

    For ``n`` up to ``exact_threshold`` the decision is exact; beyond it a
    verified certificate is required, so ``True`` answers are always
    sound while ``False`` answers may rarely be false negatives.
    """
    if system.n <= exact_threshold:
        return is_separated_exact(system, beta, delta)
    cert = best_certificate(system, beta, delta)
    return cert is not None and cert.satisfies(beta, delta)


def separation_quality(system: ParticleSystem) -> Dict[str, float]:
    """Summary of how separated a configuration is.

    Returns the best certificate's β and impurity, plus the heterogeneous
    edge density — the quantities plotted by the experiment harness.
    """
    cert = best_certificate(system)
    hetero_density = (
        system.hetero_total / system.edge_total if system.edge_total else 0.0
    )
    if cert is None:
        return {
            "beta": math.inf,
            "impurity": 1.0,
            "hetero_density": hetero_density,
        }
    return {
        "beta": cert.beta_achieved,
        "impurity": max(1.0 - cert.density_inside, cert.density_outside),
        "hetero_density": hetero_density,
    }


def minimum_beta_for_delta(
    system: ParticleSystem, delta: float
) -> Tuple[float, Optional[SeparationCertificate]]:
    """Smallest certified β at the given δ tolerance (∞ if none found)."""
    best: Optional[SeparationCertificate] = None
    for color in range(system.num_colors):
        candidates = _cluster_union_candidates(system, color)
        candidates.extend(_mincut_candidates(system, color))
        for region in candidates:
            cert = evaluate_region(system, region, color)
            if cert is None:
                continue
            if cert.density_inside < 1.0 - delta or cert.density_outside > delta:
                continue
            if best is None or cert.beta_achieved < best.beta_achieved:
                best = cert
    if best is None:
        return math.inf, None
    return best.beta_achieved, best
