"""Statistical-physics analysis: metrics, polymer models, theorem bounds.

* :mod:`repro.analysis.compression_metric` — minimum perimeter and
  α-compression (Lemma 2, Theorems 13/15).
* :mod:`repro.analysis.separation_metric` — (β, δ)-separation
  certification (Definition 3).
* :mod:`repro.analysis.polymers` — enumeration of loop and even polymers
  on the triangular lattice.
* :mod:`repro.analysis.cluster_expansion` — abstract polymer models,
  the Kotecký–Preiss condition, truncated cluster expansions, and the
  volume/surface decomposition of Theorem 11.
* :mod:`repro.analysis.ising` — the Ising model and its high-temperature
  expansion (the machinery behind Theorem 15).
* :mod:`repro.analysis.bounds` — executable forms of the parameter
  conditions in Theorems 13-16.
* :mod:`repro.analysis.estimators` — time-series estimation utilities.
"""

from repro.analysis.compression_metric import (
    alpha_of,
    is_alpha_compressed,
    lemma2_upper_bound,
    minimum_perimeter,
)
from repro.analysis.separation_metric import (
    SeparationCertificate,
    best_certificate,
    is_separated_exact,
    verify_certificate,
)
from repro.analysis.polymers import (
    enumerate_even_polymers_through_edge,
    enumerate_loops_through_edge,
)
from repro.analysis.cluster_expansion import (
    PolymerModel,
    kotecky_preiss_margin,
    log_partition_function,
    truncated_cluster_expansion,
    volume_surface_split,
)
from repro.analysis.ising import (
    ising_partition_function,
    ising_partition_function_high_temperature,
    gamma_to_coupling,
)
from repro.analysis.bounds import (
    SEPARATION_LAMBDA_GAMMA_THRESHOLD,
    predicted_regime,
    theorem13_condition,
    theorem13_min_alpha,
    theorem14_condition,
    theorem14_min_gamma,
    theorem15_condition,
    theorem16_condition,
)
from repro.analysis.estimators import (
    autocorrelation_time,
    batch_means_error,
    time_to_threshold,
)
from repro.analysis.interfaces import (
    centroid_separation,
    demixing_index,
    interface_component_count,
    interface_summary,
)
from repro.analysis.strips import (
    max_surplus_summary,
    strip_decomposition,
    surplus_profile,
)
from repro.analysis.inference import (
    estimate_gamma_from_shape,
    estimate_gamma_pseudolikelihood,
    estimate_parameters,
)

__all__ = [
    "minimum_perimeter",
    "lemma2_upper_bound",
    "alpha_of",
    "is_alpha_compressed",
    "SeparationCertificate",
    "best_certificate",
    "is_separated_exact",
    "verify_certificate",
    "enumerate_loops_through_edge",
    "enumerate_even_polymers_through_edge",
    "PolymerModel",
    "log_partition_function",
    "truncated_cluster_expansion",
    "kotecky_preiss_margin",
    "volume_surface_split",
    "ising_partition_function",
    "ising_partition_function_high_temperature",
    "gamma_to_coupling",
    "SEPARATION_LAMBDA_GAMMA_THRESHOLD",
    "theorem13_condition",
    "theorem13_min_alpha",
    "theorem14_condition",
    "theorem14_min_gamma",
    "theorem15_condition",
    "theorem16_condition",
    "predicted_regime",
    "autocorrelation_time",
    "batch_means_error",
    "time_to_threshold",
    "interface_summary",
    "interface_component_count",
    "centroid_separation",
    "demixing_index",
    "strip_decomposition",
    "max_surplus_summary",
    "surplus_profile",
    "estimate_parameters",
    "estimate_gamma_from_shape",
    "estimate_gamma_pseudolikelihood",
]
