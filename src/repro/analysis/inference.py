"""Inverse problem: estimating (λ, γ) from observed configurations.

The paper frames λ and γ as "external, environmental influences on the
particle system."  A natural library feature is the inverse: given
observed equilibrium behavior, infer the environment.  Two estimators:

* **Moment matching by bisection** (:func:`estimate_gamma_from_shape`,
  :func:`estimate_parameters`).  For a *fixed* occupied node set, the
  conditional law of the coloring is the fixed-magnetization Ising
  model, under which :math:`E[h]` is continuous and strictly decreasing
  in γ; bisection on exact or simulated moments inverts it.  Similarly
  :math:`E[p]` is decreasing in the product λγ at fixed γ, giving the
  second equation.
* **Maximum pseudo-likelihood for γ** (:func:`gamma_pseudo_likelihood`,
  :func:`estimate_gamma_pseudolikelihood`).  Each edge's color
  agreement given its neighborhood has an explicit logistic form in
  :math:`\\ln\\gamma`; maximizing the product over edges is fast,
  consistent, and needs only a single observed configuration.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.lattice.triangular import NEIGHBOR_OFFSETS
from repro.system.configuration import ParticleSystem


# ----------------------------------------------------------------------
# Moment matching
# ----------------------------------------------------------------------


def expected_h_at_gamma(
    shape_systems: Sequence[ParticleSystem], gamma: float
) -> float:
    """Exact conditional E[h] for small fixed shapes, averaged.

    ``shape_systems`` supplies the observed node sets and color counts;
    for each, the fixed-magnetization Ising expectation of h at the
    given γ is computed exactly (shapes must be small enough for
    enumeration, n ≲ 20).
    """
    from repro.analysis.ising import expected_heterogeneous_edges

    total = 0.0
    for system in shape_systems:
        nodes = sorted(system.colors)
        index = {node: i for i, node in enumerate(nodes)}
        edges = []
        for node in nodes:
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr = (node[0] + dx, node[1] + dy)
                if nbr in index and node < nbr:
                    edges.append((index[node], index[nbr]))
        count_color1 = sum(1 for c in system.colors.values() if c == 1)
        total += expected_heterogeneous_edges(
            len(nodes), edges, count_color1, gamma
        )
    return total / len(shape_systems)


def estimate_gamma_from_shape(
    shape_systems: Sequence[ParticleSystem],
    observed_mean_h: float,
    gamma_bounds: Tuple[float, float] = (0.05, 50.0),
    iterations: int = 60,
) -> float:
    """Invert E[h](γ) = observed by bisection (exact, small shapes).

    E[h] is strictly decreasing in γ, so bisection converges; observed
    values outside the attainable range clamp to the nearest bound.
    """
    low, high = gamma_bounds
    if low <= 0 or high <= low:
        raise ValueError(f"invalid gamma bounds {gamma_bounds}")
    h_low = expected_h_at_gamma(shape_systems, low)
    h_high = expected_h_at_gamma(shape_systems, high)
    if observed_mean_h >= h_low:
        return low
    if observed_mean_h <= h_high:
        return high
    for _ in range(iterations):
        mid = math.sqrt(low * high)  # bisect in log space
        if expected_h_at_gamma(shape_systems, mid) > observed_mean_h:
            low = mid
        else:
            high = mid
    return math.sqrt(low * high)


def estimate_parameters(
    observed_mean_p: float,
    observed_mean_h: float,
    n: int,
    color_counts: Sequence[int],
    simulate_moments: Optional[
        Callable[[float, float], Tuple[float, float]]
    ] = None,
    gamma_bounds: Tuple[float, float] = (0.3, 12.0),
    lam_bounds: Tuple[float, float] = (0.3, 12.0),
    outer_iterations: int = 12,
    inner_iterations: int = 14,
) -> Tuple[float, float]:
    """Joint (λ, γ) estimate by nested bisection on stationary moments.

    ``simulate_moments(lam, gamma)`` must return estimates of
    ``(E[p], E[h])`` at stationarity; the default builds them from the
    exact enumeration (only feasible for small ``n``).  The inversion
    exploits two monotonicities of the stationary law
    :math:`(\\lambda\\gamma)^{-p}\\gamma^{-h}`: E[h] decreases in γ at
    fixed λ, and E[p] decreases in λ at fixed γ.
    """
    if simulate_moments is None:
        simulate_moments = _exact_moments_factory(n, list(color_counts))

    lam_low, lam_high = lam_bounds
    lam = math.sqrt(lam_low * lam_high)
    gamma = math.sqrt(gamma_bounds[0] * gamma_bounds[1])
    for _ in range(outer_iterations):
        # Inner: fit gamma to E[h] at current lambda.
        low, high = gamma_bounds
        for _ in range(inner_iterations):
            gamma = math.sqrt(low * high)
            _, mean_h = simulate_moments(lam, gamma)
            if mean_h > observed_mean_h:
                low = gamma
            else:
                high = gamma
        gamma = math.sqrt(low * high)
        # Outer step: fit lambda to E[p] at current gamma.
        low, high = lam_bounds
        for _ in range(inner_iterations):
            lam = math.sqrt(low * high)
            mean_p, _ = simulate_moments(lam, gamma)
            if mean_p > observed_mean_p:
                low = lam
            else:
                high = lam
        lam = math.sqrt(low * high)
    return lam, gamma


def _exact_moments_factory(n: int, color_counts: List[int]):
    from repro.markov.exact import ExactChainAnalysis

    cache = {}

    def moments(lam: float, gamma: float) -> Tuple[float, float]:
        key = (round(lam, 10), round(gamma, 10))
        if key not in cache:
            analysis = ExactChainAnalysis(
                n, color_counts, lam=lam, gamma=gamma
            )
            perimeter = [float(s.perimeter()) for s in analysis.states]
            hetero = [float(s.hetero_total) for s in analysis.states]
            cache[key] = (
                analysis.expected_observable(perimeter),
                analysis.expected_observable(hetero),
            )
        return cache[key]

    return moments


# ----------------------------------------------------------------------
# Pseudo-likelihood for gamma
# ----------------------------------------------------------------------


def gamma_pseudo_likelihood(
    systems: Sequence[ParticleSystem], log_gamma: float
) -> float:
    """Log composite likelihood of ``log γ`` over pair-swap conditionals.

    Because color counts are conserved, the well-defined conditionals
    are *pair* conditionals: given all other colors and that the
    adjacent pair (u, v) holds an unordered pair of distinct colors,
    the probability of the observed assignment versus the swapped one is

    .. math::
       P(\\text{observed}) = \\frac{1}{1 + \\gamma^{\\Delta a}},

    where :math:`\\Delta a` is the homogeneous-edge change a swap would
    cause (the exponent of Algorithm 1's line 10).  Same-colored pairs
    admit a single assignment and carry no information.  Each term is
    concave in ``log γ``, so the sum is concave and unimodal.
    """
    from repro.core.separation_chain import evaluate_swap

    total = 0.0
    for system in systems:
        colors = system.colors
        for (x, y), cu in colors.items():
            for dx, dy in NEIGHBOR_OFFSETS:
                v = (x + dx, y + dy)
                if not (x, y) < v:
                    continue
                cv = colors.get(v)
                if cv is None or cv == cu:
                    continue
                _, delta_a = evaluate_swap(colors, (x, y), v, math.e)
                total += -_log1pexp(delta_a * log_gamma)
    return total


def _log1pexp(value: float) -> float:
    """Numerically stable ``log(1 + e^value)``."""
    if value > 35.0:
        return value
    if value < -35.0:
        return math.exp(value)
    return math.log1p(math.exp(value))


def estimate_gamma_pseudolikelihood(
    systems: Sequence[ParticleSystem],
    bounds: Tuple[float, float] = (0.05, 50.0),
    iterations: int = 80,
) -> float:
    """γ maximizing the Besag pseudo-likelihood (golden-section search).

    Works from as little as one observed configuration; consistency
    improves with more samples.  Only defined for 2-color systems.
    """
    low = math.log(bounds[0])
    high = math.log(bounds[1])
    ratio = (math.sqrt(5.0) - 1.0) / 2.0
    x1 = high - ratio * (high - low)
    x2 = low + ratio * (high - low)
    f1 = gamma_pseudo_likelihood(systems, x1)
    f2 = gamma_pseudo_likelihood(systems, x2)
    for _ in range(iterations):
        if f1 < f2:
            low = x1
            x1, f1 = x2, f2
            x2 = low + ratio * (high - low)
            f2 = gamma_pseudo_likelihood(systems, x2)
        else:
            high = x2
            x2, f2 = x1, f1
            x1 = high - ratio * (high - low)
            f1 = gamma_pseudo_likelihood(systems, x1)
    return math.exp((low + high) / 2.0)
