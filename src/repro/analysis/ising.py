"""The Ising model and its high-temperature expansion.

Theorem 15's machinery rewrites the colored-configuration partition
function over a fixed boundary via the high-temperature expansion of the
Ising model.  The correspondence for this library: fix the occupied node
set of a configuration; the conditional stationary distribution over
colorings is :math:`\\pi(\\text{coloring}) \\propto \\gamma^{-h}`, which is
an Ising model on the occupied subgraph with coupling
:math:`J = \\ln(\\gamma)/2` (ferromagnetic for γ > 1).

This module provides exact partition functions (spin sums), the
high-temperature expansion

.. math::
   Z = 2^{|V|} (\\cosh J)^{|E|}
       \\sum_{E' \\subseteq E \\text{ even}} (\\tanh J)^{|E'|},

with even subsets enumerated through the GF(2) cycle space, and the
fixed-magnetization (fixed color counts) variants matching the chain's
conserved quantities.  Everything is brute-force exact, for cross-checks
on small graphs.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, Iterable, List, Sequence, Tuple

Node = object
EdgeT = Tuple[int, int]  # indices into the node list


def gamma_to_coupling(gamma: float) -> float:
    """Ising coupling J with :math:`\\gamma^{-h} \\propto e^{J \\sum s_u s_v}`.

    Each heterogeneous edge contributes :math:`(1 - s_u s_v)/2`, so
    :math:`J = \\ln(\\gamma) / 2`.
    """
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    return 0.5 * math.log(gamma)


def _normalize_edges(num_nodes: int, edges: Iterable[EdgeT]) -> List[EdgeT]:
    normalized = []
    for u, v in edges:
        if not (0 <= u < num_nodes and 0 <= v < num_nodes):
            raise ValueError(f"edge ({u}, {v}) out of range for {num_nodes} nodes")
        if u == v:
            raise ValueError(f"self-loop on node {u}")
        normalized.append((min(u, v), max(u, v)))
    return normalized


def ising_partition_function(
    num_nodes: int, edges: Sequence[EdgeT], coupling: float
) -> float:
    """Exact :math:`Z = \\sum_{s \\in \\{\\pm 1\\}^V} e^{J \\sum_{(u,v)} s_u s_v}`.

    Brute force over all :math:`2^{|V|}` spin assignments; intended for
    :math:`|V| \\lesssim 20`.
    """
    edge_list = _normalize_edges(num_nodes, edges)
    if num_nodes > 22:
        raise ValueError(f"brute-force Ising sum infeasible for {num_nodes} nodes")
    total = 0.0
    for assignment in range(1 << num_nodes):
        energy = 0
        for u, v in edge_list:
            su = 1 if assignment & (1 << u) else -1
            sv = 1 if assignment & (1 << v) else -1
            energy += su * sv
        total += math.exp(coupling * energy)
    return total


def even_edge_subsets(num_nodes: int, edges: Sequence[EdgeT]) -> List[int]:
    """All even edge subsets, as bitmasks over the edge list.

    The even subsets form the GF(2) cycle space: build a spanning forest,
    take the fundamental cycle of each non-tree edge as a basis vector,
    and XOR over all basis combinations.  Returns
    :math:`2^{|E| - |V| + \\#components}` masks (including the empty set).
    """
    edge_list = _normalize_edges(num_nodes, edges)
    parent = list(range(num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    tree_adj: Dict[int, List[Tuple[int, int]]] = {i: [] for i in range(num_nodes)}
    non_tree: List[int] = []
    for index, (u, v) in enumerate(edge_list):
        ru, rv = find(u), find(v)
        if ru == rv:
            non_tree.append(index)
        else:
            parent[ru] = rv
            tree_adj[u].append((v, index))
            tree_adj[v].append((u, index))

    def tree_path_mask(u: int, v: int) -> int:
        """Bitmask of tree edges on the unique forest path from u to v."""
        # BFS from u recording the edge used to reach each node.
        from collections import deque

        prev: Dict[int, Tuple[int, int]] = {u: (-1, -1)}
        queue = deque([u])
        while queue:
            node = queue.popleft()
            if node == v:
                break
            for nxt, edge_index in tree_adj[node]:
                if nxt not in prev:
                    prev[nxt] = (node, edge_index)
                    queue.append(nxt)
        mask = 0
        node = v
        while prev[node][0] != -1:
            node, edge_index = prev[node]
            mask |= 1 << edge_index
        return mask

    basis: List[int] = []
    for index in non_tree:
        u, v = edge_list[index]
        basis.append((1 << index) | tree_path_mask(u, v))

    subsets = [0]
    for vector in basis:
        subsets.extend(mask ^ vector for mask in list(subsets))
    return subsets


def ising_partition_function_high_temperature(
    num_nodes: int, edges: Sequence[EdgeT], coupling: float
) -> float:
    """Z via the high-temperature expansion (must equal the spin sum)."""
    edge_list = _normalize_edges(num_nodes, edges)
    tanh_j = math.tanh(coupling)
    even_sum = sum(
        tanh_j ** bin(mask).count("1")
        for mask in even_edge_subsets(num_nodes, edge_list)
    )
    return (2.0**num_nodes) * (math.cosh(coupling) ** len(edge_list)) * even_sum


def coloring_weight(
    edges: Sequence[EdgeT], coloring: Sequence[int], gamma: float
) -> float:
    """:math:`\\gamma^{-h}` for a 2-coloring of a fixed shape."""
    hetero = sum(1 for u, v in edges if coloring[u] != coloring[v])
    return gamma ** (-hetero)


def fixed_counts_color_distribution(
    num_nodes: int,
    edges: Sequence[EdgeT],
    count_color1: int,
    gamma: float,
) -> Dict[Tuple[int, ...], float]:
    """Exact distribution over colorings with fixed color counts.

    This is the conditional stationary distribution of the separation
    chain given the occupied node set — the measure :math:`\\pi_\\Lambda`
    analyzed in Theorems 14 and 16 (an Ising model at fixed
    magnetization).  Returns a map from coloring tuples (color of node i
    at position i) to probability.
    """
    if not 0 <= count_color1 <= num_nodes:
        raise ValueError(
            f"count_color1={count_color1} out of range for {num_nodes} nodes"
        )
    edge_list = _normalize_edges(num_nodes, edges)
    weights: Dict[Tuple[int, ...], float] = {}
    for ones in combinations(range(num_nodes), count_color1):
        coloring = [0] * num_nodes
        for index in ones:
            coloring[index] = 1
        weights[tuple(coloring)] = coloring_weight(edge_list, coloring, gamma)
    total = sum(weights.values())
    return {coloring: weight / total for coloring, weight in weights.items()}


def expected_heterogeneous_edges(
    num_nodes: int,
    edges: Sequence[EdgeT],
    count_color1: int,
    gamma: float,
) -> float:
    """Stationary expectation of h under the fixed-shape distribution."""
    edge_list = _normalize_edges(num_nodes, edges)
    distribution = fixed_counts_color_distribution(
        num_nodes, edge_list, count_color1, gamma
    )
    return sum(
        probability
        * sum(1 for u, v in edge_list if coloring[u] != coloring[v])
        for coloring, probability in distribution.items()
    )
