"""repro — stochastic separation in self-organizing particle systems.

A complete reproduction of Cannon, Daymude, Gökmen, Randall, and Richa,
"A Local Stochastic Algorithm for Separation in Heterogeneous
Self-Organizing Particle Systems" (announced at PODC 2018; full version
APPROX/RANDOM 2019, arXiv:1805.04599).

Quickstart::

    from repro import SeparationChain, hexagon_system

    system = hexagon_system(100, seed=1)          # 50 blue + 50 red
    chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=1)
    chain.run(1_000_000)
    print(system.perimeter(), system.hetero_total)

Packages:

* :mod:`repro.core` — Algorithm 1 (the separation chain), compression
  baseline, k-color extension, annealing.
* :mod:`repro.lattice` — triangular-lattice substrate.
* :mod:`repro.system` — colored particle-system state and observables.
* :mod:`repro.markov` — generic Markov-chain machinery, exact small-state
  analysis, diagnostics.
* :mod:`repro.analysis` — separation/compression metrics, polymer models
  and the cluster expansion, Ising cross-checks, theorem bounds.
* :mod:`repro.distributed` — the asynchronous distributed algorithm
  :math:`\\mathcal{A}` and schedulers.
* :mod:`repro.experiments` — regenerators for the paper's figures.
"""

from repro.core import (
    CompressionChain,
    PottsSeparationChain,
    SeparationChain,
    compression_ratio,
    is_compressed,
)
from repro.system import (
    ParticleSystem,
    checkerboard_system,
    hexagon_system,
    line_system,
    random_blob_system,
    separated_system,
)

__version__ = "1.0.0"

__all__ = [
    "SeparationChain",
    "CompressionChain",
    "PottsSeparationChain",
    "ParticleSystem",
    "hexagon_system",
    "line_system",
    "random_blob_system",
    "separated_system",
    "checkerboard_system",
    "compression_ratio",
    "is_compressed",
    "__version__",
]
