"""Chrome trace-event recording (perfetto / ``chrome://tracing`` viewable).

A :class:`TraceRecorder` accumulates *complete* events (``"ph": "X"``)
in the Chrome Trace Event Format — each event carries a name, category,
microsecond start timestamp, duration, process id, and thread id, so a
saved file opens directly in Perfetto (https://ui.perfetto.dev) or
Chrome's ``about:tracing`` with one lane per process.

The :meth:`span` context manager wraps a phase of work (sweep → cell →
per-segment chain runs); nesting works naturally because the viewer
stacks time-contained events on the same thread lane.  Worker processes
record into their own recorder (their events carry the worker's pid)
and ship ``recorder.events`` back in the result payload; the parent
stitches them in with :meth:`extend` — no clock translation needed
because timestamps are absolute epoch microseconds everywhere.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

#: Keys every complete ("X") event must carry for the viewer to load it.
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


class TraceRecorder:
    """Collects Chrome trace events in memory; zero dependencies.

    Parameters
    ----------
    process_name:
        Optional label for this process's lane (emitted as a metadata
        event, e.g. ``"repro"`` for the parent, ``"repro-worker"`` for
        pool processes).
    clock:
        Epoch-seconds time source; injectable for tests.
    """

    def __init__(
        self,
        process_name: Optional[str] = None,
        clock: Any = time.time,
    ):
        self.events: List[Dict[str, Any]] = []
        self._clock = clock
        self._lock = threading.Lock()
        if process_name is not None:
            self.events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": os.getpid(),
                    "tid": 0,
                    "args": {"name": process_name},
                }
            )

    # ------------------------------------------------------------------

    def now(self) -> float:
        """Current time in microseconds (the trace format's unit)."""
        return self._clock() * 1e6

    def complete(
        self,
        name: str,
        start_us: float,
        end_us: Optional[float] = None,
        category: str = "repro",
        **args: Any,
    ) -> Dict[str, Any]:
        """Record a finished phase as one complete ("X") event."""
        if end_us is None:
            end_us = self.now()
        event: Dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": start_us,
            "dur": max(0.0, end_us - start_us),
            "pid": os.getpid(),
            "tid": threading.get_ident() % 1_000_000,
        }
        if args:
            event["args"] = args
        with self._lock:
            self.events.append(event)
        return event

    def instant(self, name: str, **args: Any) -> Dict[str, Any]:
        """Record a zero-duration marker event."""
        event: Dict[str, Any] = {
            "name": name,
            "cat": "repro",
            "ph": "i",
            "s": "p",
            "ts": self.now(),
            "pid": os.getpid(),
            "tid": threading.get_ident() % 1_000_000,
        }
        if args:
            event["args"] = args
        with self._lock:
            self.events.append(event)
        return event

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Context manager recording the enclosed block as a span.

        Spans record on exit (including via exception), so nested
        spans appear inner-first in :attr:`events` but the viewer
        re-stacks them by time containment.
        """
        start = self.now()
        try:
            yield
        finally:
            self.complete(name, start, **args)

    def extend(self, events: Iterable[Dict[str, Any]]) -> None:
        """Stitch in events recorded by another process (same format).

        Worker events keep their own ``pid``, so the viewer renders
        each pool process as a separate lane under the same timeline.
        """
        with self._lock:
            self.events.extend(events)

    # ------------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The Chrome trace file object (``traceEvents`` + time unit)."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def save(self, path: Union[str, Path]) -> None:
        """Write a viewer-loadable trace JSON file (parents created)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json()), encoding="utf-8")


def validate_trace(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is viewer-loadable.

    Checks the ``traceEvents`` envelope and, for every complete event,
    the required keys and non-negative duration.  Used by the test
    suite and the CI artifact step to guarantee traces actually open.
    """
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document is missing its traceEvents list")
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase == "X":
            missing = [key for key in REQUIRED_EVENT_KEYS if key not in event]
            if missing:
                raise ValueError(
                    f"complete event {event.get('name')!r} missing {missing}"
                )
            if event["dur"] < 0:
                raise ValueError(
                    f"complete event {event.get('name')!r} has negative duration"
                )
        elif phase == "i":
            if "ts" not in event or "pid" not in event:
                raise ValueError("instant event missing ts/pid")
        else:
            raise ValueError(f"unexpected event phase {phase!r}")
