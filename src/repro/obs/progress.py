"""Live progress/heartbeat reporting and the per-cell profiling hook.

:class:`ProgressReporter` is a drop-in
:data:`repro.experiments.parallel.ProgressCallback`: the engine calls
it after every completed cell and it prints a one-line status to
stderr — cells done/total, the last cell's wall-time and throughput, an
exponentially weighted moving average (EWMA) of the inter-completion
time, and the ETA it implies.  The EWMA tracks *arrival* spacing rather
than per-cell wall-time, so the ETA stays honest under a process pool
(k workers finishing cells in parallel shrink the spacing k-fold).
Checkpoint-restored cells complete in microseconds and are therefore
*excluded* from the EWMA — a ``--resume`` run's ETA for the remaining
live cells would otherwise be wildly optimistic.  A lock serializes
progress and heartbeat writes so the two never interleave mid-line.

An optional background heartbeat thread reports "still alive" lines at
a fixed interval even when no cell completes — the operational answer
to "is it converging or stuck?" during multi-minute cells.

:func:`run_profiled` is the opt-in cProfile hook: it wraps a callable,
returning its result alongside a formatted top-N cumulative-time
report.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
import threading
import time
from typing import Any, Callable, Optional, TextIO, Tuple


class ProgressReporter:
    """Stderr progress lines with EWMA cell time and ETA.

    Parameters
    ----------
    stream:
        Output stream (default: ``sys.stderr`` resolved at call time so
        pytest capture works).
    label:
        Noun printed in each line (``"cells"``).
    smoothing:
        EWMA weight of the newest inter-completion interval, in (0, 1].
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        label: str = "cells",
        smoothing: float = 0.3,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self._stream = stream
        self._label = label
        self._smoothing = smoothing
        self._clock = clock
        self._start = clock()
        self._last_arrival: Optional[float] = None
        self._ewma: Optional[float] = None
        self._completed = 0
        self._total = 0
        self._stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def _out(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def __call__(self, completed: int, total: int, result: Any = None) -> None:
        """ProgressCallback entrypoint: one line per finished cell.

        Checkpoint-restored cells are reported but excluded from the
        EWMA/ETA estimate: they arrive in a microsecond burst at the
        start of a ``--resume`` run and would otherwise make the ETA
        for the remaining *live* cells wildly optimistic.
        """
        now = self._clock()
        with self._lock:
            restored = bool(getattr(result, "from_checkpoint", False))
            if not restored:
                previous = (
                    self._last_arrival
                    if self._last_arrival is not None
                    else self._start
                )
                interval = now - previous
                self._last_arrival = now
                if self._ewma is None:
                    self._ewma = interval
                else:
                    alpha = self._smoothing
                    self._ewma = alpha * interval + (1.0 - alpha) * self._ewma
            self._completed = completed
            self._total = total
            remaining = max(0, total - completed)
            percent = 100.0 * completed / total if total else 100.0
            if self._ewma is not None:
                estimate = (
                    f"  ewma {self._ewma:.2f}s"
                    f"  eta {remaining * self._ewma:.1f}s"
                )
            else:  # only restored cells so far: no live estimate yet
                estimate = "  eta n/a"

            detail = ""
            wall = getattr(result, "wall_time", 0.0) or 0.0
            iterations = getattr(result, "iterations", 0) or 0
            if wall > 0.0:
                detail = f"  cell {wall:.2f}s"
                if iterations:
                    detail += f" ({iterations / wall:,.0f} steps/s)"
            if restored:
                detail += "  [checkpoint]"
            restored_from = getattr(result, "restored_from", None)
            if restored_from is not None:
                # Warm-restored mid-cell from a crash-consistent state
                # snapshot; the step is where the replay picked up.
                detail += f"  [warm@{restored_from}]"
            if getattr(result, "failed", False):
                detail += "  [FAILED]"
            label = getattr(getattr(result, "task", None), "label", "") or ""
            if label:
                detail += f"  {label}"

            self._out().write(
                f"[repro] {self._label} {completed}/{total} ({percent:.0f}%)"
                f"{detail}{estimate}\n"
            )
            self._flush()

    # ------------------------------------------------------------------

    def start_heartbeat(self, interval: float = 30.0) -> None:
        """Start a daemon thread printing liveness lines every ``interval`` s."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if self._heartbeat_thread is not None:
            return

        def beat() -> None:
            while not self._stop.wait(interval):
                elapsed = self._clock() - self._start
                with self._lock:  # never interleave with a progress line
                    self._out().write(
                        f"[repro] heartbeat: "
                        f"{self._completed}/{self._total or '?'} "
                        f"{self._label} done, {elapsed:.0f}s elapsed\n"
                    )
                    self._flush()

        self._stop.clear()
        self._heartbeat_thread = threading.Thread(
            target=beat, name="repro-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def stop(self) -> None:
        """Stop the heartbeat thread (idempotent)."""
        self._stop.set()
        thread = self._heartbeat_thread
        if thread is not None:
            thread.join(timeout=1.0)
            self._heartbeat_thread = None

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _flush(self) -> None:
        flush = getattr(self._out(), "flush", None)
        if flush is not None:
            try:
                flush()
            except ValueError:  # stream closed mid-run (e.g. test teardown)
                pass


def run_profiled(
    fn: Callable[..., Any], *args: Any, top: int = 25, **kwargs: Any
) -> Tuple[Any, str]:
    """Run ``fn`` under cProfile; return ``(result, stats_text)``.

    The report is the top ``top`` entries by cumulative time — enough
    to see where a slow cell spends its steps without shipping raw
    profile dumps across process boundaries.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return result, buffer.getvalue()
