"""Consolidated run reports from a run directory's obs artifacts.

A long sweep leaves its evidence scattered: a metrics snapshot, a
JSON-lines event log, a Chrome trace, per-cell checkpoints, and — after
a chaotic run — a ``failures.json`` quarantine manifest.  This module
folds whatever subset of those exists under one directory into a single
self-contained report (markdown + HTML, no external assets), the thing
the ``repro report`` CLI subcommand writes and CI uploads as an
artifact:

* a run summary (cells completed, steps, retries/timeouts/failures,
  checkpoint hit/miss counts, wall time);
* the per-cell convergence verdicts recorded by
  :mod:`repro.obs.convergence` (ESS, τ, Geweke z, split R̂, stall and
  convergence flags), with sub-threshold ESS flagged;
* throughput statistics with sparkline series (unicode in markdown,
  inline SVG in HTML);
* the failure/quarantine table;
* an event-log digest (counts per event, warnings and errors listed).

Discovery is deliberately lenient: every ``*.jsonl`` file is read as an
event log, every ``failures.json`` as a quarantine manifest, every
``cell-*.json`` or ``cell-*.bin`` (binary columnar, header-only read)
as a checkpoint, and every other ``*.json`` is probed
as a metrics snapshot (files with a different payload envelope — trace
files, fault ledgers — are skipped, not errors).  Zero-sample and
all-quarantined quantities render as ``n/a``, never ``nan``.
"""

from __future__ import annotations

import html as _html
import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.log import merge_records, read_jsonl
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "RunReport",
    "collect_run",
    "fmt",
    "render_html",
    "render_markdown",
    "sparkline",
    "sparkline_svg",
    "write_report",
]

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def fmt(value: Any, digits: int = 2) -> str:
    """Human-safe number formatting: ``n/a`` for missing, never ``nan``.

    ``None``, NaN, and infinities all render as ``n/a`` (the FailedCell
    convention: a cell with zero samples has *no* value, and printing
    ``nan`` reads like a computed result).  Integers keep their exact
    form; large floats gain thousands separators.
    """
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value or value in (math.inf, -math.inf):
            return "n/a"
        if value.is_integer() and abs(value) < 1e15:
            return f"{int(value):,}"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}"
    return str(value)


def _clean(values: Sequence[Any]) -> List[float]:
    out = []
    for value in values:
        if isinstance(value, (int, float)) and value == value:
            out.append(float(value))
    return out


def sparkline(values: Sequence[Any], width: int = 40) -> str:
    """A unicode sparkline of ``values`` (empty string when no data).

    Longer series are downsampled to ``width`` by striding; missing
    entries are dropped.
    """
    xs = _clean(values)
    if not xs:
        return ""
    if len(xs) > width:
        stride = len(xs) / width
        xs = [xs[int(i * stride)] for i in range(width)]
    lo, hi = min(xs), max(xs)
    span = hi - lo
    if span <= 0:
        return _SPARK_GLYPHS[0] * len(xs)
    return "".join(
        _SPARK_GLYPHS[
            min(len(_SPARK_GLYPHS) - 1, int((x - lo) / span * len(_SPARK_GLYPHS)))
        ]
        for x in xs
    )


def sparkline_svg(
    values: Sequence[Any], width: int = 220, height: int = 36
) -> str:
    """An inline SVG polyline sparkline (empty string when no data)."""
    xs = _clean(values)
    if not xs:
        return ""
    if len(xs) == 1:
        xs = xs * 2
    lo, hi = min(xs), max(xs)
    span = hi - lo or 1.0
    pad = 2.0
    step = (width - 2 * pad) / (len(xs) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (x - lo) / span * (height - 2 * pad):.1f}"
        for i, x in enumerate(xs)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        'xmlns="http://www.w3.org/2000/svg" role="img">'
        f'<polyline fill="none" stroke="currentColor" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


@dataclass
class RunReport:
    """Everything :func:`collect_run` discovered under one directory."""

    run_dir: str
    title: str
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    metrics_files: List[str] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    event_files: List[str] = field(default_factory=list)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    checkpoints: List[Dict[str, Any]] = field(default_factory=list)
    skipped_files: List[str] = field(default_factory=list)

    # -- derived views --------------------------------------------------

    def counters(self) -> Dict[str, float]:
        return dict(self.metrics.snapshot()["counters"])

    def gauges(self) -> Dict[str, float]:
        return dict(self.metrics.snapshot()["gauges"])

    def series(self, name: str) -> List[Any]:
        snapshot = self.metrics.snapshot()["series"]
        return list(snapshot.get(name, []))

    def convergence_rows(self) -> List[Dict[str, Any]]:
        """Per-cell convergence verdicts, worst ESS first."""
        rows = [
            dict(entry)
            for entry in self.series("diag.cells")
            if isinstance(entry, dict)
        ]

        def _order(row: Dict[str, Any]) -> Tuple[int, float]:
            ess = row.get("ess")
            missing = ess is None or (isinstance(ess, float) and ess != ess)
            return (0 if missing else 1, ess if not missing else 0.0)

        rows.sort(key=_order)
        return rows

    def throughput_rows(self) -> List[Dict[str, Any]]:
        return [
            dict(entry)
            for entry in self.series("engine.cells")
            if isinstance(entry, dict)
        ]

    def adaptive_rows(self) -> List[Dict[str, Any]]:
        """Cells that ran under adaptive termination (stop metadata set)."""
        return [
            row for row in self.throughput_rows() if row.get("stop_reason")
        ]

    def event_counts(self) -> List[Tuple[str, int]]:
        counts: Dict[str, int] = {}
        for record in self.events:
            name = str(record.get("event", "?"))
            counts[name] = counts.get(name, 0) + 1
        return sorted(counts.items(), key=lambda item: (-item[1], item[0]))

    def problems(self) -> List[Dict[str, Any]]:
        """Warning/error events, plus convergence alarms."""
        return [
            record
            for record in self.events
            if record.get("level") in ("warning", "error")
            or record.get("event") in ("chain.stalled",)
        ]


def collect_run(
    run_dir: os.PathLike, title: Optional[str] = None
) -> RunReport:
    """Scan ``run_dir`` recursively and fold its obs artifacts together.

    Never raises on unrecognized or malformed files — they are listed
    in ``skipped_files`` so the report itself records what it could not
    read (a corrupted artifact is a *finding*, not a crash).
    """
    root = Path(run_dir)
    if not root.exists():
        raise FileNotFoundError(f"run directory {root} does not exist")
    report = RunReport(run_dir=str(root), title=title or root.name)
    event_batches: List[List[Dict[str, Any]]] = []
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        rel = str(path.relative_to(root))
        if path.suffix == ".jsonl":
            try:
                event_batches.append(read_jsonl(path))
                report.event_files.append(rel)
            except (OSError, ValueError):  # bad encoding / malformed JSON
                report.skipped_files.append(rel)
            continue
        if path.suffix == ".bin" and path.name.startswith("cell-"):
            # Binary columnar checkpoint (repro.util.codec).
            report.checkpoints.append(_checkpoint_info(path, rel, report))
            continue
        if path.suffix != ".json":
            continue
        if path.name == "failures.json":
            try:
                payload = json.loads(path.read_text())
                report.failures.extend(payload.get("payload", payload).get(
                    "failures", []
                ))
            except (OSError, ValueError, AttributeError):
                report.skipped_files.append(rel)
            continue
        if path.name.startswith("cell-"):
            report.checkpoints.append(_checkpoint_info(path, rel, report))
            continue
        try:
            registry = MetricsRegistry.load(path)
        except (OSError, ValueError, KeyError, TypeError):
            # Trace files, fault ledgers, saved configurations: their
            # envelopes/schemas differ, which is how we tell them apart.
            report.skipped_files.append(rel)
            continue
        report.metrics.merge(registry.snapshot())
        report.metrics_files.append(rel)
    report.events = merge_records(*event_batches) if event_batches else []
    return report


def _checkpoint_info(
    path: Path, rel: str, report: RunReport
) -> Dict[str, Any]:
    """Lenient summary of one per-cell checkpoint file."""
    info: Dict[str, Any] = {"file": rel}
    try:
        if path.suffix == ".bin":
            # Header-only read: scalars come out of the CRC-guarded
            # envelope without decoding any configuration.
            from repro.util.codec import peek_checkpoint_meta

            payload = peek_checkpoint_meta(path.read_bytes())
        else:
            from repro.util.serialization import load_payload

            payload = load_payload(path)
        info["key"] = payload.get("key")
        info["iterations"] = payload.get("iterations")
        info["wall_time"] = payload.get("wall_time")
        # Adaptive stop metadata (absent from legacy checkpoints).
        from repro.util.codec import stop_metadata

        info.update(stop_metadata(payload))
    except (OSError, ValueError, KeyError):
        info["key"] = None
        report.skipped_files.append(rel)
    return info


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

_SUMMARY_COUNTERS = (
    ("engine.cells_completed", "cells completed"),
    ("engine.steps", "chain steps"),
    ("engine.retries", "retries"),
    ("engine.failures", "failures"),
    ("engine.timeouts", "timeouts"),
    ("engine.checkpoint_hits", "checkpoint hits"),
    ("engine.checkpoint_misses", "checkpoint misses"),
    ("engine.checkpoint_recomputes", "checkpoint recomputes"),
    ("engine.state_snapshots", "mid-run state snapshots"),
    ("engine.warm_restores", "warm restores"),
    ("engine.drains", "drains"),
    ("worker.heartbeat_miss", "heartbeat misses"),
)

_CONVERGENCE_COLUMNS = (
    ("cell", "cell"),
    ("lam", "λ"),
    ("gamma", "γ"),
    ("replica", "rep"),
    ("samples", "samples"),
    ("ess", "ESS"),
    ("tau", "τ"),
    ("geweke", "Geweke z"),
    ("rhat", "R̂"),
    ("acceptance_rate", "acc rate"),
    ("converged", "converged"),
)


#: Stop-reason rendering: adaptive cells report *why* they stopped;
#: capped-out cells (budget or hard cap exhausted before the target)
#: are rendered loudly — they, like quarantined cells, must never read
#: as ordinary converged results.
_STOP_LABELS = {
    "converged": "converged",
    "max_iterations": "CAPPED (max-iters)",
    "budget": "CAPPED (budget)",
    "fixed": "fixed",
}


def _stop_label(row: Dict[str, Any]) -> str:
    reason = row.get("stop_reason")
    if not reason:
        return "fixed"
    return _STOP_LABELS.get(str(reason), str(reason))


def _restored_label(row: Dict[str, Any]) -> str:
    """Mid-run durability provenance: where a warm restore picked up.

    ``warm@<step>`` marks a cell that was resumed from a crash-
    consistent mid-run state snapshot (after a worker death, a drain,
    or a preemption) and replayed from that iteration; ``-`` marks a
    cell computed in one uninterrupted pass.
    """
    restored = row.get("restored_from")
    if restored is None:
        return "-"
    return f"warm@{fmt(restored)}"


def _budget_savings(report: RunReport) -> Optional[Tuple[float, float]]:
    """(executed, budgeted) step totals over adaptive cells, or None."""
    executed = budgeted = 0.0
    for row in report.adaptive_rows():
        iters = row.get("iterations")
        budget = row.get("budget_steps")
        if not isinstance(iters, (int, float)) or not isinstance(
            budget, (int, float)
        ):
            continue
        executed += float(iters)
        budgeted += float(budget)
    if budgeted <= 0.0:
        return None
    return executed, budgeted


def _savings_line(report: RunReport) -> Optional[str]:
    savings = _budget_savings(report)
    if savings is None:
        return None
    executed, budgeted = savings
    saved = 100.0 * (1.0 - executed / budgeted)
    return (
        f"adaptive: executed {fmt(executed)} of {fmt(budgeted)} "
        f"budgeted steps ({saved:.0f}% saved)"
    )


def _summary_rows(report: RunReport) -> List[Tuple[str, str]]:
    counters = report.counters()
    gauges = report.gauges()
    rows = [("run directory", report.run_dir)]
    for name, label in _SUMMARY_COUNTERS:
        if name in counters:
            rows.append((label, fmt(counters[name])))
    savings = _savings_line(report)
    if savings is not None:
        rows.append(("budget savings", savings))
    if "engine.wall_seconds" in gauges:
        rows.append(("engine wall time (s)", fmt(gauges["engine.wall_seconds"])))
    throughput = _clean(
        [row.get("steps_per_sec") for row in report.throughput_rows()]
    )
    if throughput:
        rows.append(
            (
                "cell throughput (steps/s, mean)",
                fmt(sum(throughput) / len(throughput)),
            )
        )
    if report.failures:
        rows.append(("quarantined cells", fmt(len(report.failures))))
    if report.checkpoints:
        rows.append(("checkpoint files", fmt(len(report.checkpoints))))
    if report.events:
        rows.append(("log events", fmt(len(report.events))))
    return rows


def _verdict_line(report: RunReport) -> str:
    rows = report.convergence_rows()
    if not rows:
        return (
            "No convergence diagnostics recorded "
            "(run with --diag-every to enable them)."
        )
    low = [r for r in rows if _is_low_ess(r)]
    stalled = [r for r in rows if r.get("stalled")]
    converged = [r for r in rows if r.get("converged")]
    parts = [
        f"{len(converged)}/{len(rows)} cells converged",
        f"{len(low)} below the ESS threshold",
        f"{len(stalled)} stalled",
    ]
    return "; ".join(parts) + "."


def _is_low_ess(row: Dict[str, Any]) -> bool:
    ess = row.get("ess")
    floor = row.get("ess_min")
    if ess is None or not isinstance(ess, (int, float)) or ess != ess:
        return True
    if not isinstance(floor, (int, float)) or floor != floor:
        return False
    return ess < floor


def render_markdown(report: RunReport) -> str:
    """The report as a single markdown document."""
    lines: List[str] = [f"# Run report: {report.title}", ""]
    lines += ["## Summary", ""]
    for label, value in _summary_rows(report):
        lines.append(f"- **{label}**: {value}")
    lines += ["", "## Convergence", "", _verdict_line(report), ""]
    conv = report.convergence_rows()
    if conv:
        headers = [label for _, label in _CONVERGENCE_COLUMNS] + ["flags"]
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "---|" * len(headers))
        for row in conv:
            cells = [fmt(row.get(key)) for key, _ in _CONVERGENCE_COLUMNS]
            flags = []
            if _is_low_ess(row):
                flags.append("LOW ESS")
            if row.get("stalled"):
                flags.append("STALLED")
            cells.append(", ".join(flags) or "-")
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    throughput = report.throughput_rows()
    lines += ["## Throughput", ""]
    if throughput:
        rates = [row.get("steps_per_sec") for row in throughput]
        walls = [row.get("wall_time") for row in throughput]
        spark = sparkline(rates)
        if spark:
            lines.append(f"steps/sec per cell: `{spark}`")
            lines.append("")
        savings = _savings_line(report)
        if savings is not None:
            lines.append(savings)
            lines.append("")
        lines.append(
            "| cell | iterations | budget | wall (s) | steps/s "
            "| stop | ESS at stop | restored |"
        )
        lines.append("|---|---|---|---|---|---|---|---|")
        for row, rate, wall in zip(throughput, rates, walls):
            lines.append(
                f"| {fmt(row.get('cell'))} | {fmt(row.get('iterations'))} "
                f"| {fmt(row.get('budget_steps'))} "
                f"| {fmt(wall)} | {fmt(rate)} "
                f"| {_stop_label(row)} | {fmt(row.get('ess_at_stop'))} "
                f"| {_restored_label(row)} |"
            )
        lines.append("")
    else:
        lines += ["No per-cell throughput series recorded.", ""]
    lines += ["## Failures", ""]
    if report.failures:
        lines.append("| cell | kind | attempts | error |")
        lines.append("|---|---|---|---|")
        for failure in report.failures:
            error = str(failure.get("error", ""))[:120].replace("|", "\\|")
            lines.append(
                f"| {fmt(failure.get('key'))} | {fmt(failure.get('kind'))} "
                f"| {fmt(failure.get('attempts'))} | {error} |"
            )
        lines.append("")
    else:
        lines += ["No quarantined cells.", ""]
    lines += ["## Events", ""]
    counts = report.event_counts()
    if counts:
        lines.append("| event | count |")
        lines.append("|---|---|")
        for name, count in counts:
            lines.append(f"| {name} | {count} |")
        lines.append("")
        problems = report.problems()
        if problems:
            lines.append(f"{len(problems)} warning/error events:")
            lines.append("")
            for record in problems[:20]:
                lines.append(
                    f"- `{record.get('event')}` "
                    f"[{record.get('level', '?')}] "
                    f"{record.get('message', record.get('reasons', ''))}"
                )
            lines.append("")
    else:
        lines += ["No event logs found.", ""]
    if report.skipped_files:
        lines += ["## Skipped files", ""]
        for rel in report.skipped_files:
            lines.append(f"- `{rel}` (unrecognized or unreadable)")
        lines.append("")
    lines.append(
        f"_Sources: {len(report.metrics_files)} metrics file(s), "
        f"{len(report.event_files)} event log(s), "
        f"{len(report.checkpoints)} checkpoint(s)._"
    )
    return "\n".join(lines) + "\n"


_HTML_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a202c; padding: 0 1rem; }
h1 { border-bottom: 2px solid #2b6cb0; padding-bottom: .3rem; }
h2 { color: #2b6cb0; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: .9rem; }
th, td { border: 1px solid #cbd5e0; padding: .3rem .5rem; text-align: left; }
th { background: #ebf8ff; }
tr.bad td { background: #fff5f5; }
tr.good td { background: #f0fff4; }
.spark { color: #2b6cb0; vertical-align: middle; }
.flag { color: #c53030; font-weight: 600; }
.ok { color: #2f855a; font-weight: 600; }
.muted { color: #718096; font-size: .85rem; }
code { background: #edf2f7; padding: .1rem .3rem; border-radius: 3px; }
"""


def _esc(value: Any) -> str:
    return _html.escape(fmt(value))


def render_html(report: RunReport) -> str:
    """The report as one self-contained HTML document (inline CSS/SVG)."""
    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>Run report: {_html.escape(report.title)}</title>",
        f"<style>{_HTML_CSS}</style></head><body>",
        f"<h1>Run report: {_html.escape(report.title)}</h1>",
        "<h2>Summary</h2><table>",
    ]
    for label, value in _summary_rows(report):
        out.append(
            f"<tr><th>{_html.escape(label)}</th>"
            f"<td>{_html.escape(value)}</td></tr>"
        )
    out.append("</table>")

    out.append("<h2>Convergence</h2>")
    out.append(f"<p>{_html.escape(_verdict_line(report))}</p>")
    conv = report.convergence_rows()
    if conv:
        out.append("<table><tr>")
        for _, label in _CONVERGENCE_COLUMNS:
            out.append(f"<th>{_html.escape(label)}</th>")
        out.append("<th>flags</th></tr>")
        for row in conv:
            low = _is_low_ess(row)
            stalled = bool(row.get("stalled"))
            cls = "bad" if (low or stalled) else (
                "good" if row.get("converged") else ""
            )
            out.append(f'<tr class="{cls}">')
            for key, _ in _CONVERGENCE_COLUMNS:
                out.append(f"<td>{_esc(row.get(key))}</td>")
            flags = []
            if low:
                flags.append('<span class="flag">LOW ESS</span>')
            if stalled:
                flags.append('<span class="flag">STALLED</span>')
            out.append(
                "<td>" + (" ".join(flags) or '<span class="ok">ok</span>')
                + "</td></tr>"
            )
        out.append("</table>")
    samples = [
        entry for entry in report.series("diag.samples")
        if isinstance(entry, dict)
    ]
    if samples:
        by_label: Dict[str, List[Dict[str, Any]]] = {}
        for entry in samples:
            by_label.setdefault(str(entry.get("label", "?")), []).append(entry)
        out.append("<h3>Sampled observables</h3><table>")
        out.append(
            "<tr><th>cell</th><th>hetero edges</th><th>total edges</th></tr>"
        )
        for label, entries in sorted(by_label.items()):
            het = sparkline_svg([e.get("hetero") for e in entries])
            edges = sparkline_svg([e.get("edges") for e in entries])
            out.append(
                f"<tr><td>{_html.escape(label)}</td>"
                f"<td>{het}</td><td>{edges}</td></tr>"
            )
        out.append("</table>")

    out.append("<h2>Throughput</h2>")
    throughput = report.throughput_rows()
    if throughput:
        rates = [row.get("steps_per_sec") for row in throughput]
        svg = sparkline_svg(rates, width=480, height=48)
        if svg:
            out.append(f"<p>steps/sec per completed cell: {svg}</p>")
        savings = _savings_line(report)
        if savings is not None:
            out.append(f"<p>{_html.escape(savings)}</p>")
        out.append(
            "<table><tr><th>cell</th><th>iterations</th><th>budget</th>"
            "<th>wall (s)</th><th>steps/s</th><th>stop</th>"
            "<th>ESS at stop</th><th>resumed</th>"
            "<th>restored</th></tr>"
        )
        for row in throughput:
            stop = _stop_label(row)
            stop_html = (
                f'<span class="flag">{_html.escape(stop)}</span>'
                if stop.startswith("CAPPED")
                else _html.escape(stop)
            )
            out.append(
                f"<tr><td>{_esc(row.get('cell'))}</td>"
                f"<td>{_esc(row.get('iterations'))}</td>"
                f"<td>{_esc(row.get('budget_steps'))}</td>"
                f"<td>{_esc(row.get('wall_time'))}</td>"
                f"<td>{_esc(row.get('steps_per_sec'))}</td>"
                f"<td>{stop_html}</td>"
                f"<td>{_esc(row.get('ess_at_stop'))}</td>"
                f"<td>{_esc(bool(row.get('from_checkpoint')))}</td>"
                f"<td>{_html.escape(_restored_label(row))}</td></tr>"
            )
        out.append("</table>")
    else:
        out.append("<p>No per-cell throughput series recorded.</p>")

    out.append("<h2>Failures</h2>")
    if report.failures:
        out.append(
            "<table><tr><th>cell</th><th>kind</th>"
            "<th>attempts</th><th>error</th></tr>"
        )
        for failure in report.failures:
            out.append(
                f'<tr class="bad"><td>{_esc(failure.get("key"))}</td>'
                f"<td>{_esc(failure.get('kind'))}</td>"
                f"<td>{_esc(failure.get('attempts'))}</td>"
                f"<td>{_html.escape(str(failure.get('error', ''))[:200])}"
                "</td></tr>"
            )
        out.append("</table>")
    else:
        out.append("<p>No quarantined cells.</p>")

    out.append("<h2>Events</h2>")
    counts = report.event_counts()
    if counts:
        out.append("<table><tr><th>event</th><th>count</th></tr>")
        for name, count in counts:
            out.append(
                f"<tr><td><code>{_html.escape(name)}</code></td>"
                f"<td>{count}</td></tr>"
            )
        out.append("</table>")
        problems = report.problems()
        if problems:
            out.append(f"<p>{len(problems)} warning/error events:</p><ul>")
            for record in problems[:20]:
                detail = record.get("message", record.get("reasons", ""))
                out.append(
                    f"<li><code>{_html.escape(str(record.get('event')))}</code> "
                    f"[{_html.escape(str(record.get('level', '?')))}] "
                    f"{_html.escape(str(detail))}</li>"
                )
            out.append("</ul>")
    else:
        out.append("<p>No event logs found.</p>")

    if report.skipped_files:
        out.append("<h2>Skipped files</h2><ul>")
        for rel in report.skipped_files:
            out.append(f"<li><code>{_html.escape(rel)}</code></li>")
        out.append("</ul>")
    out.append(
        f'<p class="muted">Sources: {len(report.metrics_files)} metrics '
        f"file(s), {len(report.event_files)} event log(s), "
        f"{len(report.checkpoints)} checkpoint(s).</p>"
    )
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def write_report(
    run_dir: os.PathLike,
    out_dir: Optional[os.PathLike] = None,
    title: Optional[str] = None,
) -> Tuple[Path, Path]:
    """Collect ``run_dir`` and write ``report.md`` + ``report.html``.

    Returns the two paths (markdown first).  ``out_dir`` defaults to
    the run directory itself.
    """
    report = collect_run(run_dir, title=title)
    target = Path(out_dir) if out_dir is not None else Path(run_dir)
    target.mkdir(parents=True, exist_ok=True)
    md_path = target / "report.md"
    html_path = target / "report.html"
    md_path.write_text(render_markdown(report), encoding="utf-8")
    html_path.write_text(render_html(report), encoding="utf-8")
    return md_path, html_path
