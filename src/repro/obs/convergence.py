"""Streaming convergence and mixing diagnostics for the chain.

Cannon et al. state separation and integration *asymptotically* — the
paper gives no finite-time mixing bound, so every regenerated figure
rests on a "ran long enough" assumption.  :mod:`repro.markov.diagnostics`
can verify stationarity exactly, but only on enumerable state spaces; at
experiment scale the best available evidence is *online* diagnostics
computed from the trajectory itself.  This module provides them as
streaming estimators with O(1) memory per sample:

* **Windowed autocorrelation** — lag-``k`` autocorrelations over a fixed
  ring buffer of recent samples, plus the truncated integrated
  autocorrelation time τ (Geyer-style: stop at the first non-positive
  lag).
* **Batch-means ESS** — the effective sample size ``n·Var(x)/(b·Var(x̄_b))``
  from collapsing batch means: when the bounded store of batch means
  fills, adjacent pairs merge and the batch size doubles, so memory stays
  bounded no matter how long the run.
* **Geweke burn-in z-score** — the classic first-fraction vs
  last-fraction mean comparison, computed over the (approximately
  independent) batch means instead of raw samples.
* **Split-chain Gelman–Rubin R̂** — across the batch kernel's R replicas,
  each replica's batch-mean stream split in half, giving 2R segments in
  the standard between/within variance ratio.
* **Stall detector** — flags flat-lining energy (both monitored
  observables frozen over a whole recent window) or acceptance-rate
  collapse below a floor.

Feeding happens at a configurable ``diag_every`` stride via
:meth:`repro.core.separation_chain.SeparationChain.instrument`
(``diagnostics=``) and the batch kernel's round-level ``observer`` hook.
Neither path touches the RNG stream, so diagnosed trajectories — and the
final RNG state — are bit-identical to undiagnosed runs (regression
tested on the grid and batch kernels).

Results flow three ways: gauges/series in a
:class:`~repro.obs.metrics.MetricsRegistry` (``diag.*``),
``chain.converged``/``chain.stalled`` log events and trace instants at
state transitions, and a JSON-able :meth:`ChainDiagnostics.summary` dict
that rides worker result payloads into sweep/figure aggregation and the
``repro report`` generator.  Offline NumPy references for every
estimator live at the bottom of the module; the test suite pins the
streaming implementations against them on recorded trajectories.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "DEFAULT_DIAG_EVERY",
    "STOP_BUDGET",
    "STOP_CONVERGED",
    "STOP_FIXED",
    "STOP_MAX_ITERATIONS",
    "BatchMeans",
    "ChainDiagnostics",
    "DiagnosticsConfig",
    "ReplicaSetDiagnostics",
    "RunningMoments",
    "StopCondition",
    "StreamDiagnostics",
    "WindowedAutocorrelation",
    "aggregate_summaries",
    "offline_autocorrelation",
    "offline_batch_means",
    "offline_ess",
    "offline_geweke",
    "split_rhat",
]

#: Default sampling stride (chain iterations between diagnostic samples).
DEFAULT_DIAG_EVERY = 1_000

_NAN = float("nan")


def _isnan(value: float) -> bool:
    return value != value


@dataclass(frozen=True)
class DiagnosticsConfig:
    """Knobs for the streaming diagnostics.

    ``stride`` is the ``diag_every`` sampling interval in chain
    iterations.  ``verdict_every`` is the verdict cadence in samples:
    estimator state and the raw ``diag.samples`` series update on
    every sample, but the full verdict — gauges plus the stall /
    convergence events — is evaluated only every ``verdict_every``-th
    sample, because it is by far the expensive part of a tick.
    :meth:`ChainDiagnostics.summary` always computes a fresh verdict
    regardless of the cadence.  The thresholds define the convergence
    verdict (see
    ``docs/convergence.md`` for how each was chosen): a stream is
    *converged* when it has at least ``min_batches`` completed batch
    means, ESS ≥ ``ess_min``, |Geweke z| ≤ ``geweke_max``, R̂ ≤
    ``rhat_max`` (when replicas are available), and the stall detector
    is quiet.  ``stall_window`` is the number of recent samples the
    stall detector inspects; a window whose acceptance rate drops below
    ``acceptance_floor``, or whose monitored observables are all exactly
    constant, flags the chain as stalled.
    """

    stride: int = DEFAULT_DIAG_EVERY
    verdict_every: int = 8
    maxlag: int = 32
    batch_capacity: int = 64
    min_batches: int = 8
    ess_min: float = 100.0
    rhat_max: float = 1.1
    geweke_max: float = 2.0
    stall_window: int = 32
    acceptance_floor: float = 1e-4
    first_fraction: float = 0.1
    last_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ValueError(f"stride must be positive, got {self.stride}")
        if self.verdict_every < 1:
            raise ValueError(
                f"verdict_every must be positive, got {self.verdict_every}"
            )
        if self.maxlag < 1:
            raise ValueError(f"maxlag must be positive, got {self.maxlag}")
        if self.batch_capacity < 4 or self.batch_capacity % 2:
            raise ValueError(
                "batch_capacity must be an even integer >= 4, "
                f"got {self.batch_capacity}"
            )
        if self.min_batches < 2:
            raise ValueError(
                f"min_batches must be >= 2, got {self.min_batches}"
            )
        if self.stall_window < 2:
            raise ValueError(
                f"stall_window must be >= 2, got {self.stall_window}"
            )


#: Stop reasons recorded by adaptive execution (checkpoint/report schema).
STOP_CONVERGED = "converged"        #: diagnostics reached the target
STOP_MAX_ITERATIONS = "max_iterations"  #: hard adaptive cap hit first
STOP_BUDGET = "budget"              #: the cell's step budget ran out
STOP_FIXED = "fixed"                #: fixed-budget mode (no adaptive stop)


@dataclass(frozen=True)
class StopCondition:
    """Adaptive-termination target evaluated against diagnostic verdicts.

    A cell running under ``--adaptive`` keeps stepping until a verdict
    (:meth:`ChainDiagnostics.summary` or
    :meth:`ReplicaSetDiagnostics.summary` — the batch kernel's replicas
    therefore *vote* through the group verdict's worst-replica folding
    and cross-replica R̂) satisfies every enabled criterion:

    * worst-stream ESS ≥ ``ess_target``;
    * |Geweke z| ≤ ``geweke_max`` (burn-in drained);
    * R̂ ≤ ``rhat_max`` when replicas make it available;
    * the stall detector is quiet (a frozen chain never "converges");
    * at least ``min_iterations`` steps have run (burn-in floor — the
      early-trajectory verdicts of a cold-started chain are noise).

    ``max_iterations`` is a hard cap *below* the cell's fixed budget
    (0 disables it); the budget itself always remains the outer bound,
    so an adaptive trajectory is a prefix of the fixed-budget
    trajectory on the same RNG stream (scalar kernels).  See
    ``docs/adaptive.md`` for the statistical caveats.
    """

    ess_target: float = 200.0
    rhat_max: float = 1.1
    geweke_max: float = 2.0
    min_iterations: int = 0
    max_iterations: int = 0

    def __post_init__(self) -> None:
        if not self.ess_target > 0.0:
            raise ValueError(
                f"ess_target must be positive, got {self.ess_target}"
            )
        if self.rhat_max < 1.0:
            raise ValueError(f"rhat_max must be >= 1, got {self.rhat_max}")
        if not self.geweke_max > 0.0:
            raise ValueError(
                f"geweke_max must be positive, got {self.geweke_max}"
            )
        if self.min_iterations < 0 or self.max_iterations < 0:
            raise ValueError("iteration floors/caps must be non-negative")
        if (
            self.max_iterations
            and self.min_iterations > self.max_iterations
        ):
            raise ValueError(
                f"min_iterations {self.min_iterations} exceeds "
                f"max_iterations {self.max_iterations}"
            )

    def satisfied(
        self, summary: Dict[str, Any], iteration: int
    ) -> Optional[str]:
        """``STOP_CONVERGED`` when ``summary`` meets the target, else None."""
        if iteration < self.min_iterations:
            return None
        if summary.get("stalled"):
            return None
        ess = summary.get("ess")
        if ess is None or ess < self.ess_target:
            return None
        geweke = summary.get("geweke")
        if geweke is not None and abs(geweke) > self.geweke_max:
            return None
        rhat = summary.get("rhat")
        if rhat is not None and rhat > self.rhat_max:
            return None
        return STOP_CONVERGED

    def cap(self, budget: int) -> int:
        """The effective step ceiling under a fixed ``budget``."""
        if self.max_iterations and self.max_iterations < budget:
            return self.max_iterations
        return budget

    def to_payload(self) -> Dict[str, float]:
        """Flat dict for worker transport (see ``task_payload``)."""
        return {
            "ess_target": self.ess_target,
            "rhat_max": self.rhat_max,
            "geweke_max": self.geweke_max,
            "min_iterations": self.min_iterations,
            "max_iterations": self.max_iterations,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "StopCondition":
        return cls(
            ess_target=float(payload.get("ess_target", 200.0)),
            rhat_max=float(payload.get("rhat_max", 1.1)),
            geweke_max=float(payload.get("geweke_max", 2.0)),
            min_iterations=int(payload.get("min_iterations", 0)),
            max_iterations=int(payload.get("max_iterations", 0)),
        )


class RunningMoments:
    """Welford's online mean/variance (population convention)."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Population variance (NaN before the first sample)."""
        if self.count == 0:
            return _NAN
        return self._m2 / self.count

    def state_payload(self) -> Dict[str, Any]:
        """JSON-able state for mid-run snapshots (exact round trip)."""
        return {"count": self.count, "mean": self.mean, "m2": self._m2}

    def restore_state(self, payload: Dict[str, Any]) -> None:
        self.count = int(payload["count"])
        self.mean = float(payload["mean"])
        self._m2 = float(payload["m2"])


class WindowedAutocorrelation:
    """Lag-1..maxlag autocorrelations from O(maxlag) streaming state.

    Maintains a ring buffer of the last ``maxlag`` samples and the
    running cross-product sums ``Σ x_t·x_{t−k}``; the estimator is the
    naive ``ρ_k = (Σ x_t·x_{t−k}/(n−k) − μ²)/σ²`` with the full-stream
    mean/variance supplied by the caller (so a single
    :class:`RunningMoments` is shared across estimators).
    """

    __slots__ = ("maxlag", "_ring", "_lagsums", "_count")

    def __init__(self, maxlag: int = 32):
        if maxlag < 1:
            raise ValueError(f"maxlag must be positive, got {maxlag}")
        self.maxlag = maxlag
        self._ring = [0.0] * maxlag
        self._lagsums = [0.0] * maxlag
        self._count = 0

    def push(self, value: float) -> None:
        count = self._count
        ring = self._ring
        maxlag = self.maxlag
        lagsums = self._lagsums
        for lag in range(1, min(count, maxlag) + 1):
            lagsums[lag - 1] += value * ring[(count - lag) % maxlag]
        ring[count % maxlag] = value
        self._count = count + 1

    def rho(self, lag: int, mean: float, variance: float) -> float:
        """Autocorrelation at ``lag`` (NaN when not estimable)."""
        if not 1 <= lag <= self.maxlag:
            raise ValueError(f"lag must be in [1, {self.maxlag}], got {lag}")
        pairs = self._count - lag
        if pairs < 1 or not variance > 0.0:
            return _NAN
        return (self._lagsums[lag - 1] / pairs - mean * mean) / variance

    def tau(self, mean: float, variance: float) -> float:
        """Truncated integrated autocorrelation time.

        ``τ = 1 + 2·Σ ρ_k``, summing while ρ stays positive (a
        lightweight Geyer initial-positive-sequence rule); NaN until the
        first lag is estimable.  The ρ loop is inlined (no per-lag
        :meth:`rho` calls): this runs on every diagnostics tick and
        counts against the <5% overhead budget.
        """
        count = self._count
        if count < 2 or not variance > 0.0:
            return _NAN  # rho(1) not estimable
        lagsums = self._lagsums
        mean_sq = mean * mean
        total = 1.0
        for lag in range(1, self.maxlag + 1):
            pairs = count - lag
            if pairs < 1:
                break
            rho = (lagsums[lag - 1] / pairs - mean_sq) / variance
            if not rho > 0.0:  # <= 0 stops the sum (Geyer truncation)
                break
            total += 2.0 * rho
        return total

    def state_payload(self) -> Dict[str, Any]:
        """JSON-able state for mid-run snapshots (exact round trip)."""
        return {
            "maxlag": self.maxlag,
            "ring": list(self._ring),
            "lagsums": list(self._lagsums),
            "count": self._count,
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        if int(payload["maxlag"]) != self.maxlag:
            raise ValueError(
                f"autocorrelation state has maxlag {payload['maxlag']!r}, "
                f"estimator expects {self.maxlag}"
            )
        ring = [float(v) for v in payload["ring"]]
        lagsums = [float(v) for v in payload["lagsums"]]
        if len(ring) != self.maxlag or len(lagsums) != self.maxlag:
            raise ValueError("autocorrelation state has wrong window sizes")
        self._ring = ring
        self._lagsums = lagsums
        self._count = int(payload["count"])


class BatchMeans:
    """Collapsing batch means: bounded memory for unbounded streams.

    Samples accumulate into batches of ``batch_size``; completed batch
    means are stored.  When the store reaches ``capacity`` entries,
    adjacent pairs merge and the batch size doubles — so at most
    ``capacity`` floats are ever held, yet every sample contributes.
    The collapse schedule is deterministic, which lets the offline
    reference recompute the exact same means from a recorded trajectory.
    """

    __slots__ = ("capacity", "batch_size", "means", "_acc", "_acc_count")

    def __init__(self, capacity: int = 64):
        if capacity < 4 or capacity % 2:
            raise ValueError(
                f"capacity must be an even integer >= 4, got {capacity}"
            )
        self.capacity = capacity
        self.batch_size = 1
        self.means: List[float] = []
        self._acc = 0.0
        self._acc_count = 0

    def push(self, value: float) -> None:
        self._acc += value
        self._acc_count += 1
        if self._acc_count == self.batch_size:
            self.means.append(self._acc / self.batch_size)
            self._acc = 0.0
            self._acc_count = 0
            if len(self.means) >= self.capacity:
                self.means = [
                    (self.means[i] + self.means[i + 1]) / 2.0
                    for i in range(0, len(self.means), 2)
                ]
                self.batch_size *= 2

    @property
    def used(self) -> int:
        """Samples inside completed batches (the tail waits in the acc)."""
        return len(self.means) * self.batch_size

    def state_payload(self) -> Dict[str, Any]:
        """JSON-able state for mid-run snapshots (exact round trip)."""
        return {
            "capacity": self.capacity,
            "batch_size": self.batch_size,
            "means": list(self.means),
            "acc": self._acc,
            "acc_count": self._acc_count,
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        if int(payload["capacity"]) != self.capacity:
            raise ValueError(
                f"batch-means state has capacity {payload['capacity']!r}, "
                f"estimator expects {self.capacity}"
            )
        self.batch_size = int(payload["batch_size"])
        self.means = [float(v) for v in payload["means"]]
        self._acc = float(payload["acc"])
        self._acc_count = int(payload["acc_count"])


def _sample_variance(values: Sequence[float]) -> float:
    count = len(values)
    if count < 2:
        return _NAN
    mean = sum(values) / count
    return sum((v - mean) ** 2 for v in values) / (count - 1)


def _ess_from_batches(
    variance: float,
    means: Sequence[float],
    batch_size: int,
    min_batches: int,
    var_batches: Optional[float] = None,
) -> float:
    """ESS = n·Var(x) / (b·Var(batch means)); NaN until estimable.

    ``var_batches`` lets a caller supply the (cached) batch-mean
    variance — it only changes when a batch completes, while the
    full-stream ``variance`` moves every sample.
    """
    count = len(means)
    if count < min_batches:
        return _NAN
    if _isnan(variance):
        return _NAN
    used = count * batch_size
    if not variance > 0.0:
        return 0.0  # a constant stream carries no information
    if var_batches is None:
        var_batches = _sample_variance(means)
    if not var_batches > 0.0:
        return float(used)  # batch means indistinguishable: no memory left
    return used * variance / (batch_size * var_batches)


def _geweke_from_batches(
    means: Sequence[float],
    min_batches: int,
    first_fraction: float,
    last_fraction: float,
) -> float:
    """Geweke z over batch means (≈ independent for mature batches)."""
    count = len(means)
    if count < min_batches:
        return _NAN
    head = max(2, int(count * first_fraction))
    tail = max(2, int(count * last_fraction))
    if head + tail > count:
        return _NAN
    first = means[:head]
    last = means[count - tail:]
    mean_first = sum(first) / head
    mean_last = sum(last) / tail
    var_first = _sample_variance(first)
    var_last = _sample_variance(last)
    denom = math.sqrt(var_first / head + var_last / tail)
    if _isnan(denom):
        return _NAN
    if denom == 0.0:
        return 0.0 if mean_first == mean_last else math.inf
    return (mean_first - mean_last) / denom


def split_rhat(chains: Sequence[Sequence[float]]) -> float:
    """Split-chain Gelman–Rubin R̂ over per-chain sample sequences.

    Each chain is split into its first and last halves (the middle
    element of an odd-length chain is dropped), giving ``2·len(chains)``
    segments of equal length ``h``; the statistic is the standard
    ``sqrt(((h−1)/h·W + B/h) / W)`` with between-segment variance ``B``
    and mean within-segment variance ``W``.  NaN until every chain has
    at least 4 samples.  Used both streaming (over each replica's batch
    means) and offline (the NumPy reference applies it to recorded
    trajectories) — the implementations are the same function.
    """
    if len(chains) < 1:
        return _NAN
    length = min(len(chain) for chain in chains)
    half = length // 2
    if half < 2:
        return _NAN
    segments: List[Sequence[float]] = []
    for chain in chains:
        count = len(chain)
        segments.append(list(chain[:half]))
        segments.append(list(chain[count - half:]))
    if len(segments) < 2:
        return _NAN
    seg_means = [sum(seg) / half for seg in segments]
    seg_vars = [_sample_variance(seg) for seg in segments]
    within = sum(seg_vars) / len(seg_vars)
    grand = sum(seg_means) / len(seg_means)
    between = (
        half
        * sum((m - grand) ** 2 for m in seg_means)
        / (len(seg_means) - 1)
    )
    if not within > 0.0:
        return 1.0 if between == 0.0 else math.inf
    var_hat = (half - 1) / half * within + between / half
    return math.sqrt(var_hat / within)


class StreamDiagnostics:
    """All single-stream estimators for one scalar observable.

    The batch-mean dependent statistics (batch-mean variance, Geweke z)
    are cached against the ``(len(means), batch_size)`` pair — that key
    changes exactly when a batch completes or collapses and never
    repeats, so between completions the per-tick cost is just the
    pushes plus O(maxlag) for τ.  This caching is what keeps the
    diagnostics within the <5% overhead budget at sane strides.
    """

    __slots__ = (
        "config", "moments", "autocorr", "batches", "recent",
        "_batch_key", "_var_batches", "_geweke",
    )

    def __init__(self, config: DiagnosticsConfig):
        self.config = config
        self.moments = RunningMoments()
        self.autocorr = WindowedAutocorrelation(config.maxlag)
        self.batches = BatchMeans(config.batch_capacity)
        self.recent: Deque[float] = deque(maxlen=config.stall_window)
        self._batch_key = (0, 0)
        self._var_batches = _NAN
        self._geweke = _NAN

    def push(self, value: float) -> None:
        value = float(value)
        self.moments.push(value)
        self.autocorr.push(value)
        self.batches.push(value)
        self.recent.append(value)

    def _refresh_batch_stats(self) -> None:
        batches = self.batches
        key = (len(batches.means), batches.batch_size)
        if key != self._batch_key:
            self._batch_key = key
            self._var_batches = _sample_variance(batches.means)
            self._geweke = _geweke_from_batches(
                batches.means,
                self.config.min_batches,
                self.config.first_fraction,
                self.config.last_fraction,
            )

    def ess(self) -> float:
        self._refresh_batch_stats()
        return _ess_from_batches(
            self.moments.variance,
            self.batches.means,
            self.batches.batch_size,
            self.config.min_batches,
            var_batches=self._var_batches,
        )

    def tau(self) -> float:
        return self.autocorr.tau(self.moments.mean, self.moments.variance)

    def geweke(self) -> float:
        self._refresh_batch_stats()
        return self._geweke

    def flat(self) -> bool:
        """Whether the recent window is full and exactly constant."""
        recent = self.recent
        size = len(recent)
        if size < self.config.stall_window or recent[-1] != recent[0]:
            return False
        return recent.count(recent[0]) == size

    def summary(self) -> Dict[str, Any]:
        return {
            "samples": self.moments.count,
            "mean": _finite(self.moments.mean),
            "ess": _finite(self.ess()),
            "tau": _finite(self.tau()),
            "geweke": _finite(self.geweke()),
            "flat": self.flat(),
        }

    def state_payload(self) -> Dict[str, Any]:
        """JSON-able state for mid-run snapshots (exact round trip).

        The cached batch statistics are *not* serialized: the cache key
        resets on restore, so the first post-restore verdict recomputes
        them from the (restored) batch means.
        """
        return {
            "moments": self.moments.state_payload(),
            "autocorr": self.autocorr.state_payload(),
            "batches": self.batches.state_payload(),
            "recent": list(self.recent),
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        self.moments.restore_state(payload["moments"])
        self.autocorr.restore_state(payload["autocorr"])
        self.batches.restore_state(payload["batches"])
        self.recent = deque(
            (float(v) for v in payload["recent"]),
            maxlen=self.config.stall_window,
        )
        self._batch_key = (-1, -1)
        self._var_batches = _NAN
        self._geweke = _NAN


def _finite(value: Optional[float]) -> Optional[float]:
    """NaN/inf → None so summaries serialize as strict JSON."""
    # NaN != NaN; the comparisons are inlined (no _isnan call) because
    # this runs ~10x per diagnostics tick.
    if value is None or value != value or value in (math.inf, -math.inf):
        return None
    return float(value)


def _worst(values: Iterable[Optional[float]], best: float) -> Optional[float]:
    """The farthest value from ``best`` among the non-None entries."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    return max(present, key=lambda v: abs(v - best))


#: The chain observables every diagnostics instance monitors: total edge
#: count (the λ energy term) and heterogeneous edges (the γ term).
MONITORED_STREAMS = ("edges", "hetero")


class _DiagnosticsBase:
    """Shared tick bookkeeping, verdicts, and sink publishing."""

    def __init__(
        self,
        config: Optional[DiagnosticsConfig],
        metrics,
        logger,
        trace,
        label: str,
    ):
        self.config = config or DiagnosticsConfig()
        self.metrics = metrics
        self.logger = logger
        self.trace = trace
        self.label = label
        self.samples = 0
        self.iteration = 0
        self._tick_index = 0
        self._acc_rates: Deque[float] = deque(maxlen=self.config.stall_window)
        self._last_acceptance: Optional[float] = None
        self._was_converged = False
        self._was_stalled = False

    # -- verdicts -------------------------------------------------------

    def _verdict(
        self,
        streams: Dict[str, StreamDiagnostics],
        rhat: Optional[float],
    ) -> Dict[str, Any]:
        config = self.config
        # Each stream's estimators are evaluated exactly once per
        # verdict; both the worst-of folding and the per-stream
        # breakdown read the same stats (this sits on the sampling hot
        # path — the <5% overhead guard counts every microsecond here).
        stats = {name: s.summary() for name, s in streams.items()}
        ess = _worst((st["ess"] for st in stats.values()), math.inf)
        tau = _worst((st["tau"] for st in stats.values()), 0.0)
        geweke = _worst((st["geweke"] for st in stats.values()), 0.0)
        stalled, stall_reasons = self._stall(stats)
        reasons = list(stall_reasons)
        if ess is None:
            reasons.append("insufficient samples for ESS")
        elif ess < config.ess_min:
            reasons.append(f"ESS {ess:.1f} < {config.ess_min:g}")
        if geweke is not None and abs(geweke) > config.geweke_max:
            reasons.append(
                f"|Geweke z| {abs(geweke):.2f} > {config.geweke_max:g}"
            )
        if rhat is not None and rhat > config.rhat_max:
            reasons.append(f"R-hat {rhat:.3f} > {config.rhat_max:g}")
        converged = (
            not stalled
            and ess is not None
            and ess >= config.ess_min
            and (geweke is None or abs(geweke) <= config.geweke_max)
            and (rhat is None or rhat <= config.rhat_max)
        )
        return {
            "stride": config.stride,
            "iteration": self.iteration,
            "samples": self.samples,
            "ess": ess,
            "tau": tau,
            "geweke": geweke,
            "rhat": _finite(rhat) if rhat is not None else None,
            "acceptance_rate": _finite(
                self._last_acceptance
                if self._last_acceptance is not None
                else _NAN
            ),
            "stalled": stalled,
            "converged": converged,
            "reasons": reasons,
            "ess_min": config.ess_min,
            "streams": stats,
        }

    def _stall(
        self, stats: Dict[str, Dict[str, Any]]
    ) -> "tuple[bool, List[str]]":
        reasons: List[str] = []
        rates = self._acc_rates
        if len(rates) == self.config.stall_window:
            mean_rate = sum(rates) / len(rates)
            if mean_rate < self.config.acceptance_floor:
                reasons.append(
                    f"acceptance rate {mean_rate:.2e} below floor "
                    f"{self.config.acceptance_floor:g}"
                )
        if all(st["flat"] for st in stats.values()):
            reasons.append(
                "energy flat-lined: monitored observables constant over "
                f"the last {self.config.stall_window} samples"
            )
        return bool(reasons), reasons

    # -- sink publishing ------------------------------------------------

    def _record_sample(self, sample: Dict[str, Any]) -> None:
        """Per-sample sink update (cheap: one series append)."""
        metrics = self.metrics
        if metrics is not None:
            metrics.series("diag.samples").append(sample)

    def _verdict_due(self) -> bool:
        """Whether this sample is on the verdict cadence."""
        return self.samples % self.config.verdict_every == 0

    def _publish(self, verdict: Dict[str, Any]) -> None:
        metrics = self.metrics
        if metrics is not None:
            for key in ("ess", "tau", "geweke", "rhat", "acceptance_rate"):
                value = verdict.get(key)
                if value is not None:
                    metrics.gauge(f"diag.{key}").set(value)
        self._transitions(verdict)

    def _transitions(self, verdict: Dict[str, Any]) -> None:
        """Emit events / trace instants on verdict state changes."""
        logger = self.logger
        trace = self.trace
        if verdict["stalled"] and not self._was_stalled:
            if logger is not None:
                logger.warning(
                    "chain.stalled",
                    label=self.label,
                    iteration=self.iteration,
                    reasons=verdict["reasons"],
                    acceptance_rate=verdict["acceptance_rate"],
                )
            if trace is not None:
                trace.instant("chain.stalled", iteration=self.iteration)
        if verdict["converged"] and not self._was_converged:
            if logger is not None:
                logger.info(
                    "chain.converged",
                    label=self.label,
                    iteration=self.iteration,
                    ess=verdict["ess"],
                    tau=verdict["tau"],
                    geweke=verdict["geweke"],
                    rhat=verdict["rhat"],
                )
            if trace is not None:
                trace.instant("chain.converged", iteration=self.iteration)
        self._was_stalled = verdict["stalled"]
        self._was_converged = verdict["converged"]

    def _tick(self, iteration: int) -> bool:
        """Whether ``iteration`` crosses into a new stride interval."""
        index = iteration // self.config.stride
        if index <= self._tick_index:
            return False
        self._tick_index = index
        return True

    # -- mid-run state snapshots ---------------------------------------

    def _base_state_payload(self) -> Dict[str, Any]:
        return {
            "stride": self.config.stride,
            "samples": self.samples,
            "iteration": self.iteration,
            "tick_index": self._tick_index,
            "acc_rates": list(self._acc_rates),
            "last_acceptance": self._last_acceptance,
            "was_converged": self._was_converged,
            "was_stalled": self._was_stalled,
        }

    def _restore_base_state(self, payload: Dict[str, Any]) -> None:
        if int(payload["stride"]) != self.config.stride:
            raise ValueError(
                f"diagnostics state was sampled at stride "
                f"{payload['stride']!r}, this run uses {self.config.stride}"
            )
        self.samples = int(payload["samples"])
        self.iteration = int(payload["iteration"])
        self._tick_index = int(payload["tick_index"])
        self._acc_rates = deque(
            (float(v) for v in payload["acc_rates"]),
            maxlen=self.config.stall_window,
        )
        last = payload.get("last_acceptance")
        self._last_acceptance = None if last is None else float(last)
        self._was_converged = bool(payload["was_converged"])
        self._was_stalled = bool(payload["was_stalled"])


class ChainDiagnostics(_DiagnosticsBase):
    """Streaming diagnostics for one :class:`SeparationChain`.

    Attach via ``chain.instrument(diagnostics=ChainDiagnostics(...))``;
    the chain then samples its O(1) incremental counters every
    ``config.stride`` iterations.  The scalar kernels segment the run at
    stride boundaries with a refill *horizon* that reproduces the
    undiagnosed draw-ahead exactly; the batch kernel calls
    :meth:`maybe_observe` once per vectorized round.  Either way the RNG
    stream is untouched.
    """

    def __init__(
        self,
        config: Optional[DiagnosticsConfig] = None,
        *,
        metrics=None,
        logger=None,
        trace=None,
        label: str = "chain",
    ):
        super().__init__(config, metrics, logger, trace, label)
        self.streams: Dict[str, StreamDiagnostics] = {
            name: StreamDiagnostics(self.config)
            for name in MONITORED_STREAMS
        }
        self._last_iteration = 0
        self._last_accepted = 0

    def steps_until_tick(self, iteration: int) -> int:
        """Steps from ``iteration`` to the next stride boundary."""
        stride = self.config.stride
        return stride - (iteration % stride)

    def observe_chain(self, chain) -> None:
        """Sample a chain's incremental counters (scalar-kernel path)."""
        self.maybe_record(
            chain.iterations,
            chain.system.edge_total,
            chain.system.hetero_total,
            chain.accepted_moves + chain.accepted_swaps,
        )

    def maybe_observe(self, kernel) -> None:
        """Round-level observer for a single-replica batch kernel."""
        self.maybe_record(
            int(kernel.iters[0]),
            int(kernel.edge[0]),
            int(kernel.het[0]),
            int(kernel.acc_moves[0]) + int(kernel.acc_swaps[0]),
        )

    def maybe_record(
        self, iteration: int, edges: float, hetero: float, accepted: int
    ) -> None:
        if not self._tick(iteration):
            return
        interval = iteration - self._last_iteration
        rate = (
            (accepted - self._last_accepted) / interval
            if interval > 0
            else _NAN
        )
        self._last_iteration = iteration
        self._last_accepted = accepted
        self.iteration = iteration
        self.samples += 1
        self._last_acceptance = rate
        if not _isnan(rate):
            self._acc_rates.append(rate)
        self.streams["edges"].push(edges)
        self.streams["hetero"].push(hetero)
        self._record_sample(
            {
                "label": self.label,
                "iteration": iteration,
                "edges": float(edges),
                "hetero": float(hetero),
                "acceptance": _finite(rate),
            }
        )
        if self._verdict_due():
            self._publish(self._verdict(self.streams, rhat=None))

    def summary(self) -> Dict[str, Any]:
        """The JSON-able verdict (rides worker result payloads)."""
        return self._verdict(self.streams, rhat=None)

    def state_payload(self) -> Dict[str, Any]:
        """JSON-able estimator state for mid-run snapshots.

        Restoring this into a fresh instance with an *identical*
        ``DiagnosticsConfig`` makes every subsequent sample, verdict,
        and summary bit-identical to the uninterrupted instance.
        """
        payload = self._base_state_payload()
        payload["streams"] = {
            name: stream.state_payload()
            for name, stream in self.streams.items()
        }
        payload["last_iteration"] = self._last_iteration
        payload["last_accepted"] = self._last_accepted
        return payload

    def restore_state(self, payload: Dict[str, Any]) -> None:
        self._restore_base_state(payload)
        for name, stream in self.streams.items():
            stream.restore_state(payload["streams"][name])
        self._last_iteration = int(payload["last_iteration"])
        self._last_accepted = int(payload["last_accepted"])


class ReplicaSetDiagnostics(_DiagnosticsBase):
    """Diagnostics across the batch kernel's R lock-step replicas.

    Per-replica streams feed the same single-stream estimators as
    :class:`ChainDiagnostics`; in addition, the per-replica batch-mean
    sequences give the split-chain Gelman–Rubin R̂ (2R segments).  The
    group verdict takes the *worst* replica for ESS/Geweke and the
    cross-replica R̂; :meth:`member_summary` produces a per-replica dict
    with the shared R̂ attached, matching the per-cell payload schema.
    """

    def __init__(
        self,
        replicas: int,
        config: Optional[DiagnosticsConfig] = None,
        *,
        metrics=None,
        logger=None,
        trace=None,
        label: str = "batch",
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        super().__init__(config, metrics, logger, trace, label)
        self.replicas = replicas
        self.streams_per_replica: List[Dict[str, StreamDiagnostics]] = [
            {
                name: StreamDiagnostics(self.config)
                for name in MONITORED_STREAMS
            }
            for _ in range(replicas)
        ]
        self._last_iteration = 0
        self._last_accepted = [0] * replicas

    def maybe_observe(self, kernel) -> None:
        """Round-level observer hook (BatchKernel calls this)."""
        iteration = int(kernel.iters.min())
        if iteration // self.config.stride <= self._tick_index:
            return  # cheap pre-check before materializing arrays
        self.maybe_record(
            iteration,
            [int(v) for v in kernel.edge],
            [int(v) for v in kernel.het],
            [
                int(m) + int(s)
                for m, s in zip(kernel.acc_moves, kernel.acc_swaps)
            ],
        )

    def maybe_record(
        self,
        iteration: int,
        edges: Sequence[float],
        hetero: Sequence[float],
        accepted: Sequence[int],
    ) -> None:
        if not self._tick(iteration):
            return
        interval = iteration - self._last_iteration
        if interval > 0:
            rates = [
                (now - before) / interval
                for now, before in zip(accepted, self._last_accepted)
            ]
            rate = sum(rates) / len(rates)
            self._acc_rates.append(rate)
            self._last_acceptance = rate
        self._last_iteration = iteration
        self._last_accepted = list(accepted)
        self.iteration = iteration
        self.samples += 1
        for replica, streams in enumerate(self.streams_per_replica):
            streams["edges"].push(edges[replica])
            streams["hetero"].push(hetero[replica])
        mean_edges = sum(edges) / len(edges)
        mean_hetero = sum(hetero) / len(hetero)
        self._record_sample(
            {
                "label": self.label,
                "iteration": iteration,
                "edges": float(mean_edges),
                "hetero": float(mean_hetero),
                "acceptance": _finite(
                    self._last_acceptance
                    if self._last_acceptance is not None
                    else _NAN
                ),
            }
        )
        if self._verdict_due():
            # R̂ (split chains across replicas) is only evaluated on
            # verdict ticks — it walks every replica's batch means.
            self._publish(
                self._verdict(self._worst_streams(), rhat=self.rhat())
            )

    def _worst_streams(self) -> Dict[str, StreamDiagnostics]:
        """Per-observable, the replica stream with the lowest ESS."""
        worst: Dict[str, StreamDiagnostics] = {}
        for name in MONITORED_STREAMS:
            candidates = [
                streams[name] for streams in self.streams_per_replica
            ]

            def _key(stream: StreamDiagnostics) -> float:
                ess = stream.ess()
                return math.inf if _isnan(ess) else ess

            worst[name] = min(candidates, key=_key)
        return worst

    def rhat(self, stream: str = "hetero") -> float:
        """Split-chain R̂ of ``stream`` across the replicas' batch means."""
        if stream not in MONITORED_STREAMS:
            raise ValueError(f"unknown stream {stream!r}")
        return split_rhat(
            [
                streams[stream].batches.means
                for streams in self.streams_per_replica
            ]
        )

    def summary(self) -> Dict[str, Any]:
        """Group verdict: worst replica + cross-replica R̂."""
        return self._verdict(self._worst_streams(), rhat=self.rhat())

    def state_payload(self) -> Dict[str, Any]:
        """JSON-able estimator state for mid-run snapshots (all replicas)."""
        payload = self._base_state_payload()
        payload["replicas"] = self.replicas
        payload["streams_per_replica"] = [
            {
                name: stream.state_payload()
                for name, stream in streams.items()
            }
            for streams in self.streams_per_replica
        ]
        payload["last_iteration"] = self._last_iteration
        payload["last_accepted"] = list(self._last_accepted)
        return payload

    def restore_state(self, payload: Dict[str, Any]) -> None:
        if int(payload["replicas"]) != self.replicas:
            raise ValueError(
                f"diagnostics state covers {payload['replicas']!r} "
                f"replicas, this group has {self.replicas}"
            )
        self._restore_base_state(payload)
        for streams, stream_payloads in zip(
            self.streams_per_replica, payload["streams_per_replica"]
        ):
            for name, stream in streams.items():
                stream.restore_state(stream_payloads[name])
        self._last_iteration = int(payload["last_iteration"])
        self._last_accepted = [int(v) for v in payload["last_accepted"]]

    def member_summary(self, replica: int) -> Dict[str, Any]:
        """Per-replica verdict carrying the shared cross-replica R̂."""
        if not 0 <= replica < self.replicas:
            raise ValueError(
                f"replica must be in [0, {self.replicas}), got {replica}"
            )
        streams = self.streams_per_replica[replica]
        verdict = self._verdict(streams, rhat=self.rhat())
        verdict["replica"] = replica
        verdict["replicas"] = self.replicas
        return verdict


def aggregate_summaries(
    summaries: Iterable[Optional[Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """Fold per-cell diagnostic summaries into one harness-level view.

    ``None`` entries (cells restored from checkpoints, or runs without
    diagnostics) are skipped; returns ``None`` when nothing carried a
    summary.  The aggregate reports the *worst* cell on each axis plus a
    ``low_ess`` flag — the bit figure-2/figure-3/scaling points use to
    mark measurements that rest on too few effective samples.
    """
    present = [s for s in summaries if s]
    if not present:
        return None

    def _collect(key: str) -> List[float]:
        return [s[key] for s in present if s.get(key) is not None]

    ess_values = _collect("ess")
    rhat_values = _collect("rhat")
    geweke_values = [abs(v) for v in _collect("geweke")]
    ess_min = present[0].get("ess_min", DiagnosticsConfig.ess_min)
    min_ess = min(ess_values) if ess_values else None
    return {
        "cells": len(present),
        "min_ess": min_ess,
        "max_rhat": max(rhat_values) if rhat_values else None,
        "max_abs_geweke": max(geweke_values) if geweke_values else None,
        "stalled_cells": sum(1 for s in present if s.get("stalled")),
        "converged": all(s.get("converged") for s in present),
        "low_ess": min_ess is None or min_ess < ess_min,
        "ess_min": ess_min,
    }


# ---------------------------------------------------------------------------
# Offline NumPy references (tests pin the streaming estimators to these)
# ---------------------------------------------------------------------------


def offline_autocorrelation(
    samples: Sequence[float], maxlag: int
) -> List[float]:
    """Direct lag-1..maxlag autocorrelations of a recorded trajectory.

    Same estimator as :class:`WindowedAutocorrelation`:
    ``ρ_k = (Σ x_t·x_{t−k}/(n−k) − μ²)/σ²`` with population mean and
    variance over the full series.
    """
    import numpy as np

    xs = np.asarray(samples, dtype=float)
    mean = float(xs.mean()) if xs.size else _NAN
    variance = float(xs.var()) if xs.size else _NAN
    rhos: List[float] = []
    for lag in range(1, maxlag + 1):
        pairs = xs.size - lag
        if pairs < 1 or not variance > 0.0:
            rhos.append(_NAN)
            continue
        cross = float((xs[lag:] * xs[:-lag]).sum()) / pairs
        rhos.append((cross - mean * mean) / variance)
    return rhos


def offline_batch_means(
    samples: Sequence[float], batch_size: int
) -> List[float]:
    """Means of the complete ``batch_size`` batches of a trajectory."""
    import numpy as np

    xs = np.asarray(samples, dtype=float)
    complete = (xs.size // batch_size) * batch_size
    if complete == 0:
        return []
    return [
        float(v)
        for v in xs[:complete].reshape(-1, batch_size).mean(axis=1)
    ]


def offline_ess(
    samples: Sequence[float],
    batch_size: int,
    min_batches: int = DiagnosticsConfig.min_batches,
) -> float:
    """Batch-means ESS of a recorded trajectory (reference formula)."""
    import numpy as np

    xs = np.asarray(samples, dtype=float)
    variance = float(xs.var()) if xs.size else _NAN
    means = offline_batch_means(samples, batch_size)
    return _ess_from_batches(variance, means, batch_size, min_batches)


def offline_geweke(
    samples: Sequence[float],
    batch_size: int,
    min_batches: int = DiagnosticsConfig.min_batches,
    first_fraction: float = DiagnosticsConfig.first_fraction,
    last_fraction: float = DiagnosticsConfig.last_fraction,
) -> float:
    """Geweke z of a recorded trajectory over its batch means."""
    means = offline_batch_means(samples, batch_size)
    return _geweke_from_batches(
        means, min_batches, first_fraction, last_fraction
    )
