"""Observability: structured logs, metrics, trace spans, progress.

This package is the measurement substrate for every execution layer:

* :mod:`repro.obs.log` — JSON-lines event logging with bound context
  that survives process-pool boundaries (workers buffer, the parent
  merges);
* :mod:`repro.obs.metrics` — a registry of counters, gauges,
  fixed-bucket histograms, and per-item series with snapshot/merge/
  file-export APIs;
* :mod:`repro.obs.trace` — Chrome trace-event spans (perfetto
  viewable) with worker-process stitching by pid;
* :mod:`repro.obs.progress` — a live stderr progress/heartbeat
  reporter for :func:`repro.experiments.parallel.execute_cells` and
  the opt-in cProfile hook;
* :mod:`repro.obs.convergence` — streaming convergence/mixing
  diagnostics (autocorrelation, batch-means ESS, Geweke, split-chain
  R̂, stall detection) sampled at a ``diag_every`` stride;
* :mod:`repro.obs.report` — the ``repro report`` generator that folds
  a run directory's obs artifacts into one HTML + markdown run report
  (imported lazily by the CLI, not re-exported here: it reads
  experiment-layer artifacts and a package-level import would cycle).

:class:`Instrumentation` bundles the four into one optional handle the
harnesses thread through; everything is null-safe, so uninstrumented
runs pay a single ``is None`` check per hook point and the chain's
batched-RNG fast path stays bit-identical (instrumentation never
touches the RNG stream — the regression test asserts this).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Any, ContextManager, Dict, Optional

from repro.obs.convergence import (
    ChainDiagnostics,
    DiagnosticsConfig,
    ReplicaSetDiagnostics,
    StopCondition,
    aggregate_summaries,
)
from repro.obs.log import JsonLogger, merge_records, read_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)
from repro.obs.progress import ProgressReporter, run_profiled
from repro.obs.trace import TraceRecorder, validate_trace

__all__ = [
    "ChainDiagnostics",
    "Counter",
    "DiagnosticsConfig",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JsonLogger",
    "MetricsRegistry",
    "ProgressReporter",
    "ReplicaSetDiagnostics",
    "Series",
    "StopCondition",
    "TraceRecorder",
    "aggregate_summaries",
    "merge_records",
    "read_jsonl",
    "run_profiled",
    "validate_trace",
]


@dataclass
class Instrumentation:
    """One optional handle bundling logger, metrics, trace, and profiling.

    Every member may be ``None``; the convenience methods no-op (or
    return null context managers) in that case, so call sites stay
    branch-free.  Harnesses accept ``obs: Optional[Instrumentation]``
    and treat ``None`` as fully disabled.
    """

    logger: Optional[JsonLogger] = None
    metrics: Optional[MetricsRegistry] = None
    trace: Optional[TraceRecorder] = None
    profile: bool = False
    #: Convergence-diagnostics sampling stride in chain iterations;
    #: 0 disables.  Workers build per-cell streaming diagnostics (see
    #: :mod:`repro.obs.convergence`) sampling at this interval.
    diag_every: int = 0

    def enabled(self) -> bool:
        """Whether any instrument is active."""
        return (
            self.logger is not None
            or self.metrics is not None
            or self.trace is not None
            or self.profile
            or self.diag_every > 0
        )

    def bind(self, **context: Any) -> "Instrumentation":
        """A copy whose logger carries extra context fields.

        Metrics and trace are shared (they aggregate globally); only
        the logger is rebound, mirroring structured-logging practice.
        """
        if self.logger is None:
            return self
        return replace(self, logger=self.logger.bind(**context))

    def log(self, event: str, level: str = "info", **fields: Any) -> None:
        if self.logger is not None:
            self.logger.log(event, level=level, **fields)

    def span(self, name: str, **args: Any) -> ContextManager[None]:
        if self.trace is not None:
            return self.trace.span(name, **args)
        return nullcontext()

    def worker_flags(self) -> Dict[str, Any]:
        """The JSON-able instrumentation request shipped to workers.

        Workers rebuild local (buffering) instruments from these flags
        and return their records in the result payload; identity-
        relevant task fields are untouched, so instrumented and
        uninstrumented runs share checkpoint keys and trajectories.
        """
        return {
            "events": self.logger is not None,
            "metrics": self.metrics is not None,
            "trace": self.trace is not None,
            "profile": bool(self.profile),
            "diag_every": int(self.diag_every),
        }
