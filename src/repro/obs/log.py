"""Structured JSON-lines event logging.

The experiment layers (chain, parallel engine, sweep harnesses, CLI)
emit *events* rather than formatted strings: each event is one JSON
object per line with a timestamp, a level, an event name, the emitting
process id, and whatever context fields were bound onto the logger.

Design constraints, in order:

* **zero dependencies** — plain ``json`` + file objects;
* **cheap when silent** — harness hot paths hold ``None`` instead of a
  logger and skip the call entirely (see
  :class:`repro.obs.Instrumentation`);
* **multiprocess-friendly** — worker processes cannot share the
  parent's file handle, so a worker logs into a plain ``list`` sink
  and ships the records back inside its result payload; the parent
  re-emits them with :meth:`JsonLogger.emit`, preserving the worker's
  original timestamps and pid.  :func:`merge_records` merge-sorts
  several such streams by timestamp (stable, so intra-worker order is
  never reordered) for post-hoc analysis of a whole run.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

#: Numeric severities, lowest first (mirrors the stdlib convention).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: A sink is either a writable text stream or a list collecting records.
Sink = Union[io.TextIOBase, List[Dict[str, Any]], Any]


class JsonLogger:
    """Emit structured events to a stream or an in-memory list.

    Parameters
    ----------
    sink:
        A text stream (each record is written as one JSON line and
        flushed) or a ``list`` (records are appended as dictionaries —
        the buffering mode worker processes use).
    context:
        Fields merged into every record.  :meth:`bind` derives child
        loggers with extra context without copying the sink.
    level:
        Minimum severity emitted (``"debug"`` … ``"error"``).
    clock:
        Timestamp source (unix seconds); injectable for tests.
    """

    def __init__(
        self,
        sink: Sink,
        context: Optional[Dict[str, Any]] = None,
        level: str = "debug",
        clock: Callable[[], float] = time.time,
    ):
        if level not in LEVELS:
            raise ValueError(
                f"unknown level {level!r}; expected one of {sorted(LEVELS)}"
            )
        self._sink = sink
        self._context: Dict[str, Any] = dict(context or {})
        self._threshold = LEVELS[level]
        self._clock = clock
        self._owns_sink = False

    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls, path: Union[str, Path], level: str = "debug", **kwargs: Any
    ) -> "JsonLogger":
        """Logger appending JSON lines to ``path`` (parents created)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        logger = cls(target.open("a", encoding="utf-8"), level=level, **kwargs)
        logger._owns_sink = True
        return logger

    @classmethod
    def collecting(cls, **kwargs: Any) -> "JsonLogger":
        """Logger buffering records in memory (see :attr:`records`)."""
        return cls([], **kwargs)

    @property
    def records(self) -> List[Dict[str, Any]]:
        """The buffered records of a list-sink logger."""
        if not isinstance(self._sink, list):
            raise TypeError("records are only available on list-sink loggers")
        return self._sink

    def bind(self, **fields: Any) -> "JsonLogger":
        """A child logger whose records carry ``fields`` as context.

        The child shares this logger's sink, threshold, and clock; the
        parent's context is merged under the new fields.
        """
        child = JsonLogger.__new__(JsonLogger)
        child._sink = self._sink
        child._context = {**self._context, **fields}
        child._threshold = self._threshold
        child._clock = self._clock
        child._owns_sink = False
        return child

    # ------------------------------------------------------------------

    def log(self, event: str, level: str = "info", **fields: Any) -> Dict[str, Any]:
        """Emit one event; returns the record (or ``{}`` if filtered)."""
        severity = LEVELS.get(level)
        if severity is None:
            raise ValueError(
                f"unknown level {level!r}; expected one of {sorted(LEVELS)}"
            )
        if severity < self._threshold:
            return {}
        record: Dict[str, Any] = {
            "ts": self._clock(),
            "level": level,
            "event": event,
            "pid": os.getpid(),
        }
        record.update(self._context)
        record.update(fields)
        self.emit(record)
        return record

    def debug(self, event: str, **fields: Any) -> Dict[str, Any]:
        return self.log(event, level="debug", **fields)

    def info(self, event: str, **fields: Any) -> Dict[str, Any]:
        return self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> Dict[str, Any]:
        return self.log(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> Dict[str, Any]:
        return self.log(event, level="error", **fields)

    def emit(self, record: Dict[str, Any]) -> None:
        """Write a pre-built record unchanged.

        Used when the parent process re-emits records a worker already
        stamped: the worker's timestamp and pid survive, which is what
        lets a single JSONL file interleave the whole process tree.
        """
        sink = self._sink
        if isinstance(sink, list):
            sink.append(record)
            return
        sink.write(json.dumps(record, default=str) + "\n")
        flush = getattr(sink, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        """Close the sink if this logger opened it (see :meth:`open`)."""
        if self._owns_sink:
            self._sink.close()
            self._owns_sink = False


def merge_records(
    *streams: Iterable[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Merge event streams into one list ordered by timestamp.

    The sort is **stable**: records with equal ``ts`` keep their
    within-stream order, and earlier streams win ties against later
    ones — so merging the parent stream with per-worker buffers never
    reorders causally-ordered events inside any single process.
    """
    merged: List[Dict[str, Any]] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda record: record.get("ts", 0.0))
    return merged


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSON-lines event file back into records (blank-safe)."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
