"""Counters, gauges, histograms, and series — the metrics registry.

A :class:`MetricsRegistry` is a named bag of four instrument kinds:

* :class:`Counter` — monotonically increasing totals (steps proposed,
  moves accepted, checkpoint hits);
* :class:`Gauge` — last-written values (current perimeter, steps/sec of
  the most recent run);
* :class:`Histogram` — fixed-bucket distributions with Prometheus-style
  ``le`` (less-or-equal) upper bounds plus an implicit overflow bucket
  (cell wall-times, per-run durations);
* :class:`Series` — append-only lists of records (one entry per sweep
  cell, carrying its wall-time and throughput) for per-item detail that
  aggregate instruments deliberately discard.

The registry round-trips through plain JSON (:meth:`snapshot` /
:meth:`MetricsRegistry.from_snapshot`), merges worker snapshots into a
parent (:meth:`merge` — counters add, gauges last-write-wins,
histograms add bucket-wise, series concatenate), and exports to disk
with the same versioned payload envelope the sweep checkpoints use, so
metrics files sit alongside sweep payloads with one loader.
"""

from __future__ import annotations

from bisect import bisect_left
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.util.serialization import load_payload, save_payload

#: Schema version of registry snapshots.
METRICS_FORMAT_VERSION = 1

#: Default histogram buckets for durations in seconds (log-ish spacing).
DEFAULT_TIME_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with ``le`` upper bounds.

    ``buckets`` are strictly increasing finite upper bounds; a value
    ``v`` lands in the first bucket with ``v <= bound``, and values
    above the last bound land in the implicit ``+inf`` overflow bucket
    (``counts`` has ``len(buckets) + 1`` entries).  ``sum`` and
    ``count`` track totals for mean computation.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float]):
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b != b or b in (float("inf"), float("-inf")) for b in bounds):
            raise ValueError("bucket bounds must be finite")
        if any(hi <= lo for lo, hi in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        self.name = name
        self.buckets: List[float] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record ``value`` (boundary values land in the lower bucket)."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


class Series:
    """Append-only list of per-item records (e.g. one entry per cell)."""

    __slots__ = ("name", "entries")

    def __init__(self, name: str, entries: Optional[List[Any]] = None):
        self.name = name
        self.entries: List[Any] = list(entries or [])

    def append(self, entry: Any) -> None:
        self.entries.append(entry)

    def extend(self, entries: Iterable[Any]) -> None:
        """Ordered concatenation: append ``entries`` in iteration order.

        This is the single merge primitive for series — existing
        entries keep their positions, incoming ones follow in snapshot
        order.  Worker series of *different lengths* therefore merge
        without any alignment or truncation; the combined order is
        fully determined by the sequence of :meth:`MetricsRegistry.merge`
        calls, which the parallel engine issues in completion order
        (deterministic for the serial backend, and stable per run for
        the process backend).
        """
        self.entries.extend(entries)

    def __len__(self) -> int:
        return len(self.entries)


class MetricsRegistry:
    """Get-or-create registry of named instruments with JSON round-trip."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, Series] = {}

    # -- get-or-create accessors ---------------------------------------

    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        self._check_free(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        self._check_free(name, self._histograms)
        existing = self._histograms.get(name)
        if existing is not None:
            return existing
        histogram = Histogram(name, buckets)
        self._histograms[name] = histogram
        return histogram

    def series(self, name: str) -> Series:
        self._check_free(name, self._series)
        return self._series.setdefault(name, Series(name))

    def _check_free(self, name: str, own: Mapping[str, Any]) -> None:
        """Reject reuse of one name across different instrument kinds."""
        for table in (self._counters, self._gauges, self._histograms, self._series):
            if table is not own and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    # -- snapshot / restore / merge ------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-JSON view of every instrument (deep-copied)."""
        return {
            "version": METRICS_FORMAT_VERSION,
            "counters": {
                name: counter.value for name, counter in self._counters.items()
            },
            "gauges": {name: gauge.value for name, gauge in self._gauges.items()},
            "histograms": {
                name: {
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "sum": histogram.sum,
                    "count": histogram.count,
                }
                for name, histogram in self._histograms.items()
            },
            "series": {
                name: list(series.entries)
                for name, series in self._series.items()
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        version = snapshot.get("version")
        if version != METRICS_FORMAT_VERSION:
            raise ValueError(f"unsupported metrics snapshot version: {version}")
        registry = cls()
        for name, value in snapshot.get("counters", {}).items():
            registry.counter(name).value = float(value)
        for name, value in snapshot.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = registry.histogram(name, payload["buckets"])
            counts = [int(c) for c in payload["counts"]]
            if len(counts) != len(histogram.counts):
                raise ValueError(
                    f"histogram {name!r} snapshot has {len(counts)} counts "
                    f"for {len(histogram.buckets)} buckets"
                )
            histogram.counts = counts
            histogram.sum = float(payload["sum"])
            histogram.count = int(payload["count"])
        for name, entries in snapshot.get("series", {}).items():
            registry._series[name] = Series(name, list(entries))
        return registry

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a worker snapshot into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins — the worker observed it more recently);
        series concatenate via :meth:`Series.extend` — ordered concat,
        never element-wise alignment, so per-worker series of differing
        lengths (e.g. per-replica diagnostic samples at different
        strides) merge deterministically: existing entries first, then
        the snapshot's entries in their recorded order.  Histogram
        bucket layouts must match.
        """
        version = snapshot.get("version")
        if version != METRICS_FORMAT_VERSION:
            raise ValueError(f"unsupported metrics snapshot version: {version}")
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += float(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, payload["buckets"])
            if list(histogram.buckets) != [float(b) for b in payload["buckets"]]:
                raise ValueError(
                    f"histogram {name!r} bucket layouts differ; cannot merge"
                )
            for index, count in enumerate(payload["counts"]):
                histogram.counts[index] += int(count)
            histogram.sum += float(payload["sum"])
            histogram.count += int(payload["count"])
        for name, entries in snapshot.get("series", {}).items():
            self.series(name).extend(entries)

    # -- persistence ----------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Atomically write the snapshot with the shared payload envelope."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        save_payload(self.snapshot(), target)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MetricsRegistry":
        """Read a registry previously written by :meth:`save`."""
        return cls.from_snapshot(load_payload(path))
