"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``simulate``
    Run the separation chain and report observables (optionally saving
    the final configuration and rendering it).
``figure2`` / ``figure3``
    Regenerate the paper's figures from the terminal.
``stationary``
    Exact small-system analysis: detailed balance, spectral gap, mixing
    bounds.
``sweep``
    Endpoint metrics over a (λ, γ) grid, optionally fanned out over a
    process pool (``--workers N``) with per-cell checkpoints
    (``--checkpoint DIR``) and ``--resume`` for killed runs.
``render``
    Draw a saved configuration as ASCII or SVG.
``report``
    Fold a run directory's obs artifacts (metrics snapshots, JSONL
    logs, failures.json, checkpoints) into one self-contained HTML +
    markdown run report with convergence verdicts per cell.

``simulate`` and the experiment commands accept ``--kernel
auto|grid|dict|batch`` to select the chain's step kernel.  The scalar
kernels (``auto``/``grid``/``dict``) produce bit-identical
trajectories and differ only in throughput; ``batch`` is the
replica-batched NumPy kernel — statistically equivalent but on its own
RNG regime (see ``docs/performance.md``).  The experiment commands
additionally take ``--replicas-per-task N`` to cap how many replicas
share one vectorized batch task (0 = no cap), and ``figure2
--measure-every K`` switches to the dense measurement mode built on
the O(1) incremental observables.

Fault tolerance: ``--max-retries K``, ``--task-timeout SECONDS``,
``--on-failure raise|retry|quarantine``, and ``--max-pool-restarts K``
configure the engine's resilience layer (retries with deterministic
backoff, a per-cell timeout watchdog, bounded process-pool rebuilds,
and quarantine-with-``failures.json`` partial results — see
``docs/resilience.md``).  ``--state-every K`` additionally snapshots
each in-flight cell's full chain state every K iterations, so a
killed or preempted sweep resumes *mid-cell* and replays to the
bit-identical result; a SIGTERM/SIGINT drains in-flight cells to
their last durable snapshot within ``--drain-timeout`` seconds and
exits with code 75 (``EX_TEMPFAIL`` — re-run with ``--resume`` to
continue).

Output discipline: result tables go to **stdout** (so piped output
stays machine-readable); diagnostics, progress lines, and profiling
reports go to **stderr** via the structured logger and are silenced by
``--quiet``.  The observability flags — ``--log-json``,
``--metrics-out``, ``--trace-out``, ``--profile`` — export structured
run logs (JSONL), a metrics snapshot, and a Chrome/perfetto trace; see
``docs/observability.md``.  ``--diag-every K`` samples streaming
convergence diagnostics (ESS, autocorrelation time, Geweke, split R̂)
every K steps without perturbing trajectories; the verdicts land in
the metrics snapshot and the run report (``docs/convergence.md``).

Adaptive execution: ``--adaptive`` stops each cell once its streaming
diagnostics reach ``--ess-target`` (with ``--min-iterations`` as the
burn-in floor and ``--max-iterations`` as a hard cap), and
``--warm-start ladder`` seeds each (λ, γ) cell from its finished
smaller-parameter neighbor's equilibrated configuration.  Fixed-budget
execution remains the default and is bit-identical to earlier
releases; see ``docs/adaptive.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, List, Optional, Tuple

from repro.analysis.compression_metric import alpha_of
from repro.core.separation_chain import CHAIN_BACKENDS, SeparationChain
from repro.experiments.parallel import CODECS, DEFAULT_CODEC, WARM_STARTS
from repro.experiments.phases import classify_phase
from repro.experiments.render import render_ascii, render_svg
from repro.obs import (
    Instrumentation,
    JsonLogger,
    MetricsRegistry,
    ProgressReporter,
    TraceRecorder,
    run_profiled,
)
from repro.system.initializers import (
    checkerboard_system,
    hexagon_system,
    line_system,
    random_blob_system,
    separated_system,
)
from repro.util.serialization import load_configuration, save_configuration

INITIALIZERS = {
    "hexagon": hexagon_system,
    "blob": random_blob_system,
    "line": line_system,
    "separated": lambda n, seed=None: separated_system(n),
    "checkerboard": lambda n, seed=None: checkerboard_system(n),
}

#: Heartbeat interval (seconds) for long-running experiment commands.
HEARTBEAT_SECONDS = 30.0

#: Exit code of a drained (SIGTERM/SIGINT) sweep: 75 = BSD EX_TEMPFAIL,
#: the conventional "transient failure, retry later" code — schedulers
#: treat it as re-queueable rather than failed.
DRAIN_EXIT_CODE = 75


def positive_int(value: str) -> int:
    """Argparse type: a strictly positive integer.

    Rejects zero, negatives, and non-integers at parse time with a
    proper usage error instead of letting a bad ``--steps 0`` or
    ``--replicas -3`` surface as a confusing downstream exception.
    """
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if parsed <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {parsed}"
        )
    return parsed


def nonnegative_int(value: str) -> int:
    """Argparse type: an integer >= 0 (0 often means 'no cap')."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if parsed < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {parsed}"
        )
    return parsed


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared parallel-execution flags for the experiment subcommands."""
    parser.add_argument(
        "--replicas", type=positive_int, default=1,
        help="independent runs per cell (means come with _std metrics)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size; >1 selects the process backend",
    )
    parser.add_argument(
        "--backend", choices=("serial", "process"), default=None,
        help="execution backend (default: infer from --workers)",
    )
    parser.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="write one checkpoint per completed cell into DIR "
             "(format set by --checkpoint-codec)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip cells whose checkpoints already exist in --checkpoint DIR",
    )
    parser.add_argument(
        "--checkpoint-codec", choices=CODECS, default=DEFAULT_CODEC,
        dest="checkpoint_codec",
        help="worker transport and checkpoint format: 'binary' = packed "
             "columnar blobs (cell-<key>.bin, default), 'json' = legacy "
             "text files; resume reads either format and trajectories "
             "are bit-identical across codecs (see docs/performance.md)",
    )
    parser.add_argument(
        "--replicas-per-task", type=nonnegative_int, default=0,
        dest="replicas_per_task", metavar="N",
        help="with --kernel batch: cap replicas grouped into one "
             "vectorized task (0 = group a whole cell together)",
    )
    parser.add_argument(
        "--max-retries", type=nonnegative_int, default=0,
        dest="max_retries", metavar="K",
        help="re-run a failing cell up to K times (with --on-failure "
             "retry or quarantine; see docs/resilience.md)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None,
        dest="task_timeout", metavar="SECONDS",
        help="treat a cell attempt exceeding SECONDS as failed "
             "(process backend cancels/terminates the hung worker; "
             "serial backend checks after the fact)",
    )
    parser.add_argument(
        "--on-failure", choices=("raise", "retry", "quarantine"),
        default="raise", dest="on_failure",
        help="failure policy: 'raise' aborts on the first failure "
             "(default), 'retry' retries then aborts, 'quarantine' "
             "retries then records the cell in failures.json and "
             "completes the sweep with partial results",
    )
    parser.add_argument(
        "--max-pool-restarts", type=nonnegative_int, default=3,
        dest="max_pool_restarts", metavar="K",
        help="rebuild a broken process pool at most K times "
             "before giving up",
    )
    parser.add_argument(
        "--state-every", type=nonnegative_int, default=0,
        dest="state_every", metavar="K",
        help="snapshot each in-flight cell's full chain state every K "
             "iterations into --checkpoint DIR so a killed/preempted "
             "sweep resumes mid-cell with a bit-identical result "
             "(0 disables; requires --checkpoint)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        dest="drain_timeout", metavar="SECONDS",
        help="on SIGTERM/SIGINT, wait up to SECONDS for in-flight "
             "cells to reach a durable snapshot before exiting with "
             f"code {DRAIN_EXIT_CODE} (resume with --resume)",
    )
    _add_kernel_argument(parser)
    _add_adaptive_arguments(parser)


def _add_adaptive_arguments(parser: argparse.ArgumentParser) -> None:
    """Adaptive-termination and warm-start flags (docs/adaptive.md)."""
    parser.add_argument(
        "--adaptive", action="store_true",
        help="stop each cell once its streaming diagnostics reach the "
             "--ess-target (R-hat/Geweke gated) instead of burning the "
             "full fixed budget; records stop reason/ESS per cell "
             "(see docs/adaptive.md)",
    )
    parser.add_argument(
        "--ess-target", type=float, default=200.0, dest="ess_target",
        metavar="ESS",
        help="worst-stream effective sample size a cell must reach "
             "before an adaptive stop (default 200)",
    )
    parser.add_argument(
        "--rhat-max", type=float, default=1.1, dest="rhat_max",
        metavar="R",
        help="largest split/cross-replica R-hat an adaptive stop "
             "tolerates (default 1.1)",
    )
    parser.add_argument(
        "--geweke-max", type=float, default=2.0, dest="geweke_max",
        metavar="Z",
        help="largest |Geweke z| an adaptive stop tolerates — raise to "
             "stop on ESS alone when observables drift slowly "
             "(default 2)",
    )
    parser.add_argument(
        "--min-iterations", type=nonnegative_int, default=0,
        dest="min_iterations", metavar="K",
        help="burn-in floor: never stop a cell adaptively before K "
             "iterations (0 = no floor)",
    )
    parser.add_argument(
        "--max-iterations", type=nonnegative_int, default=0,
        dest="max_iterations", metavar="K",
        help="hard adaptive cap: stop at K iterations even if the "
             "target is unmet (0 = the cell's own step budget)",
    )
    parser.add_argument(
        "--warm-start", choices=WARM_STARTS, default="off",
        dest="warm_start",
        help="'ladder' runs the (lam, gamma) grid as dependency waves, "
             "seeding each cell from its finished smaller-parameter "
             "neighbor's equilibrated configuration (statistically, "
             "not bit-wise, equivalent to cold starts)",
    )


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    """The step-kernel knob (shared by simulate + experiment commands)."""
    parser.add_argument(
        "--kernel", choices=CHAIN_BACKENDS, default="auto",
        help="chain step kernel: 'grid' = flat-arena integer kernel, "
             "'dict' = historical hash-map kernel, 'auto' picks per run "
             "(these three are bit-identical); 'batch' = replica-batched "
             "NumPy kernel, statistically equivalent on its own RNG "
             "regime (see docs/performance.md)",
    )


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared observability flags (see docs/observability.md)."""
    parser.add_argument(
        "--log-json", metavar="FILE", default=None, dest="log_json",
        help="append structured JSONL run events to FILE",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None, dest="metrics_out",
        help="write a metrics-registry snapshot (counters/gauges/"
             "histograms/per-cell series) to FILE",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None, dest="trace_out",
        help="write a Chrome trace-event JSON (perfetto-viewable) to FILE",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile each cell (or run) with cProfile; report to stderr/log",
    )
    parser.add_argument(
        "--diag-every", type=nonnegative_int, default=0, dest="diag_every",
        metavar="K",
        help="sample streaming convergence diagnostics (ESS, tau, "
             "Geweke, split R-hat, stall detection) every K steps; "
             "0 disables (trajectories are bit-identical either way; "
             "see docs/convergence.md)",
    )
    _add_quiet_argument(parser)


def _add_quiet_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress stderr diagnostics and progress lines "
             "(result tables still print to stdout)",
    )


def _build_observability(
    args: argparse.Namespace,
) -> Tuple[Optional[Instrumentation], Callable[[], None]]:
    """Build the Instrumentation requested by the parsed flags.

    Returns ``(obs, finalize)``; ``finalize`` writes the metrics and
    trace files and closes the log after the command ran (including on
    error, so a crashed sweep still leaves its telemetry behind).
    """
    log_json = getattr(args, "log_json", None)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    profile = bool(getattr(args, "profile", False))
    diag_every = int(getattr(args, "diag_every", 0) or 0)
    if not (log_json or metrics_out or trace_out or profile or diag_every):
        return None, lambda: None

    logger = JsonLogger.open(log_json) if log_json else None
    metrics = MetricsRegistry() if metrics_out else None
    trace = TraceRecorder(process_name="repro") if trace_out else None
    obs = Instrumentation(
        logger=logger, metrics=metrics, trace=trace, profile=profile,
        diag_every=diag_every,
    )
    obs.log("cli.start", command=args.command, argv=sys.argv[1:])

    def finalize() -> None:
        obs.log("cli.done", command=args.command)
        if metrics is not None:
            metrics.save(metrics_out)
        if trace is not None:
            trace.save(trace_out)
        if logger is not None:
            logger.close()

    return obs, finalize


def _diag(args: argparse.Namespace, message: str, event: str = "cli.diag",
          **fields: object) -> None:
    """Emit a diagnostic: stderr unless ``--quiet``, plus the JSON log.

    Diagnostics never touch stdout — result tables own it so piped
    output stays machine-readable.
    """
    if not getattr(args, "quiet", False):
        print(message, file=sys.stderr)
    obs = getattr(args, "_obs", None)
    if obs is not None and obs.logger is not None:
        obs.logger.info(event, message=message, **fields)


def _parallel_kwargs(args: argparse.Namespace) -> dict:
    """Translate parsed parallel flags into harness keyword arguments."""
    from repro.experiments.parallel import resolve_backend
    from repro.experiments.resilience import FailurePolicy, RetryPolicy

    kwargs = {
        "replicas": args.replicas,
        "backend": resolve_backend(args.backend, args.workers),
        "workers": args.workers,
        "checkpoint_dir": args.checkpoint,
        "resume": args.resume,
        "kernel": getattr(args, "kernel", "auto"),
        "replicas_per_task": getattr(args, "replicas_per_task", 0),
        "codec": getattr(args, "checkpoint_codec", DEFAULT_CODEC),
        "retry": RetryPolicy(
            max_retries=getattr(args, "max_retries", 0),
            task_timeout=getattr(args, "task_timeout", None),
        ),
        "failure": FailurePolicy(
            mode=getattr(args, "on_failure", "raise"),
            max_pool_restarts=getattr(args, "max_pool_restarts", 3),
        ),
        "warm_start": getattr(args, "warm_start", "off"),
        "state_every": getattr(args, "state_every", 0),
        "drain_timeout": getattr(args, "drain_timeout", 30.0),
    }
    if getattr(args, "adaptive", False):
        from repro.obs import StopCondition

        kwargs["adaptive"] = StopCondition(
            ess_target=getattr(args, "ess_target", 200.0),
            rhat_max=getattr(args, "rhat_max", 1.1),
            geweke_max=getattr(args, "geweke_max", 2.0),
            min_iterations=getattr(args, "min_iterations", 0),
            max_iterations=getattr(args, "max_iterations", 0),
        )
    obs = getattr(args, "_obs", None)
    if obs is not None:
        kwargs["obs"] = obs
    if not getattr(args, "quiet", False):
        reporter = ProgressReporter()
        reporter.start_heartbeat(HEARTBEAT_SECONDS)
        args._progress = reporter
        kwargs["progress"] = reporter
    return kwargs


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Stochastic separation in self-organizing particle systems "
            "(Cannon et al.)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run the separation chain"
    )
    simulate.add_argument("-n", type=int, default=100, help="particles")
    simulate.add_argument("--lam", type=float, default=4.0, help="lambda bias")
    simulate.add_argument("--gamma", type=float, default=4.0, help="gamma bias")
    simulate.add_argument("--steps", type=positive_int, default=1_000_000)
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument(
        "--init", choices=sorted(INITIALIZERS), default="blob"
    )
    simulate.add_argument(
        "--no-swaps", action="store_true", help="disable swap moves"
    )
    simulate.add_argument(
        "--checkpoints", type=int, default=5, help="progress rows to print"
    )
    simulate.add_argument("--save", metavar="FILE", help="save final state JSON")
    simulate.add_argument(
        "--ascii", action="store_true", help="print the final configuration"
    )
    _add_kernel_argument(simulate)
    _add_observability_arguments(simulate)

    figure2 = commands.add_parser("figure2", help="regenerate Figure 2")
    figure2.add_argument("--scale", type=float, default=0.02)
    figure2.add_argument("-n", type=int, default=100)
    figure2.add_argument("--seed", type=int, default=2018)
    figure2.add_argument(
        "--measure-every", type=positive_int, default=None,
        dest="measure_every", metavar="K",
        help="dense measurement mode: sample every K steps via the O(1) "
             "incremental observables and print the trace instead of the "
             "snapshot table",
    )
    figure2.add_argument(
        "--steps", type=positive_int, default=50_000,
        help="total chain steps of the dense measurement mode "
             "(only with --measure-every)",
    )
    _add_parallel_arguments(figure2)
    _add_observability_arguments(figure2)

    figure3 = commands.add_parser("figure3", help="regenerate Figure 3")
    figure3.add_argument("--iterations", type=int, default=400_000)
    figure3.add_argument("-n", type=int, default=100)
    figure3.add_argument("--seed", type=int, default=2018)
    _add_parallel_arguments(figure3)
    _add_observability_arguments(figure3)

    stationary = commands.add_parser(
        "stationary", help="exact small-system analysis"
    )
    stationary.add_argument("-n", type=int, default=4)
    stationary.add_argument("--counts", type=int, nargs=2, default=(2, 2))
    stationary.add_argument("--lam", type=float, default=2.0)
    stationary.add_argument("--gamma", type=float, default=3.0)

    sweep = commands.add_parser("sweep", help="metrics over a (λ, γ) grid")
    sweep.add_argument(
        "--lambdas", type=float, nargs="+", default=[1.0, 2.0, 4.0]
    )
    sweep.add_argument(
        "--gammas", type=float, nargs="+", default=[1.0, 2.0, 4.0]
    )
    sweep.add_argument("--iterations", type=int, default=200_000)
    sweep.add_argument("-n", type=int, default=100)
    sweep.add_argument("--seed", type=int, default=0)
    _add_parallel_arguments(sweep)
    _add_observability_arguments(sweep)

    render = commands.add_parser("render", help="draw a saved configuration")
    render.add_argument("input", help="configuration JSON file")
    render.add_argument("--svg", metavar="FILE", help="write SVG here")
    _add_quiet_argument(render)

    report = commands.add_parser(
        "report",
        help="render a run directory's obs artifacts as one HTML+md report",
    )
    report.add_argument(
        "rundir",
        help="directory holding metrics snapshots / JSONL logs / "
             "failures.json / checkpoints (scanned recursively)",
    )
    report.add_argument(
        "--out", metavar="DIR", default=None,
        help="write report.md / report.html here (default: RUNDIR)",
    )
    report.add_argument(
        "--title", default=None, help="report title (default: RUNDIR name)"
    )
    _add_quiet_argument(report)

    illustrations = commands.add_parser(
        "illustrations", help="write the Figure 1/4 illustration SVGs"
    )
    illustrations.add_argument(
        "outdir", nargs="?", default="illustrations",
        help="output directory (default: ./illustrations)",
    )
    _add_quiet_argument(illustrations)

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    initializer = INITIALIZERS[args.init]
    system = initializer(args.n, seed=args.seed)
    chain = SeparationChain(
        system,
        lam=args.lam,
        gamma=args.gamma,
        swaps=not args.no_swaps,
        seed=args.seed,
        backend=args.kernel,
    )
    obs = getattr(args, "_obs", None)
    diag = None
    if obs is not None:
        if obs.diag_every > 0:
            from repro.obs.convergence import (
                ChainDiagnostics,
                DiagnosticsConfig,
            )

            diag = ChainDiagnostics(
                DiagnosticsConfig(stride=obs.diag_every), label="simulate"
            )
        chain.instrument(obs, diagnostics=diag)
    _diag(
        args,
        f"n={args.n} lam={args.lam} gamma={args.gamma} "
        f"swaps={not args.no_swaps} init={args.init}",
        event="simulate.start",
        n=args.n,
        lam=args.lam,
        gamma=args.gamma,
        swaps=not args.no_swaps,
        init=args.init,
        steps=args.steps,
    )
    header = (
        f"{'iteration':>12}  {'perimeter':>9}  {'alpha':>6}  "
        f"{'hetero':>6}  phase"
    )
    print(header)
    checkpoints = max(1, args.checkpoints)
    block = args.steps // checkpoints

    def run_blocks() -> None:
        for i in range(checkpoints):
            chain.run(block if i < checkpoints - 1 else args.steps - block * i)
            print(
                f"{chain.iterations:>12,}  {system.perimeter():>9}  "
                f"{alpha_of(system):>6.2f}  {system.hetero_total:>6}  "
                f"{classify_phase(system)}"
            )

    if getattr(args, "profile", False):
        _, profile_text = run_profiled(run_blocks)
        if obs is not None and obs.logger is not None:
            obs.logger.info("simulate.profile", profile=profile_text)
        if not args.quiet:
            sys.stderr.write(profile_text)
    else:
        run_blocks()
    rate = chain.acceptance_rate()
    rate_text = "n/a" if rate != rate else f"{rate:.3f}"  # NaN: never ran
    _diag(
        args,
        f"acceptance rate: {rate_text}",
        event="simulate.done",
        acceptance_rate=None if rate != rate else rate,
        iterations=chain.iterations,
    )
    if diag is not None:
        verdict = diag.summary()
        ess = verdict.get("ess")
        ess_text = "n/a" if ess is None else f"{ess:.1f}"
        _diag(
            args,
            f"convergence: converged={verdict['converged']} "
            f"stalled={verdict['stalled']} ESS={ess_text} "
            f"(threshold {verdict['ess_min']:g})",
            event="simulate.convergence",
            **{k: verdict[k] for k in ("converged", "stalled", "samples")},
        )
    if args.ascii:
        print()
        print(render_ascii(system))
    if args.save:
        save_configuration(system, args.save)
        _diag(
            args,
            f"saved final configuration to {args.save}",
            event="simulate.saved",
            path=args.save,
        )
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.experiments.figure2 import run_figure2

    if args.measure_every is not None:
        return _cmd_figure2_measure(args)
    result = run_figure2(
        n=args.n, scale=args.scale, seed=args.seed, **_parallel_kwargs(args)
    )
    print(result.summary_table())
    print()
    print(result.snapshots[-1])
    return 0


def _cmd_figure2_measure(args: argparse.Namespace) -> int:
    """``figure2 --measure-every K``: dense incremental-observable trace."""
    from repro.experiments.figure2 import measure_figure2

    trace = measure_figure2(
        n=args.n,
        steps=args.steps,
        measure_every=args.measure_every,
        seed=args.seed,
        replicas=args.replicas,
        kernel=getattr(args, "kernel", "auto"),
        obs=getattr(args, "_obs", None),
    )
    _diag(
        args,
        f"measured {len(trace.rows)} rows "
        f"(every {trace.measure_every} of {trace.steps} steps, "
        f"{trace.replicas} replica(s)) in {trace.wall_time:.2f}s",
        event="figure2.measure.summary",
        rows=len(trace.rows),
        wall_time=trace.wall_time,
    )
    print(
        f"{'iteration':>12}  {'perimeter':>9}  {'alpha':>6}  "
        f"{'hetero':>6}  {'h/e':>6}"
    )
    for row in trace.rows:
        print(
            f"{int(row['iteration']):>12,}  {row['perimeter']:>9.1f}  "
            f"{row['alpha']:>6.2f}  {row['hetero_edges']:>6.1f}  "
            f"{row['hetero_density']:>6.3f}"
        )
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    from repro.experiments.figure3 import run_figure3

    result = run_figure3(
        n=args.n,
        iterations=args.iterations,
        seed=args.seed,
        **_parallel_kwargs(args),
    )
    print(result.grid_table())
    return 0


def _cmd_stationary(args: argparse.Namespace) -> int:
    from repro.markov.exact import ExactChainAnalysis
    from repro.markov.spectral import spectral_summary

    analysis = ExactChainAnalysis(
        args.n, list(args.counts), lam=args.lam, gamma=args.gamma
    )
    summary = spectral_summary(analysis)
    print(f"state space: {len(analysis.states)} configurations")
    print(f"detailed balance max error: {analysis.detailed_balance_error():.2e}")
    print(f"spectral gap: {summary.spectral_gap:.6f}")
    print(f"relaxation time: {summary.relaxation_time:.1f} steps")
    print(f"mixing time (TV < 1/4) <= {summary.mixing_time_bound:.0f} steps")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import grid, run_sweep

    points = run_sweep(
        grid(args.lambdas, args.gammas),
        metrics={
            "alpha": alpha_of,
            "hetero_density": lambda s: (
                s.hetero_total / s.edge_total if s.edge_total else 0.0
            ),
        },
        n=args.n,
        iterations=args.iterations,
        seed=args.seed,
        **_parallel_kwargs(args),
    )
    with_spread = args.replicas > 1
    with_diag = any(point.diagnostics for point in points)
    spread = "  alpha_sd  h/e_sd" if with_spread else ""
    diag_head = "  " + f"{'ess':>8}  {'conv':>4}" if with_diag else ""
    print(
        f"{'lambda':>7}  {'gamma':>7}  {'alpha':>6}  {'h/e':>6}"
        f"{spread}{diag_head}  phase"
    )
    for point in points:
        phase = (
            classify_phase(point.system)
            if point.system is not None
            else "failed"  # every replica quarantined (--on-failure)
        )
        columns = (
            f"{point.params['lam']:>7.2f}  {point.params['gamma']:>7.2f}  "
            f"{_num(point.metrics['alpha'], 6, 2)}  "
            f"{_num(point.metrics['hetero_density'], 6, 3)}"
        )
        if with_spread:
            columns += (
                f"  {_num(point.metrics['alpha_std'], 8, 2)}"
                f"  {_num(point.metrics['hetero_density_std'], 6, 3)}"
            )
        if with_diag:
            diag = point.diagnostics or {}
            ess = diag.get("min_ess")
            conv = "n/a" if not diag else ("yes" if diag.get("converged")
                                           else "no")
            columns += f"  {_num(ess, 8, 1)}  {conv:>4}"
        print(f"{columns}  {phase}")
    return 0


def _num(value: Optional[float], width: int, digits: int) -> str:
    """Fixed-width number for result tables; ``n/a`` for NaN/None.

    A cell whose replicas were all quarantined has *no* measurement —
    printing ``nan`` there reads like a computed value (the FailedCell
    convention; see docs/resilience.md).
    """
    if value is None or value != value:
        return "n/a".rjust(width)
    return f"{value:>{width}.{digits}f}"


def _cmd_render(args: argparse.Namespace) -> int:
    system = load_configuration(args.input)
    print(render_ascii(system))
    if args.svg:
        render_svg(system, args.svg)
        _diag(args, f"wrote {args.svg}", event="render.wrote", path=args.svg)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import collect_run, render_html, render_markdown
    from pathlib import Path

    try:
        report = collect_run(args.rundir, title=args.title)
    except FileNotFoundError as error:
        print(f"repro report: {error}", file=sys.stderr)
        return 2
    target = Path(args.out) if args.out else Path(args.rundir)
    target.mkdir(parents=True, exist_ok=True)
    md_path = target / "report.md"
    html_path = target / "report.html"
    md_path.write_text(render_markdown(report), encoding="utf-8")
    html_path.write_text(render_html(report), encoding="utf-8")
    _diag(
        args,
        f"report: {len(report.metrics_files)} metrics file(s), "
        f"{len(report.event_files)} log(s), {len(report.failures)} "
        f"quarantined cell(s), {len(report.checkpoints)} checkpoint(s)",
        event="report.collected",
        rundir=str(args.rundir),
    )
    print(md_path)
    print(html_path)
    return 0


def _cmd_illustrations(args: argparse.Namespace) -> int:
    from repro.experiments.figure1 import write_illustrations

    for path in write_illustrations(args.outdir):
        _diag(args, f"wrote {path}", event="illustrations.wrote", path=str(path))
    return 0


_HANDLERS = {
    "simulate": _cmd_simulate,
    "figure2": _cmd_figure2,
    "figure3": _cmd_figure3,
    "stationary": _cmd_stationary,
    "sweep": _cmd_sweep,
    "render": _cmd_render,
    "report": _cmd_report,
    "illustrations": _cmd_illustrations,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Observability (``--log-json``/``--metrics-out``/``--trace-out``) is
    finalized in a ``finally`` block, so even a failing command leaves
    its structured log, metrics snapshot, and trace file behind.

    A drained run (SIGTERM/SIGINT with in-flight cells parked on their
    durable snapshots) exits with :data:`DRAIN_EXIT_CODE` so schedulers
    can distinguish "preempted, re-run with ``--resume``" from success
    and from hard failure.
    """
    from repro.experiments.resilience import DrainInterrupt

    args = build_parser().parse_args(argv)
    obs, finalize = _build_observability(args)
    args._obs = obs
    args._progress = None
    try:
        return _HANDLERS[args.command](args)
    except DrainInterrupt as drain:
        print(
            f"repro: drained {len(drain.pending)} in-flight cell(s) to "
            f"their last durable snapshot; re-run with --resume to "
            f"continue",
            file=sys.stderr,
        )
        return DRAIN_EXIT_CODE
    finally:
        reporter = getattr(args, "_progress", None)
        if reporter is not None:
            reporter.stop()
        finalize()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
