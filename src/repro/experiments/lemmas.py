"""Executable checks of the paper's combinatorial lemmas (E6).

* **Lemma 1** ([CannonDRR16] Lemma 4.3): for any :math:`\\nu > 2+\\sqrt2`
  and large enough ``n``, the number of connected hole-free configurations
  with ``n`` particles and perimeter ``k`` is at most :math:`\\nu^k`.  We
  count exactly by exhaustive enumeration for small ``n`` and compare.
* **Lemma 2**: :math:`p_{min}(n) \\le 2\\sqrt3\\sqrt{n}`, witnessed by the
  hexagon-plus-layer construction — checked both against the closed-form
  minimum and against the actual constructed configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.compression_metric import lemma2_upper_bound, minimum_perimeter
from repro.lattice.boundary import perimeter_from_edges
from repro.lattice.geometry import hexagon
from repro.lattice.triangular import edges_of
from repro.markov.enumerate_configs import enumerate_animals
from repro.system.configuration import ParticleSystem


def perimeter_census(n: int) -> Dict[int, int]:
    """Exact count of connected hole-free ``n``-particle configurations
    by perimeter (up to translation)."""
    census: Dict[int, int] = {}
    for animal in enumerate_animals(n, hole_free_only=True):
        p = perimeter_from_edges(n, len(edges_of(animal)))
        census[p] = census.get(p, 0) + 1
    return census


@dataclass
class Lemma1Check:
    """Result of comparing the exact census against the ν^k bound."""

    n: int
    nu: float
    census: Dict[int, int]
    violations: List[int]

    @property
    def holds(self) -> bool:
        """Whether count(perimeter = k) <= ν^k for every k."""
        return not self.violations


def check_lemma1_counting_bound(n: int, nu: float) -> Lemma1Check:
    """Verify Lemma 1's bound exactly for a small ``n``.

    Lemma 1 is asymptotic ("for all n >= n_1(ν)"), so small-``n``
    violations for ν barely above :math:`2+\\sqrt2` are legitimate; the
    benchmark reports at which ν the bound already holds at small ``n``.
    """
    if nu <= 0:
        raise ValueError(f"nu must be positive, got {nu}")
    census = perimeter_census(n)
    violations = [k for k, count in census.items() if count > nu**k]
    return Lemma1Check(n=n, nu=nu, census=census, violations=violations)


@dataclass
class Lemma2Check:
    """Result of validating the constructive perimeter bound at one n."""

    n: int
    constructed_perimeter: int
    minimum: int
    bound: float

    @property
    def holds(self) -> bool:
        """Construction within the bound, and never below the true minimum."""
        return (
            self.minimum <= self.constructed_perimeter <= self.bound
        )


def check_lemma2_constructive_bound(n: int) -> Lemma2Check:
    """Build the Lemma 2 hexagon configuration and measure it."""
    nodes = hexagon(n)
    system = ParticleSystem.from_nodes(nodes, [0] * n, num_colors=2)
    if system.has_holes() or not system.is_connected():
        raise AssertionError(f"hexagon construction invalid at n={n}")
    return Lemma2Check(
        n=n,
        constructed_perimeter=system.perimeter(),
        minimum=minimum_perimeter(n),
        bound=lemma2_upper_bound(n),
    )


def smallest_valid_nu(n: int, precision: float = 0.01) -> float:
    """Smallest ν (to ``precision``) whose bound holds at this exact ``n``.

    Quantifies how much slack Lemma 1's asymptotic constant
    :math:`2+\\sqrt2 \\approx 3.41` has at small ``n``.
    """
    census = perimeter_census(n)
    nu = max(
        count ** (1.0 / k) for k, count in census.items() if k > 0
    )
    return math.ceil(nu / precision) * precision
