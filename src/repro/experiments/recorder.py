"""Time-series recording for chain runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.markov.chain import MarkovChainProtocol
from repro.system.configuration import ParticleSystem


@dataclass
class RunRecorder:
    """Collects named observables of a particle system over a run.

    Observables are functions of the system; :meth:`record` evaluates all
    of them and appends a row.  Rows are plain dictionaries so harnesses
    can print or serialize them without ceremony.
    """

    observables: Dict[str, Callable[[ParticleSystem], float]]
    rows: List[Dict[str, float]] = field(default_factory=list)

    def record(self, iteration: int, system: ParticleSystem) -> Dict[str, float]:
        """Measure every observable now and append the row."""
        row: Dict[str, float] = {"iteration": float(iteration)}
        for name, fn in self.observables.items():
            row[name] = float(fn(system))
        self.rows.append(row)
        return row

    def series(self, name: str) -> List[float]:
        """The time series of one observable (or of ``iteration``).

        The name is validated against the *declared* observables, so an
        unknown name raises ``KeyError`` whether or not any row has
        been recorded yet — an empty recorder used to return ``[]`` for
        arbitrary names, silently hiding typos until data arrived.
        """
        if name != "iteration" and name not in self.observables:
            raise KeyError(f"unknown observable {name!r}")
        return [row[name] for row in self.rows]

    def last(self) -> Dict[str, float]:
        """The most recent row."""
        if not self.rows:
            raise IndexError("no rows recorded")
        return self.rows[-1]

    def as_table(self, float_format: str = "{:.3f}") -> str:
        """Fixed-width text table of all rows (for harness output)."""
        if not self.rows:
            return "(no rows)"
        names = list(self.rows[0])
        widths = {
            name: max(len(name), 12 if name != "iteration" else 12)
            for name in names
        }
        header = "  ".join(name.rjust(widths[name]) for name in names)
        lines = [header, "-" * len(header)]
        for row in self.rows:
            cells = []
            for name in names:
                value = row[name]
                if name == "iteration":
                    cells.append(f"{int(value):>12d}")
                else:
                    cells.append(float_format.format(value).rjust(widths[name]))
            lines.append("  ".join(cells))
        return "\n".join(lines)


def record_during_run(
    chain: MarkovChainProtocol,
    system: ParticleSystem,
    recorder: RunRecorder,
    checkpoints: Sequence[int],
    start_iteration: Optional[int] = None,
) -> RunRecorder:
    """Run ``chain`` pausing at each checkpoint to record.

    ``checkpoints`` are absolute iteration counts (ascending).  If the
    first checkpoint is 0 (or equals the chain's current count), the
    initial state is recorded before any step.
    """
    current = chain.iterations if start_iteration is None else start_iteration
    previous = current - 1
    for checkpoint in checkpoints:
        if checkpoint < current:
            raise ValueError(
                f"checkpoints must be ascending and >= {current}; "
                f"got {checkpoint} after {previous}"
            )
        chain.run(checkpoint - current)
        current = checkpoint
        previous = checkpoint
        recorder.record(checkpoint, system)
    return recorder
