"""Experiment harness: regenerators for the paper's figures and lemmas.

* :mod:`repro.experiments.figure2` — time evolution at λ = γ = 4 (E1).
* :mod:`repro.experiments.figure3` — the (λ, γ) phase grid (E2).
* :mod:`repro.experiments.phases` — the four-phase classifier
  (compressed/expanded × separated/integrated).
* :mod:`repro.experiments.lemmas` — executable checks of Lemmas 1 and 2.
* :mod:`repro.experiments.sweep` — generic parameter sweeps.
* :mod:`repro.experiments.parallel` — process-pool execution backend
  with per-cell checkpointing and resume.
* :mod:`repro.experiments.recorder` — time-series recording.
* :mod:`repro.experiments.render` — ASCII and SVG configuration renders.
"""

from repro.experiments.parallel import (
    BatchRunner,
    CellResult,
    CellTask,
    dispatch_cells,
    execute_cells,
    resolve_backend,
    run_batch_group,
    run_cell,
)
from repro.experiments.phases import PhaseThresholds, classify_phase
from repro.experiments.recorder import RunRecorder
from repro.experiments.render import render_ascii, render_svg
from repro.experiments.figure2 import (
    Figure2Result,
    Figure2Trace,
    measure_figure2,
    run_figure2,
)
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.sweep import SweepPoint, run_sweep
from repro.experiments.lemmas import (
    check_lemma1_counting_bound,
    check_lemma2_constructive_bound,
)
from repro.experiments.scaling import (
    interface_scaling_exponent,
    scaling_study,
    scaling_table,
)

__all__ = [
    "BatchRunner",
    "CellResult",
    "CellTask",
    "dispatch_cells",
    "execute_cells",
    "resolve_backend",
    "run_batch_group",
    "run_cell",
    "classify_phase",
    "PhaseThresholds",
    "RunRecorder",
    "render_ascii",
    "render_svg",
    "run_figure2",
    "Figure2Result",
    "measure_figure2",
    "Figure2Trace",
    "run_figure3",
    "Figure3Result",
    "run_sweep",
    "SweepPoint",
    "check_lemma1_counting_bound",
    "check_lemma2_constructive_bound",
    "scaling_study",
    "scaling_table",
    "interface_scaling_exponent",
]
