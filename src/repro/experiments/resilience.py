"""Fault-tolerant execution for the sweep engine.

The paper's quantitative results come from thousand-cell sweeps fanned
out over a process pool; a single worker failure used to abort the
whole sweep and lose every in-flight cell.  The amoebot model itself
assumes progress despite unreliable local activations (Cannon et al.,
arXiv:1805.04599), so the engine that reproduces it should be at least
as robust as the system it simulates.  This module supplies the
resilience layer :mod:`repro.experiments.parallel` threads through both
the scalar engine and the batch runner:

* :class:`RetryPolicy` — how often and how eagerly a failing cell is
  re-attempted: retry budget, exponential backoff with *deterministic*
  jitter (derived from the cell key, so reruns behave identically), and
  an optional per-task timeout watchdog.
* :class:`FailurePolicy` — what happens when the budget is exhausted:
  ``"raise"`` (fail fast, the historical behavior and the default),
  ``"retry"`` (retry then raise), or ``"quarantine"`` (record a
  :class:`FailedCell` placeholder plus a ``failures.json`` manifest and
  let the sweep complete with partial results; ``--resume`` then
  recomputes only the quarantined cells).
* :class:`ResilientExecutor` — the execution loop shared by both
  engines.  The serial path retries in place (its timeout is a
  *post-hoc* watchdog: an in-process cell cannot be preempted, but an
  overlong one is still treated as failed and retried).  The process
  path tracks per-future deadlines, rebuilds a broken pool a bounded
  number of times (``BrokenProcessPool`` — e.g. an OOM-killed worker —
  costs a pool restart, not a task retry: every unfinished task is
  simply resubmitted, finished cells are already checkpointed), and
  terminates hung workers when a timeout fires so their slots are
  reclaimed.
* Fault injection — env- or payload-driven ``crash`` / ``exit`` /
  ``hang`` / ``corrupt`` / ``truncate`` faults (the execution-engine
  cousin of the crash-stop particles in
  :mod:`repro.distributed.faults`), with a filesystem ledger so "fail
  the first k attempts" stays deterministic across processes and pool
  rebuilds.  This is what makes the layer testable: the chaos suite
  asserts that surviving cells are bit-identical to a clean run.
* Graceful shutdown & liveness — a process-wide drain flag set by
  SIGTERM/SIGINT (:func:`install_drain_handlers`) stops dispatch,
  gives in-flight cells ``drain_timeout`` seconds to finish or stop at
  a durable state snapshot, and raises :class:`DrainInterrupt` with
  the still-pending keys (persisted as a resumable ``drain.json``
  manifest); per-unit heartbeat files let the supervisor distinguish
  live-but-slow cells from silently dead ones.

Because a retried task re-runs the *identical* payload with the
identical derived seed, retries never perturb trajectories: a sweep
that limps through crashes produces exactly the results of an
undisturbed one.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Failure dispositions understood by :class:`FailurePolicy`.
FAILURE_MODES = ("raise", "retry", "quarantine")

#: Environment variable carrying a fault spec (inline JSON or a path to
#: a JSON file); read by workers, so it reaches forked pool processes.
FAULT_ENV = "REPRO_FAULT_SPEC"

#: Name of the quarantine manifest written into the checkpoint dir.
FAILURES_MANIFEST = "failures.json"

#: Schema version of the failures manifest payload.
FAILURES_MANIFEST_VERSION = 1

#: Name of the resumable drain manifest written on graceful shutdown.
DRAIN_MANIFEST = "drain.json"

#: Schema version of the drain manifest payload.
DRAIN_MANIFEST_VERSION = 1


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------


class TaskTimeoutError(RuntimeError):
    """A cell exceeded the policy's per-task timeout."""


class ResultValidationError(ValueError):
    """A worker returned a malformed or corrupted result payload."""


class InjectedFault(RuntimeError):
    """Raised by the fault-injection hook's ``crash`` mode."""


class CellFailedError(RuntimeError):
    """A cell exhausted its retry budget under a non-quarantine policy."""


class PoolRestartsExhausted(RuntimeError):
    """The process pool broke more times than the policy allows."""


class DrainRequested(RuntimeError):
    """Raised inside a worker when a drain was requested mid-cell.

    The cell stopped at its last *durable* state snapshot, so nothing
    is lost: a resumed sweep warm-restores from that snapshot.  The
    executor treats this as "still pending", never as a task failure.
    """


class DrainInterrupt(RuntimeError):
    """The sweep stopped early on a graceful-shutdown request.

    ``pending`` carries the keys of every unit that did not commit a
    final checkpoint; the engine records them in the ``drain.json``
    manifest so ``--resume`` knows the interruption was deliberate.
    """

    def __init__(self, message: str, pending: Sequence[str] = ()):
        super().__init__(message)
        self.pending: List[str] = list(pending)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How failing cells are re-attempted.

    ``max_retries`` counts *additional* attempts after the first (0 = no
    retries).  ``task_timeout`` is a per-task watchdog in seconds
    (``None`` disables it); on the process backend an expired task's
    worker is terminated and the task retried, on the serial backend
    the check is post-hoc (the cell cannot be preempted in-process but
    still counts as failed).  Backoff before attempt ``k+1`` is
    ``backoff_base * backoff_factor**(k-1)`` capped at ``backoff_max``,
    scaled by a deterministic jitter in [0.5, 1.0] derived from the
    cell key — reruns of the same sweep back off identically.
    """

    max_retries: int = 0
    task_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < self.backoff_base:
            raise ValueError(
                f"backoff_max {self.backoff_max} is below "
                f"backoff_base {self.backoff_base}"
            )

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff (seconds) before re-attempting after failure ``attempt``.

        Deterministic: the jitter comes from a digest of ``token`` (the
        cell key) and the attempt number, not from global RNG state —
        injecting faults or retrying never perturbs any simulation
        stream, and identical reruns produce identical schedules.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.backoff_max,
            self.backoff_base * (self.backoff_factor ** (attempt - 1)),
        )
        digest = hashlib.sha256(f"{token}|{attempt}".encode()).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return base * (0.5 + 0.5 * jitter)


@dataclass(frozen=True)
class FailurePolicy:
    """What a cell failure does to the sweep.

    ``mode``:

    * ``"raise"`` — fail fast on the first error (no retries; the
      historical behavior and the default);
    * ``"retry"`` — consume the :class:`RetryPolicy` budget, then raise
      :class:`CellFailedError`;
    * ``"quarantine"`` — consume the budget, then record a
      :class:`FailedCell` placeholder and a ``failures.json`` manifest
      so the sweep completes with partial results.

    ``max_pool_restarts`` bounds how many times a broken process pool
    is rebuilt before giving up with :class:`PoolRestartsExhausted`
    (pool breaks are counted separately from per-task retries: a dying
    worker takes innocent in-flight tasks with it, so those are
    resubmitted without charging their retry budgets).
    """

    mode: str = "raise"
    max_pool_restarts: int = 3

    def validate(self) -> None:
        if self.mode not in FAILURE_MODES:
            raise ValueError(
                f"unknown failure mode {self.mode!r}; "
                f"expected one of {FAILURE_MODES}"
            )
        if self.max_pool_restarts < 0:
            raise ValueError(
                f"max_pool_restarts must be >= 0, "
                f"got {self.max_pool_restarts}"
            )

    @property
    def retries_enabled(self) -> bool:
        return self.mode in ("retry", "quarantine")


# ---------------------------------------------------------------------------
# Failure records
# ---------------------------------------------------------------------------


@dataclass
class TaskFailure:
    """One exhausted cell, as recorded in the ``failures.json`` manifest."""

    key: str
    label: str
    lam: float
    gamma: float
    replica: int
    seed: int
    error: str
    kind: str  # "exception" | "timeout" | "validation"
    attempts: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "label": self.label,
            "lam": self.lam,
            "gamma": self.gamma,
            "replica": self.replica,
            "seed": self.seed,
            "error": self.error,
            "kind": self.kind,
            "attempts": self.attempts,
        }


@dataclass
class FailedCell:
    """Quarantine placeholder standing in for a :class:`CellResult`.

    Duck-types the result attributes aggregation code touches
    (``system`` is ``None``, counters zero, ``snapshots`` empty) and
    carries the failure description.  ``failed`` is the discriminator:
    real results expose ``failed = False``.
    """

    task: Any
    error: str
    kind: str
    attempts: int
    system: Any = None
    snapshots: List[Any] = field(default_factory=list)
    iterations: int = 0
    accepted_moves: int = 0
    accepted_swaps: int = 0
    from_checkpoint: bool = False
    wall_time: float = 0.0
    profile: Optional[str] = None
    diag: Optional[dict] = None
    failed: bool = True


def is_failed(result: Any) -> bool:
    """Whether a result slot is a quarantine placeholder."""
    return bool(getattr(result, "failed", False))


def surviving(results: Sequence[Any]) -> List[Any]:
    """The non-quarantined results, in order."""
    return [result for result in results if not is_failed(result)]


# ---------------------------------------------------------------------------
# failures.json manifest
# ---------------------------------------------------------------------------


def failures_manifest_path(directory: os.PathLike) -> Path:
    """Location of the quarantine manifest inside a checkpoint dir."""
    return Path(directory) / FAILURES_MANIFEST


def write_failures_manifest(
    directory: os.PathLike, failures: Sequence[TaskFailure]
) -> Path:
    """Atomically write the quarantine manifest for ``failures``."""
    from repro.util.serialization import save_payload

    path = failures_manifest_path(directory)
    save_payload(
        {
            "version": FAILURES_MANIFEST_VERSION,
            "count": len(failures),
            "failures": [failure.to_json() for failure in failures],
        },
        path,
    )
    return path


def load_failures_manifest(directory: os.PathLike) -> List[Dict[str, Any]]:
    """Read the manifest's failure records (empty list if absent)."""
    from repro.util.serialization import load_payload

    path = failures_manifest_path(directory)
    if not path.exists():
        return []
    payload = load_payload(path)
    if payload.get("version") != FAILURES_MANIFEST_VERSION:
        raise ValueError(
            f"failures manifest version {payload.get('version')!r} unsupported"
        )
    return list(payload.get("failures", []))


def clear_failures_manifest(directory: os.PathLike) -> None:
    """Remove a stale manifest (a fully successful rerun clears it)."""
    path = failures_manifest_path(directory)
    try:
        path.unlink()
    except FileNotFoundError:
        pass


# ---------------------------------------------------------------------------
# Graceful shutdown (drain)
# ---------------------------------------------------------------------------

#: Process-wide drain flag.  Set by the SIGTERM/SIGINT handlers in the
#: parent; pool children forked *after* the handlers were installed
#: inherit the handler and set their own copy, which is exactly what a
#: worker's snapshot hook polls to stop at a durable boundary.
_DRAIN_EVENT = threading.Event()


def drain_event() -> threading.Event:
    """The process-wide drain event (for wiring into executors)."""
    return _DRAIN_EVENT


def drain_requested() -> bool:
    """Whether a graceful shutdown has been requested in this process."""
    return _DRAIN_EVENT.is_set()


def request_drain() -> None:
    """Programmatically request a drain (what the signal handler does)."""
    _DRAIN_EVENT.set()


def reset_drain() -> None:
    """Clear the drain flag (call before starting a new sweep)."""
    _DRAIN_EVENT.clear()


def _drain_signal_handler(signum, frame) -> None:
    if _DRAIN_EVENT.is_set() and signum == signal.SIGINT:
        # A second Ctrl-C means "stop waiting": fall back to the
        # ordinary KeyboardInterrupt abort path.
        raise KeyboardInterrupt
    _DRAIN_EVENT.set()


def install_drain_handlers() -> List[Tuple[int, Any]]:
    """Install SIGTERM/SIGINT drain handlers (main thread only).

    Returns the ``(signum, previous_handler)`` pairs actually
    installed, for :func:`restore_drain_handlers`.  Off the main
    thread (or on platforms without the signals) this is a no-op —
    graceful shutdown degrades to the ordinary abort path rather than
    failing the sweep.
    """
    installed: List[Tuple[int, Any]] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            installed.append(
                (signum, signal.signal(signum, _drain_signal_handler))
            )
        except (ValueError, OSError, RuntimeError):
            continue
    return installed


def restore_drain_handlers(installed: Sequence[Tuple[int, Any]]) -> None:
    """Undo :func:`install_drain_handlers`."""
    for signum, previous in installed:
        try:
            signal.signal(signum, previous)
        except (ValueError, OSError, RuntimeError, TypeError):
            continue


def drain_manifest_path(directory: os.PathLike) -> Path:
    """Location of the drain manifest inside a checkpoint dir."""
    return Path(directory) / DRAIN_MANIFEST


def write_drain_manifest(
    directory: os.PathLike,
    pending: Sequence[str],
    completed: int,
    reason: str = "signal",
) -> Path:
    """Atomically write the resumable drain manifest."""
    from repro.util.serialization import save_payload

    path = drain_manifest_path(directory)
    save_payload(
        {
            "version": DRAIN_MANIFEST_VERSION,
            "reason": reason,
            "completed": int(completed),
            "pending": list(pending),
        },
        path,
    )
    return path


def load_drain_manifest(directory: os.PathLike) -> Optional[Dict[str, Any]]:
    """Read the drain manifest (``None`` if absent)."""
    from repro.util.serialization import load_payload

    path = drain_manifest_path(directory)
    if not path.exists():
        return None
    payload = load_payload(path)
    if payload.get("version") != DRAIN_MANIFEST_VERSION:
        raise ValueError(
            f"drain manifest version {payload.get('version')!r} unsupported"
        )
    return payload


def clear_drain_manifest(directory: os.PathLike) -> None:
    """Remove the drain manifest (a completed resume clears it)."""
    path = drain_manifest_path(directory)
    try:
        path.unlink()
    except FileNotFoundError:
        pass


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

#: Fault modes the worker-side hook understands.
FAULT_MODES = (
    "crash",
    "exit",
    "hang",
    "corrupt",
    "truncate",
    "sigkill",
    "preempt",
)

#: In-process fallback ledger (used when a rule has no ``dir``); the
#: lock keeps it safe under the serial backend's potential reentrancy.
_LOCAL_LEDGER: Dict[Tuple[str, str], int] = {}
_LOCAL_LEDGER_LOCK = threading.Lock()


def resolve_fault_spec(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The fault rules applying to a worker payload.

    Payload-driven injection (an engine-side ``fault`` key) wins;
    otherwise :data:`FAULT_ENV` is consulted — either inline JSON or a
    path to a JSON file.  The spec is one rule object or a list of
    rules; an unreadable spec disables injection rather than failing
    real work.
    """
    spec: Any = payload.get("fault")
    if spec is None:
        raw = os.environ.get(FAULT_ENV, "").strip()
        if not raw:
            return []
        try:
            if raw.startswith("{") or raw.startswith("["):
                spec = json.loads(raw)
            else:
                spec = json.loads(Path(raw).read_text())
        except (OSError, ValueError):
            return []
    if isinstance(spec, dict):
        spec = [spec]
    if not isinstance(spec, list):
        return []
    return [rule for rule in spec if isinstance(rule, dict)]


def _rule_matches(rule: Dict[str, Any], key: str, label: str) -> bool:
    pattern = str(rule.get("match", "*"))
    return pattern == "*" or pattern in key or pattern in label


def _claim_fault(rule: Dict[str, Any], key: str) -> bool:
    """Atomically claim one injection slot for ``key`` under ``rule``.

    With a ledger ``dir`` the claim is an ``O_EXCL`` marker file, so
    "inject the first ``times`` attempts" holds across processes,
    retries, and pool rebuilds.  Without a dir a process-local counter
    is used (sufficient for the serial backend).
    """
    times = int(rule.get("times", 1))
    if times <= 0:
        return False
    mode = str(rule.get("mode", ""))
    directory = rule.get("dir")
    if directory:
        ledger = Path(directory)
        ledger.mkdir(parents=True, exist_ok=True)
        for slot in range(times):
            marker = ledger / f"fault-{mode}-{key}-{slot}"
            try:
                with open(marker, "x"):
                    return True
            except FileExistsError:
                continue
        return False
    with _LOCAL_LEDGER_LOCK:
        used = _LOCAL_LEDGER.get((mode, key), 0)
        if used >= times:
            return False
        _LOCAL_LEDGER[(mode, key)] = used + 1
        return True


def plan_fault(
    payload: Dict[str, Any], key: str, label: str = ""
) -> Optional[Dict[str, Any]]:
    """The fault rule (if any) claimed for this execution of ``key``.

    Call once per worker invocation *before* doing real work; the
    returned rule is the single claimed injection (first matching rule
    with budget wins).
    """
    for rule in resolve_fault_spec(payload):
        if str(rule.get("mode", "")) not in FAULT_MODES:
            continue
        if not _rule_matches(rule, key, label):
            continue
        if _claim_fault(rule, key):
            return rule
    return None


def fault_after_snapshots(rule: Optional[Dict[str, Any]]) -> int:
    """How many durable state snapshots must land before the rule fires.

    ``0`` (the default) means the fault is preemptive — injected before
    any real work.  A positive value defers injection to the worker's
    snapshot hook, which calls :func:`fire_fault` after the n-th
    durable snapshot — the deterministic way to exercise warm restarts
    ("die *with* resumable state on disk").
    """
    if rule is None:
        return 0
    try:
        return max(0, int(rule.get("after_snapshots", 0)))
    except (TypeError, ValueError):
        return 0


def fire_fault(rule: Optional[Dict[str, Any]]) -> None:
    """Fire a claimed process-level fault rule at its trigger point.

    ``exit`` hard-kills the worker (``os._exit``) and ``sigkill``
    delivers an uncatchable SIGKILL — both provoke a
    ``BrokenProcessPool`` in the parent; in the main process (serial
    backend) they degrade to a ``crash`` so fault-specced serial runs
    don't kill the caller.  ``preempt`` delivers SIGTERM to the worker:
    with the default disposition the process dies on the spot, but a
    pool forked *after* :func:`install_drain_handlers` inherits the
    drain handler, so the signal instead sets the child-local drain
    flag and the cell stops at its next durable snapshot
    (:class:`DrainRequested`) — exactly a preemption notice.  In the
    main process ``preempt`` simply requests a drain.  ``hang`` sleeps
    ``hang_seconds`` and then lets the cell proceed; the engine's
    timeout watchdog is expected to have disposed of it by then.
    """
    if rule is None:
        return
    mode = rule["mode"]
    if mode == "crash":
        raise InjectedFault(
            f"injected crash ({rule.get('match', '*')})"
        )
    if mode == "exit":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os._exit(int(rule.get("exit_code", 17)))
        raise InjectedFault("injected exit (demoted to crash in-process)")
    if mode == "sigkill":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        raise InjectedFault("injected sigkill (demoted to crash in-process)")
    if mode == "preempt":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os.kill(os.getpid(), signal.SIGTERM)
            return
        request_drain()
        return
    if mode == "hang":
        time.sleep(float(rule.get("hang_seconds", 30.0)))


def inject_preemptive_fault(rule: Optional[Dict[str, Any]]) -> None:
    """Apply a claimed rule before real work starts (unless deferred).

    Result-stage modes (``corrupt``/``truncate``) and rules with a
    positive ``after_snapshots`` deferral pass through untouched — the
    former fire when the result payload is built, the latter from the
    worker's snapshot hook via :func:`fire_fault`.
    """
    if rule is None:
        return
    if rule["mode"] in ("corrupt", "truncate"):
        return
    if fault_after_snapshots(rule) > 0:
        return
    fire_fault(rule)


def corrupt_result_payload(
    rule: Optional[Dict[str, Any]], result: Dict[str, Any]
) -> Dict[str, Any]:
    """Apply a claimed ``corrupt`` rule to a scalar result payload.

    Corruption is codec-aware: a binary (columnar blob) final
    configuration is truncated mid-frame, a JSON one is replaced with
    a version-mismatched document — either way the engine's result
    validation must reject the payload before it can be checkpointed.
    """
    if rule is not None and rule["mode"] == "corrupt":
        result = dict(result)
        final = result.get("final")
        if isinstance(final, (bytes, bytearray)):
            result["final"] = bytes(final)[: max(8, len(final) // 2)]
        else:
            result["final"] = '{"format_version": -1}'
    return result


def corrupt_batch_payloads(
    rule: Optional[Dict[str, Any]], results: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Apply a claimed ``corrupt``/``truncate`` rule to batch results."""
    if rule is None:
        return results
    if rule["mode"] == "truncate" and results:
        return results[:-1]
    if rule["mode"] == "corrupt" and results:
        results = list(results)
        results[-1] = corrupt_result_payload(rule, results[-1])
    return results


# ---------------------------------------------------------------------------
# Work units and the resilient executor
# ---------------------------------------------------------------------------


@dataclass
class WorkUnit:
    """One schedulable unit: a scalar cell or a whole batch group.

    ``fn`` must be a module-level (picklable) worker; ``payload`` is
    its JSON-able argument.  ``tasks`` are the member
    :class:`~repro.experiments.parallel.CellTask` objects (one for the
    scalar engine, R for a batch group) used for failure records.
    """

    uid: int
    fn: Callable[[Dict[str, Any]], Any]
    payload: Dict[str, Any]
    tasks: Sequence[Any]
    #: Optional heartbeat file the worker touches while the unit runs;
    #: the supervisor polls its mtime to tell live-but-slow cells from
    #: silently dead ones.
    heartbeat: Optional[str] = None

    @property
    def key(self) -> str:
        return self.tasks[0].key()

    @property
    def label(self) -> str:
        return self.tasks[0].label or self.key


def _failure_kind(error: BaseException) -> str:
    if isinstance(error, TaskTimeoutError):
        return "timeout"
    if isinstance(error, ResultValidationError):
        return "validation"
    return "exception"


class ResilientExecutor:
    """Run work units under a retry/timeout/quarantine regime.

    The caller supplies three hooks:

    * ``decode(unit, raw)`` — validate and decode a worker's raw return
      value; raising (any exception) counts as a *retryable* task
      failure of kind ``"validation"``.
    * ``commit(unit, decoded)`` — persist and account a validated
      result (checkpoint write, progress, obs).  Not retried: an error
      here is a caller bug and propagates.
    * ``quarantine(unit, failures)`` — record placeholders for a unit
      that exhausted its budget under ``mode="quarantine"``.

    Under ``mode="raise"`` the original worker exception propagates
    unchanged (the historical engine contract); ``mode="retry"`` wraps
    the final error in :class:`CellFailedError`.
    """

    def __init__(
        self,
        backend: str,
        workers: Optional[int],
        retry: RetryPolicy,
        failure: FailurePolicy,
        obs: Any = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        order_key: Optional[Callable[[WorkUnit], float]] = None,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
        queue_depth: int = 2,
        drain: Optional[threading.Event] = None,
        drain_timeout: float = 30.0,
        heartbeat_grace: Optional[float] = 15.0,
    ):
        """``order_key``, ``initializer``/``initargs`` and
        ``queue_depth`` extend the original executor:

        * ``order_key`` — units are dispatched highest-key-first
          instead of FIFO.  The key is re-evaluated at every dispatch
          decision, so callers whose key closes over live state (the
          engine's online cost model) get adaptive ordering for free.
          Retries compete with fresh units under the same key.
        * ``initializer``/``initargs`` — forwarded to the process
          pool (and re-applied on every rebuild after a
          ``BrokenProcessPool``); the engine uses them to pre-warm
          worker-side configuration caches.
        * ``queue_depth`` — the process path keeps at most
          ``workers × queue_depth`` futures in flight rather than
          submitting the whole queue up front.  This keeps scheduling
          decisions late (so the cost model can reorder what has not
          been submitted yet) and makes per-task timeout deadlines
          start at *dispatch*, not at enqueue time.
        * ``drain`` — a graceful-shutdown event (usually the
          process-wide one behind :func:`drain_requested`).  Once set,
          no new unit is dispatched; in-flight work gets up to
          ``drain_timeout`` seconds to finish or reach a durable
          snapshot, then the run stops with :class:`DrainInterrupt`
          listing every unit still pending.
        * ``heartbeat_grace`` — staleness threshold (seconds) for a
          unit's heartbeat file on the process path; a running unit
          whose heartbeat is older than this is reported once via the
          ``worker.heartbeat_miss`` counter/event (``None`` disables
          the poll).
        """
        retry.validate()
        failure.validate()
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if drain_timeout <= 0:
            raise ValueError(
                f"drain_timeout must be positive, got {drain_timeout}"
            )
        if heartbeat_grace is not None and heartbeat_grace <= 0:
            raise ValueError(
                f"heartbeat_grace must be positive, got {heartbeat_grace}"
            )
        self.backend = backend
        self.workers = workers
        self.retry = retry
        self.failure = failure
        self.obs = obs
        self._sleep = sleep
        self._clock = clock
        self.order_key = order_key
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.queue_depth = queue_depth
        self.drain = drain
        self.drain_timeout = drain_timeout
        self.heartbeat_grace = heartbeat_grace
        self.failures: List[TaskFailure] = []

    # -- shared accounting ---------------------------------------------

    def _note_retry(
        self, unit: WorkUnit, error: BaseException, attempt: int, delay: float
    ) -> None:
        obs = self.obs
        if obs is None:
            return
        if obs.metrics is not None:
            obs.metrics.counter("engine.retries").inc()
            if isinstance(error, TaskTimeoutError):
                obs.metrics.counter("engine.timeouts").inc()
        obs.log(
            "cell.retry",
            level="warning",
            cell=unit.key,
            label=unit.label,
            attempt=attempt,
            kind=_failure_kind(error),
            error=str(error),
            delay=delay,
        )
        if obs.trace is not None:
            now = obs.trace.now()
            obs.trace.complete(
                "cell.retry",
                now,
                end_us=now + delay * 1e6,
                cell=unit.key,
                attempt=attempt,
                kind=_failure_kind(error),
            )

    def _note_failure(
        self, unit: WorkUnit, error: BaseException, attempts: int
    ) -> None:
        obs = self.obs
        if obs is None:
            return
        if obs.metrics is not None:
            obs.metrics.counter("engine.failures").inc()
            if isinstance(error, TaskTimeoutError):
                obs.metrics.counter("engine.timeouts").inc()
        obs.log(
            "cell.failed",
            level="error",
            cell=unit.key,
            label=unit.label,
            attempts=attempts,
            kind=_failure_kind(error),
            error=str(error),
        )

    def _dispose(
        self,
        unit: WorkUnit,
        error: BaseException,
        attempt: int,
        quarantine: Callable[[WorkUnit, List[TaskFailure]], None],
    ) -> Optional[float]:
        """Decide a failed attempt's fate.

        Returns the backoff delay when the unit should be retried, or
        ``None`` when it was quarantined.  Raises (the original error
        under ``mode="raise"``, :class:`CellFailedError` under
        ``mode="retry"``) when the sweep must abort.
        """
        if self.failure.retries_enabled and attempt <= self.retry.max_retries:
            delay = self.retry.delay(attempt, unit.key)
            self._note_retry(unit, error, attempt, delay)
            return delay
        self._note_failure(unit, error, attempt)
        if self.failure.mode == "quarantine":
            kind = _failure_kind(error)
            records = [
                TaskFailure(
                    key=task.key(),
                    label=task.label,
                    lam=task.lam,
                    gamma=task.gamma,
                    replica=task.replica,
                    seed=task.seed,
                    error=str(error),
                    kind=kind,
                    attempts=attempt,
                )
                for task in unit.tasks
            ]
            self.failures.extend(records)
            quarantine(unit, records)
            return None
        if self.failure.mode == "raise":
            raise error
        raise CellFailedError(
            f"cell {unit.label} failed after {attempt} attempt(s): {error}"
        ) from error

    # -- graceful shutdown ---------------------------------------------

    def _drain_set(self) -> bool:
        return self.drain is not None and self.drain.is_set()

    def _raise_drain(self, pending: Sequence[WorkUnit]) -> None:
        keys: List[str] = []
        seen = set()
        for unit in pending:
            if unit.key not in seen:
                seen.add(unit.key)
                keys.append(unit.key)
        raise DrainInterrupt(
            f"drain requested; {len(keys)} unit(s) still pending",
            pending=keys,
        )

    # -- worker liveness -----------------------------------------------

    def _check_heartbeats(self, inflight, hb_meta) -> None:
        """Flag in-flight units whose heartbeat file has gone stale.

        A live-but-slow worker keeps touching its heartbeat, so a slow
        cell never trips this; a silently dead or wedged one (SIGKILL
        landed but the pool has not noticed, or a hang before the cell
        body) stops touching it and is reported once per flight.
        Detection only — disposal stays with the timeout watchdog and
        the ``BrokenProcessPool`` machinery.
        """
        grace = self.heartbeat_grace
        if grace is None or self.obs is None:
            return
        now = time.time()
        for future, (unit, _, _) in inflight.items():
            path = getattr(unit, "heartbeat", None)
            if not path:
                continue
            meta = hb_meta.get(future)
            if meta is None or meta[1]:
                continue
            try:
                beat = os.path.getmtime(path)
            except OSError:
                beat = meta[0]  # never written: measure from dispatch
            stale = now - max(beat, meta[0])
            if stale <= grace:
                continue
            meta[1] = True
            if self.obs.metrics is not None:
                self.obs.metrics.counter("worker.heartbeat_miss").inc()
            self.obs.log(
                "worker.heartbeat_miss",
                level="warning",
                cell=unit.key,
                label=unit.label,
                stale_seconds=round(stale, 3),
            )

    # -- entry point ---------------------------------------------------

    def run(
        self,
        units: Sequence[WorkUnit],
        decode: Callable[[WorkUnit, Any], Any],
        commit: Callable[[WorkUnit, Any], None],
        quarantine: Callable[[WorkUnit, List[TaskFailure]], None],
    ) -> None:
        if self.backend == "serial":
            self._run_serial(units, decode, commit, quarantine)
        else:
            self._run_process(units, decode, commit, quarantine)

    # -- scheduling ----------------------------------------------------

    def _pop_next(self, queue: List) -> Tuple[WorkUnit, int]:
        """Remove and return the next ``(unit, attempt)`` to dispatch.

        FIFO without an ``order_key``; otherwise the pending entry
        with the highest key (ties broken by queue position, so equal
        keys preserve task order).  Linear scan — sweeps are thousands
        of units at most, and re-evaluating the key at pop time is
        what lets an online cost model steer the order.
        """
        if self.order_key is None:
            return queue.pop(0)
        best = max(
            range(len(queue)), key=lambda i: (self.order_key(queue[i][0]), -i)
        )
        return queue.pop(best)

    # -- serial path ---------------------------------------------------

    def _run_serial(self, units, decode, commit, quarantine) -> None:
        timeout = self.retry.task_timeout
        queue = [(unit, 0) for unit in units]
        while queue:
            if self._drain_set():
                self._raise_drain([unit for unit, _ in queue])
            unit, attempt = self._pop_next(queue)
            while True:
                attempt += 1
                started = self._clock()
                try:
                    raw = unit.fn(unit.payload)
                    elapsed = self._clock() - started
                    if timeout is not None and elapsed > timeout:
                        raise TaskTimeoutError(
                            f"cell {unit.label} took {elapsed:.2f}s "
                            f"(> task_timeout {timeout:.2f}s)"
                        )
                    decoded = decode(unit, raw)
                except DrainRequested:
                    # The cell stopped at its last durable snapshot; it
                    # is still pending, not failed.
                    self._raise_drain([unit] + [u for u, _ in queue])
                except Exception as error:
                    delay = self._dispose(unit, error, attempt, quarantine)
                    if delay is None:  # quarantined
                        break
                    if delay > 0:
                        self._sleep(delay)
                    continue
                commit(unit, decoded)
                break

    # -- process path --------------------------------------------------

    def _teardown_pool(self, pool: ProcessPoolExecutor, kill: bool) -> None:
        pool.shutdown(wait=False, cancel_futures=True)
        if kill:
            # Hung or wedged workers hold their slots past shutdown();
            # terminating them (private API, best-effort) is the only
            # way to reclaim the cores before the rebuilt pool starts.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass

    def _run_process(self, units, decode, commit, quarantine) -> None:
        timeout = self.retry.task_timeout
        queue: List[Tuple[WorkUnit, int]] = [(unit, 1) for unit in units]
        waiting: List[Tuple[float, WorkUnit, int]] = []  # (resume, unit, att)
        inflight: Dict[Any, Tuple[WorkUnit, int, Optional[float]]] = {}
        # Per-future heartbeat bookkeeping: [dispatch wall time, reported].
        hb_meta: Dict[Any, List] = {}
        pool: Optional[ProcessPoolExecutor] = None
        restarts = 0
        draining = False
        drain_deadline: Optional[float] = None
        # Lazy bounded submission: keep a small in-flight window so
        # not-yet-submitted units can still be reordered by order_key
        # and timeout deadlines only start once a task actually ships.
        max_inflight = max(1, (self.workers or 1) * self.queue_depth)

        def handle_failure(unit, error, attempt) -> None:
            delay = self._dispose(unit, error, attempt, quarantine)
            if delay is not None:
                waiting.append((self._clock() + delay, unit, attempt + 1))

        def handle_raw(unit, attempt, raw) -> None:
            try:
                decoded = decode(unit, raw)
            except Exception as error:
                handle_failure(unit, error, attempt)
                return
            commit(unit, decoded)

        try:
            while queue or waiting or inflight:
                now = self._clock()
                if not draining and self._drain_set():
                    draining = True
                    drain_deadline = now + self.drain_timeout
                if draining and (
                    not inflight
                    or (drain_deadline is not None and now >= drain_deadline)
                ):
                    # Deadline hit (or nothing left in flight): whatever
                    # has not committed stays pending; its durable
                    # snapshots make the recompute cheap on resume.
                    pending = (
                        [entry[0] for entry in inflight.values()]
                        + [u for u, _ in queue]
                        + [w[1] for w in waiting]
                    )
                    if pool is not None:
                        self._teardown_pool(pool, kill=True)
                        pool = None
                    self._raise_drain(pending)
                if waiting:
                    ready = [w for w in waiting if w[0] <= now]
                    waiting = [w for w in waiting if w[0] > now]
                    for _, unit, attempt in ready:
                        queue.append((unit, attempt))
                pool_broken = False
                if queue and pool is None and not draining:
                    pool = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=self.initializer,
                        initargs=self.initargs,
                    )
                while queue and not draining and len(inflight) < max_inflight:
                    unit, attempt = self._pop_next(queue)
                    try:
                        future = pool.submit(unit.fn, unit.payload)
                    except BrokenProcessPool:
                        queue.insert(0, (unit, attempt))
                        pool_broken = True
                        break
                    deadline = (
                        self._clock() + timeout
                        if timeout is not None
                        else None
                    )
                    inflight[future] = (unit, attempt, deadline)
                    hb_meta[future] = [time.time(), False]

                if inflight and not pool_broken:
                    deadlines = [
                        entry[2]
                        for entry in inflight.values()
                        if entry[2] is not None
                    ]
                    wake_times = list(deadlines) + [w[0] for w in waiting]
                    if draining and drain_deadline is not None:
                        wake_times.append(drain_deadline)
                    if self.heartbeat_grace is not None and any(
                        getattr(entry[0], "heartbeat", None)
                        for entry in inflight.values()
                    ):
                        # Poll at half the grace period so a stale
                        # heartbeat is noticed within ~1.5 graces.
                        wake_times.append(
                            self._clock() + self.heartbeat_grace / 2
                        )
                    wait_timeout = (
                        max(0.0, min(wake_times) - self._clock())
                        if wake_times
                        else None
                    )
                    done, _ = wait(
                        set(inflight),
                        timeout=wait_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        unit, attempt, _ = inflight.pop(future)
                        hb_meta.pop(future, None)
                        try:
                            raw = future.result()
                        except BrokenProcessPool:
                            # A dying worker poisons every outstanding
                            # future; resubmission is free (the retry
                            # budget is for *task* failures).
                            pool_broken = True
                            queue.append((unit, attempt))
                            continue
                        except DrainRequested:
                            # A preempted worker stopped the cell at its
                            # last durable snapshot: still pending, and
                            # the whole sweep now drains.
                            queue.append((unit, attempt))
                            if not draining:
                                draining = True
                                drain_deadline = (
                                    self._clock() + self.drain_timeout
                                )
                            continue
                        except Exception as error:
                            handle_failure(unit, error, attempt)
                            continue
                        handle_raw(unit, attempt, raw)
                    self._check_heartbeats(inflight, hb_meta)

                    # Deadline watchdog for whatever is still running.
                    now = self._clock()
                    expired = [
                        future
                        for future, (_, _, deadline) in inflight.items()
                        if deadline is not None and deadline <= now
                    ]
                    for future in expired:
                        unit, attempt, _ = inflight.pop(future)
                        hb_meta.pop(future, None)
                        if not future.cancel():
                            # Already executing: the worker is wedged on
                            # this cell and must be killed to reclaim
                            # its slot.
                            pool_broken = True
                        handle_failure(
                            unit,
                            TaskTimeoutError(
                                f"cell {unit.label} exceeded task_timeout "
                                f"{timeout:.2f}s"
                            ),
                            attempt,
                        )

                if pool_broken:
                    # Salvage finished results, resubmit the rest, and
                    # rebuild the pool (bounded).
                    for future, (unit, attempt, _) in list(inflight.items()):
                        if future.done():
                            try:
                                raw = future.result()
                            except BrokenProcessPool:
                                queue.append((unit, attempt))
                            except DrainRequested:
                                queue.append((unit, attempt))
                                if not draining:
                                    draining = True
                                    drain_deadline = (
                                        self._clock() + self.drain_timeout
                                    )
                            except Exception as error:
                                handle_failure(unit, error, attempt)
                            else:
                                handle_raw(unit, attempt, raw)
                        else:
                            future.cancel()
                            queue.append((unit, attempt))
                    inflight.clear()
                    hb_meta.clear()
                    if pool is not None:
                        self._teardown_pool(pool, kill=True)
                        pool = None
                    if not (queue or waiting):
                        continue  # nothing left to run; no restart needed
                    restarts += 1
                    if self.obs is not None:
                        if self.obs.metrics is not None:
                            self.obs.metrics.counter(
                                "engine.pool_restarts"
                            ).inc()
                        self.obs.log(
                            "engine.pool_restart",
                            level="warning",
                            restarts=restarts,
                            max_pool_restarts=self.failure.max_pool_restarts,
                        )
                    if restarts > self.failure.max_pool_restarts:
                        raise PoolRestartsExhausted(
                            f"process pool broke {restarts} times "
                            f"(max_pool_restarts="
                            f"{self.failure.max_pool_restarts})"
                        )

                if not inflight and not queue and waiting:
                    # Nothing in flight; sleep until the next backoff
                    # expires instead of spinning.
                    pause = min(w[0] for w in waiting) - self._clock()
                    if pause > 0:
                        self._sleep(pause)
        except BaseException:
            if pool is not None:
                self._teardown_pool(pool, kill=True)
                pool = None
            raise
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
