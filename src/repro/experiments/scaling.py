"""Finite-size scaling of separation and compression (E15).

Every high-probability statement in the paper is asymptotic in the
number of particles: α-compression and (β, δ)-separation fail with
probability at most :math:`\\zeta^{\\sqrt n}`.  This module measures the
finite-``n`` face of those claims:

* how the stationary compression factor α and the normalized interface
  length concentrate as ``n`` grows;
* how the *time* to reach a separated state scales with ``n``
  (the practical cousin of the open mixing-time question).

Runs are replicated over seeds so means come with spreads.
"""

from __future__ import annotations

import math
import os
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence  # noqa: F401

from repro.analysis.compression_metric import alpha_of
from repro.analysis.estimators import time_to_threshold
from repro.experiments.parallel import (
    DEFAULT_CODEC,
    CellTask,
    ProgressCallback,
    dispatch_cells,
    group_by_cell,
)
from repro.experiments.resilience import (
    CellFailedError,
    FailurePolicy,
    RetryPolicy,
    surviving,
)
from repro.obs import Instrumentation, StopCondition, aggregate_summaries
from repro.system.initializers import random_blob_system
from repro.util.rng import RngLike, seed_entropy
from repro.util.serialization import configuration_to_json


@dataclass(frozen=True)
class ScalingPoint:
    """Aggregated endpoint statistics at one system size."""

    n: int
    replicas: int
    mean_alpha: float
    std_alpha: float
    mean_normalized_interface: float  # h / sqrt(n)
    std_normalized_interface: float
    mean_time_to_separation: Optional[float]
    fraction_separated_in_budget: float
    #: Folded convergence summary over this size's surviving replicas
    #: (``None`` when the study ran without ``diag_every`` sampling).
    diagnostics: Optional[dict] = None


def _mean_std(values: Sequence[float]) -> tuple:
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(variance)


def scaling_study(
    sizes: Sequence[int],
    lam: float = 4.0,
    gamma: float = 4.0,
    steps_per_particle: int = 5_000,
    replicas: int = 3,
    separation_threshold: float = 0.18,
    seed: RngLike = 0,
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Instrumentation] = None,
    kernel: str = "auto",
    replicas_per_task: int = 0,
    retry: Optional[RetryPolicy] = None,
    failure: Optional[FailurePolicy] = None,
    fault_spec: Optional[dict] = None,
    codec: str = DEFAULT_CODEC,
    adaptive: Optional[StopCondition] = None,
    warm_start: str = "off",
) -> List[ScalingPoint]:
    """Measure endpoint quality and time-to-separation across sizes.

    Each replica runs ``steps_per_particle * n`` iterations (the natural
    per-particle budget: one unit of "parallel time" in the amoebot
    model corresponds to n sequential activations).  Time to separation
    is the first checkpoint where the heterogeneous-edge density stays
    below ``separation_threshold``.

    The ``(size, replica)`` runs are independent, so they execute via
    :mod:`repro.experiments.parallel`: ``backend="process"`` fans them
    out over ``workers`` processes, and ``checkpoint_dir``/``resume``
    allow restarting a killed study without redoing finished runs.
    ``kernel`` picks the step kernel per run without affecting
    trajectories or checkpoint identity.

    ``retry``/``failure`` configure the resilience layer.  Quarantined
    replicas are excluded from each size's aggregates (the reported
    ``replicas`` counts survivors); a size whose replicas *all* failed
    raises :class:`repro.experiments.resilience.CellFailedError`, since
    a scaling point with zero samples would silently distort the fit.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    base_seed = seed_entropy(seed)
    checkpoint_count = 40
    blocks: Dict[int, int] = {}
    tasks: List[CellTask] = []
    for n in sizes:
        budget = steps_per_particle * n
        block = max(1, budget // checkpoint_count)
        blocks[n] = block
        ticks = tuple((i + 1) * block for i in range(checkpoint_count))
        for replica in range(replicas):
            run_seed = base_seed * 1_000_003 + n * 101 + replica
            system = random_blob_system(n, seed=run_seed)
            tasks.append(
                CellTask(
                    lam=lam,
                    gamma=gamma,
                    replica=replica,
                    seed=run_seed,
                    steps=ticks[-1],
                    system_json=configuration_to_json(
                        system, sort_nodes=False
                    ),
                    checkpoints=ticks,
                    label=f"n={n} replica={replica}",
                    kernel=kernel,
                )
            )
    if obs is not None:
        obs = obs.bind(run="scaling")
        obs.log(
            "scaling.start",
            sizes=list(sizes),
            replicas=replicas,
            steps_per_particle=steps_per_particle,
            backend=backend,
        )
    with obs.span("scaling", sizes=len(list(sizes))) if obs is not None else (
        nullcontext()
    ):
        results = dispatch_cells(
            tasks,
            backend=backend,
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            progress=progress,
            obs=obs,
            replicas_per_task=replicas_per_task,
            retry=retry,
            failure=failure,
            fault_spec=fault_spec,
            codec=codec,
            adaptive=adaptive,
            warm_start=warm_start,
        )
    if obs is not None:
        obs.log("scaling.done", sizes=list(sizes), replicas=replicas)

    points: List[ScalingPoint] = []
    for n, size_results in zip(sizes, group_by_cell(results, replicas)):
        block = blocks[n]
        ticks = [(i + 1) * block for i in range(checkpoint_count)]
        survivors = surviving(size_results)
        if not survivors:
            raise CellFailedError(
                f"scaling: every replica at n={n} was quarantined; "
                "a zero-sample point would distort the fit"
            )
        alphas: List[float] = []
        interfaces: List[float] = []
        times: List[float] = []
        separated = 0
        for result in survivors:
            values = [
                snapshot.hetero_total / snapshot.edge_total
                if snapshot.edge_total
                else 0.0
                for snapshot in result.snapshots
            ]
            system = result.system
            alphas.append(alpha_of(system))
            interfaces.append(system.hetero_total / math.sqrt(n))
            hit = time_to_threshold(
                ticks, values, separation_threshold, "below", patience=2
            )
            if hit is not None:
                separated += 1
                times.append(float(hit))
        mean_alpha, std_alpha = _mean_std(alphas)
        mean_interface, std_interface = _mean_std(interfaces)
        points.append(
            ScalingPoint(
                n=n,
                replicas=len(survivors),
                mean_alpha=mean_alpha,
                std_alpha=std_alpha,
                mean_normalized_interface=mean_interface,
                std_normalized_interface=std_interface,
                mean_time_to_separation=(
                    sum(times) / len(times) if times else None
                ),
                fraction_separated_in_budget=separated / len(survivors),
                diagnostics=aggregate_summaries(
                    getattr(result, "diag", None) for result in survivors
                ),
            )
        )
    return points


def scaling_table(points: Sequence[ScalingPoint]) -> str:
    """Fixed-width report of a scaling study."""
    lines = [
        f"{'n':>6}  {'alpha':>12}  {'h/sqrt(n)':>14}  "
        f"{'t_sep (steps)':>13}  {'separated':>9}"
    ]
    for point in points:
        time_text = (
            f"{point.mean_time_to_separation:,.0f}"
            if point.mean_time_to_separation is not None
            else "-"
        )
        lines.append(
            f"{point.n:>6}  "
            f"{point.mean_alpha:6.2f}±{point.std_alpha:4.2f}  "
            f"{point.mean_normalized_interface:7.2f}±{point.std_normalized_interface:5.2f}  "
            f"{time_text:>13}  "
            f"{point.fraction_separated_in_budget:>9.2f}"
        )
    return "\n".join(lines)


def interface_scaling_exponent(points: Sequence[ScalingPoint]) -> float:
    """Fitted exponent b in ``h ~ n^b`` across the study's sizes.

    At full equilibrium a separated system has a single Θ(√n) interface
    (b ≈ 0.5) while an integrated one has h = Θ(n) (b ≈ 1).  At any
    *fixed per-particle budget*, however, measured exponents sit near 1
    even deep in the separating regime: interface coarsening slows
    dramatically with system size — the finite-size face of the
    slow-mixing phenomenon the paper's Section 5 discusses (domains
    form quickly; merging the last few takes exponentially long in the
    bias).  Least-squares in log-log space.
    """
    data = [
        (math.log(p.n), math.log(p.mean_normalized_interface * math.sqrt(p.n)))
        for p in points
        if p.mean_normalized_interface > 0
    ]
    if len(data) < 2:
        raise ValueError("need at least two sizes with nonzero interfaces")
    mean_x = sum(x for x, _ in data) / len(data)
    mean_y = sum(y for _, y in data) / len(data)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in data)
    denominator = sum((x - mean_x) ** 2 for x, _ in data)
    return numerator / denominator
