"""Experiment E2 — Figure 3: the (λ, γ) phase diagram.

The paper starts every cell from the *same* initial configuration (the
leftmost frame of Figure 2) and runs 50,000,000 iterations per (λ, γ)
pair, observing four phases: compressed-separated,
compressed-integrated, expanded-separated, and expanded-integrated.

This regenerator sweeps a (λ, γ) grid spanning all four phases from a
shared initial configuration and classifies every endpoint.  Iteration
counts are scaled down by default (the phases establish themselves well
before the paper's 50M steps at n = 100).

Grid cells execute through :mod:`repro.experiments.parallel`, so the
diagram can fan out over a process pool (``backend="process"``,
``workers=N``), checkpoint completed cells, and ``resume`` a killed
run — with phases and metrics identical to the serial backend for the
same seed.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import (
    DEFAULT_CODEC,
    CellTask,
    ProgressCallback,
    dispatch_cells,
    group_by_cell,
)
from repro.experiments.phases import PhaseThresholds, classify_phase, phase_metrics
from repro.experiments.resilience import FailurePolicy, RetryPolicy, surviving
from repro.obs import Instrumentation, StopCondition, aggregate_summaries
from repro.system.configuration import ParticleSystem
from repro.system.initializers import random_blob_system
from repro.util.rng import RngLike, seed_entropy
from repro.util.serialization import configuration_to_json

#: Grid spanning the four phases (γ values straddle both proven regimes;
#: λ = 0.5 exposes the expanded-separated corner, λγ small but γ large).
DEFAULT_LAMBDAS = (0.5, 1.0, 2.0, 4.0, 6.0)
DEFAULT_GAMMAS = (0.8, 1.0, 2.0, 4.0, 6.0)

#: Iterations per cell in the paper.
PAPER_ITERATIONS = 50_000_000

#: Abbreviations used in the printed grid.  ``failed`` marks a cell
#: whose replicas were all quarantined by the resilience layer.
PHASE_ABBREVIATIONS = {
    "compressed-separated": "CS",
    "compressed-integrated": "CI",
    "expanded-separated": "ES",
    "expanded-integrated": "EI",
    "failed": "??",
}


@dataclass
class Figure3Result:
    """Outcome of a Figure 3 regeneration."""

    lambdas: List[float]
    gammas: List[float]
    iterations: int
    phases: Dict[Tuple[float, float], str]
    metrics: Dict[Tuple[float, float], Dict[str, float]]
    #: Per-cell folded convergence summaries (``None`` values when the
    #: run sampled no diagnostics or every replica was quarantined);
    #: a cell's ``low_ess`` flag questions its phase classification.
    diagnostics: Dict[Tuple[float, float], Optional[dict]] = field(
        default_factory=dict
    )

    def grid_table(self) -> str:
        """The phase diagram as a text grid (rows = λ, columns = γ)."""
        header = "lambda\\gamma  " + "  ".join(
            f"{gamma:>6.2f}" for gamma in self.gammas
        )
        lines = [header, "-" * len(header)]
        for lam in self.lambdas:
            cells = [
                PHASE_ABBREVIATIONS[self.phases[(lam, gamma)]].rjust(6)
                for gamma in self.gammas
            ]
            lines.append(f"{lam:>12.2f}  " + "  ".join(cells))
        lines.append(
            "(CS=compressed-separated, CI=compressed-integrated, "
            "ES=expanded-separated, EI=expanded-integrated, ??=failed)"
        )
        return "\n".join(lines)

    def phase_of(self, lam: float, gamma: float) -> str:
        """Phase label of one grid cell."""
        return self.phases[(lam, gamma)]


def run_figure3(
    n: int = 100,
    lambdas: Sequence[float] = DEFAULT_LAMBDAS,
    gammas: Sequence[float] = DEFAULT_GAMMAS,
    iterations: int = 1_000_000,
    swaps: bool = True,
    seed: RngLike = 2018,
    thresholds: PhaseThresholds = PhaseThresholds(),
    initial: Optional[ParticleSystem] = None,
    replicas: int = 1,
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Instrumentation] = None,
    kernel: str = "auto",
    replicas_per_task: int = 0,
    retry: Optional[RetryPolicy] = None,
    failure: Optional[FailurePolicy] = None,
    fault_spec: Optional[dict] = None,
    codec: str = DEFAULT_CODEC,
    adaptive: Optional[StopCondition] = None,
    warm_start: str = "off",
    state_every: int = 0,
    drain_timeout: float = 30.0,
) -> Figure3Result:
    """Regenerate the Figure 3 phase grid.

    Every cell starts from a copy of the same initial configuration (as
    in the paper) and runs ``iterations`` steps of the chain with its own
    (λ, γ).  With ``replicas > 1`` each cell runs several independent
    seeds and the reported phase is the majority vote (ties broken
    toward the first run), making the diagram robust to single-run
    fluctuations near phase boundaries; metrics are averaged.

    Integer seeds keep their historical per-replica derivation (``seed
    + 7919·replica``) so existing diagrams reproduce exactly; other
    ``RngLike`` seeds contribute fresh entropy instead of silently
    collapsing to zero.  ``backend``/``workers``/``checkpoint_dir``/
    ``resume``/``progress``/``obs`` are forwarded to the parallel
    execution engine; with ``obs`` attached the grid is wrapped in a
    ``figure3`` trace span and every cell reports wall-time and
    throughput (see :mod:`repro.obs`).  ``kernel`` picks the step
    kernel per cell without affecting trajectories or checkpoints.

    ``retry``/``failure`` configure the resilience layer.  Under
    ``FailurePolicy(mode="quarantine")`` failed replicas are dropped
    from the vote and metric averages; a cell whose replicas all failed
    is reported with phase ``"failed"`` (``??`` in the printed grid).
    """
    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if initial is None:
        initial = random_blob_system(n, seed=seed)
    base_seed = seed_entropy(seed)
    initial_json = configuration_to_json(initial, sort_nodes=False)

    cells = [(lam, gamma) for lam in lambdas for gamma in gammas]
    tasks = [
        CellTask(
            lam=lam,
            gamma=gamma,
            replica=replica,
            seed=base_seed + 7919 * replica,
            steps=iterations,
            swaps=swaps,
            system_json=initial_json,
            label=f"lam={lam} gamma={gamma}",
            kernel=kernel,
        )
        for lam, gamma in cells
        for replica in range(replicas)
    ]
    if obs is not None:
        obs = obs.bind(run="figure3")
        obs.log(
            "figure3.start",
            cells=len(cells),
            replicas=replicas,
            iterations=iterations,
            backend=backend,
        )
    with obs.span("figure3", cells=len(cells)) if obs is not None else (
        nullcontext()
    ):
        results = dispatch_cells(
            tasks,
            backend=backend,
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            progress=progress,
            obs=obs,
            replicas_per_task=replicas_per_task,
            retry=retry,
            failure=failure,
            fault_spec=fault_spec,
            codec=codec,
            adaptive=adaptive,
            warm_start=warm_start,
            state_every=state_every,
            drain_timeout=drain_timeout,
        )
    if obs is not None:
        obs.log("figure3.done", cells=len(cells), replicas=replicas)

    phases: Dict[Tuple[float, float], str] = {}
    metrics: Dict[Tuple[float, float], Dict[str, float]] = {}
    diagnostics: Dict[Tuple[float, float], Optional[dict]] = {}
    for key, cell_results in zip(cells, group_by_cell(results, replicas)):
        votes: List[str] = []
        accumulated: Dict[str, float] = {}
        survivors = surviving(cell_results)
        for result in survivors:
            votes.append(classify_phase(result.system, thresholds))
            for name, value in phase_metrics(result.system).items():
                accumulated[name] = accumulated.get(name, 0.0) + value
        phases[key] = max(votes, key=votes.count) if votes else "failed"
        metrics[key] = {
            name: value / len(survivors) for name, value in accumulated.items()
        }
        diagnostics[key] = aggregate_summaries(
            getattr(result, "diag", None) for result in survivors
        )
    return Figure3Result(
        lambdas=list(lambdas),
        gammas=list(gammas),
        iterations=iterations,
        phases=phases,
        metrics=metrics,
        diagnostics=diagnostics,
    )
