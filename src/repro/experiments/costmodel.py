"""Online cost model for longest-expected-first sweep scheduling.

A paper-scale sweep mixes cells whose runtimes differ by orders of
magnitude (the scaling study's ``steps = steps_per_particle * n`` cells
being the extreme case).  A FIFO pool finishes most workers early and
then idles them behind whichever long cell happened to be submitted
last — the classic straggler tail.  List-scheduling theory says the fix
is old and simple: dispatch the longest jobs first (LPT), and the tail
shrinks to the length of one job.

Runtimes are not known up front, so this model predicts them:

* **a-priori shape** — a cell's work is ``steps × n`` proposal draws
  (``n`` from its initial configuration, parsed once per unique
  configuration and cached).  This alone gets the *ordering* right for
  heterogeneous sweeps, which is most of the win.
* **online refinement** — every completed cell reports its worker-side
  wall time; the model folds ``seconds / unit`` into an exponentially
  weighted average, per configuration family and globally.  Later
  scheduling decisions (the engine submits lazily, keeping only a
  bounded window in flight) use the refined rates.

Observed rates are published as ``engine.cost_model.*`` metrics so a
run report shows how well the estimate tracked reality.

Predictions only ever affect *scheduling order*.  Each task carries its
own derived seed, so any execution order yields bit-identical science.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence

#: Fallback seconds-per-unit before any observation (≈1 µs per
#: particle-step, the scalar kernels' ballpark on commodity hardware).
DEFAULT_RATE = 1e-6

#: EWMA weight of each new observation.
SMOOTHING = 0.3


@lru_cache(maxsize=512)
def _system_units(system_json: str) -> int:
    """Particle count of a serialized configuration (cached per string).

    Harnesses share one ``system_json`` across a whole sweep, so the
    parse happens once, not once per cell.  Unparseable strings cost a
    neutral 1 — task validation will reject them with a better error.
    """
    try:
        return max(1, len(json.loads(system_json).get("nodes", ())))
    except (ValueError, TypeError, AttributeError):
        return 1


@lru_cache(maxsize=512)
def _family(system_json: str) -> str:
    """Configuration-family key: cells sharing an initial system share
    per-unit cost characteristics (size, occupancy, geometry)."""
    return hashlib.sha256(system_json.encode()).hexdigest()[:16]


class CostModel:
    """Predict per-cell runtimes from ``steps × n``, refined online."""

    def __init__(self, metrics: Any = None, smoothing: float = SMOOTHING):
        self.metrics = metrics
        self.smoothing = smoothing
        self.observations = 0
        self._global_rate: Optional[float] = None
        self._family_rate: Dict[str, float] = {}

    def units(self, task: Any, iterations: Optional[int] = None) -> float:
        """Work estimate of one task: steps × particle count.

        ``iterations`` substitutes the *actual* executed step count for
        the budgeted ``task.steps`` — adaptive runs stop early, and
        training the rates on budgeted units would bias them low by the
        savings factor (see :meth:`observe`).  Predictions always use
        the budget (the upper bound the scheduler must plan for).
        """
        steps = task.steps if iterations is None else iterations
        return float(max(1, steps)) * _system_units(task.system_json)

    def rate(self, task: Any) -> float:
        """Current best seconds-per-unit estimate for ``task``."""
        family_rate = self._family_rate.get(_family(task.system_json))
        if family_rate is not None:
            return family_rate
        if self._global_rate is not None:
            return self._global_rate
        return DEFAULT_RATE

    def predict_seconds(self, task: Any) -> float:
        """Expected runtime of ``task`` under the current rates."""
        return self.units(task) * self.rate(task)

    def observe(
        self, task: Any, seconds: float, iterations: Optional[int] = None
    ) -> None:
        """Fold one completed cell's measured wall time into the rates.

        Pass ``iterations`` (the steps actually executed) for cells
        that may have stopped early under adaptive termination:
        ``seconds`` was spent on the executed units, so dividing by the
        budgeted units would understate the per-unit cost and the EWMA
        would drift optimistic — exactly the mis-calibration that makes
        chunk planning pack long cells as if they were cheap.
        """
        units = self.units(task, iterations=iterations)
        if seconds <= 0.0 or units <= 0.0:
            return
        predicted = self.predict_seconds(task)
        observed_rate = seconds / units
        weight = self.smoothing
        family = _family(task.system_json)
        for key, current in (
            (family, self._family_rate.get(family)),
            (None, self._global_rate),
        ):
            updated = (
                observed_rate
                if current is None
                else (1.0 - weight) * current + weight * observed_rate
            )
            if key is None:
                self._global_rate = updated
            else:
                self._family_rate[key] = updated
        self.observations += 1
        if self.metrics is not None:
            self.metrics.counter("engine.cost_model.observations").inc()
            self.metrics.gauge("engine.cost_model.us_per_unit").set(
                self._global_rate * 1e6
            )
            if predicted > 0.0:
                self.metrics.gauge("engine.cost_model.last_rel_err").set(
                    abs(seconds - predicted) / predicted
                )


def plan_ladder(tasks: Sequence[Any]) -> List[List[int]]:
    """Order sweep cells into warm-start waves over the (λ, γ) grid.

    Returns a partition of ``range(len(tasks))`` into dependency waves:
    wave ``k`` holds every task whose λ-rank plus γ-rank equals ``k``
    (anti-diagonals of the rank grid), so by the time a wave runs, both
    of each cell's smaller-parameter neighbors — its potential
    warm-start parents — finished in earlier waves.  The ladder is
    rooted at the smallest (λ, γ): per the paper's phase structure
    that is the integrated, fastest-mixing corner, and equilibrated
    configurations flow from fast cells toward the slow separated
    regime the way annealing schedules flow temperature.

    The plan is a pure function of the tasks' parameter values — no
    cost estimates, clocks, or randomness — so replans are identical
    and resume-safe.  Within a wave, task order is preserved; across
    the whole plan every index appears exactly once, whatever shape
    the grid has (full, ragged, or a single cell).
    """
    lam_rank = {
        lam: i for i, lam in enumerate(sorted({t.lam for t in tasks}))
    }
    gamma_rank = {
        g: i for i, g in enumerate(sorted({t.gamma for t in tasks}))
    }
    waves: Dict[int, List[int]] = {}
    for index, task in enumerate(tasks):
        depth = lam_rank[task.lam] + gamma_rank[task.gamma]
        waves.setdefault(depth, []).append(index)
    return [waves[depth] for depth in sorted(waves)]
