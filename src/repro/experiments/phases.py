"""Classification into the four phases observed in Figure 3.

Section 3.2: "We observe four distinct phases: compressed-separated,
compressed-integrated, expanded-separated, and expanded-integrated."

Compression is measured by the factor :math:`\\alpha = p / p_{min}`;
separation by a verified (β, δ) certificate together with the
heterogeneous-edge density.  Thresholds live in a dataclass so sweeps can
study their sensitivity; the defaults were calibrated on the Figure 2
setting (n = 100, λ = γ = 4 is solidly compressed-separated, λ = γ = 1
solidly expanded-integrated).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.compression_metric import alpha_of
from repro.analysis.separation_metric import best_certificate
from repro.system.configuration import ParticleSystem


@dataclass(frozen=True)
class PhaseThresholds:
    """Cutoffs for the four-phase classifier.

    ``alpha_max`` — compressed iff the compression factor is below this.
    ``delta`` — color-impurity tolerance used when searching for a
    separation certificate.
    ``beta_max`` — separated iff a certificate with this β exists.
    ``hetero_density_max`` — fallback separation signal: fraction of
    configuration edges that are heterogeneous (a separated system has
    only an O(√n)-edge interface, so this is small).
    """

    alpha_max: float = 3.0
    delta: float = 0.20
    beta_max: float = 4.0
    hetero_density_max: float = 0.22


def is_compressed_phase(
    system: ParticleSystem, thresholds: PhaseThresholds = PhaseThresholds()
) -> bool:
    """Whether the configuration is on the compressed side of the diagram."""
    return alpha_of(system) <= thresholds.alpha_max


def is_separated_phase(
    system: ParticleSystem, thresholds: PhaseThresholds = PhaseThresholds()
) -> bool:
    """Whether the configuration is on the separated side of the diagram.

    Requires *both* a verified (β, δ) certificate and a low heterogeneous
    edge density, making the classifier robust to certificate-search
    luck on ragged boundaries.
    """
    if system.edge_total == 0:
        return False
    hetero_density = system.hetero_total / system.edge_total
    if hetero_density > thresholds.hetero_density_max:
        return False
    certificate = best_certificate(system, thresholds.beta_max, thresholds.delta)
    return certificate is not None and certificate.satisfies(
        thresholds.beta_max, thresholds.delta
    )


def classify_phase(
    system: ParticleSystem, thresholds: PhaseThresholds = PhaseThresholds()
) -> str:
    """One of the four Figure 3 phase labels for a configuration."""
    compressed = is_compressed_phase(system, thresholds)
    separated = is_separated_phase(system, thresholds)
    side = "compressed" if compressed else "expanded"
    mix = "separated" if separated else "integrated"
    return f"{side}-{mix}"


def phase_metrics(system: ParticleSystem) -> dict:
    """The raw quantities behind the classification, for reporting."""
    certificate = best_certificate(system)
    return {
        "alpha": alpha_of(system),
        "perimeter": system.perimeter(),
        "hetero_edges": system.hetero_total,
        "hetero_density": (
            system.hetero_total / system.edge_total if system.edge_total else 0.0
        ),
        "best_beta": certificate.beta_achieved if certificate else float("inf"),
        "best_impurity": (
            max(1.0 - certificate.density_inside, certificate.density_outside)
            if certificate
            else 1.0
        ),
    }
