"""Experiment E1 — Figure 2: separation over time at λ = γ = 4.

The paper runs :math:`\\mathcal{M}` on 100 particles (50 per color) from
an arbitrary initial configuration, showing snapshots at 0; 50,000;
1,050,000; 17,050,000; and 68,250,000 iterations, and reports that "much
of the system's compression and separation occurs in the first million
iterations".

This regenerator reproduces the run and reports the quantitative
trajectory (perimeter, compression factor α, heterogeneous edges, phase
label) at the same checkpoints — scaled down by default so the benchmark
finishes quickly, full scale with ``scale=1.0`` (or the
``REPRO_FULL_SCALE=1`` environment variable on the benchmark).

Execution goes through :mod:`repro.experiments.parallel`: with
``replicas > 1`` the independent trajectories fan out over the process
pool (``backend="process"``), the reported rows become replica means
with standard deviations in ``rows_std``, and the phase labels are
per-checkpoint majority votes.
"""

from __future__ import annotations

import math
import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.compression_metric import alpha_of
from repro.experiments.parallel import (
    DEFAULT_CODEC,
    CellTask,
    ProgressCallback,
    dispatch_cells,
)
from repro.experiments.phases import PhaseThresholds, classify_phase
from repro.experiments.resilience import (
    CellFailedError,
    FailurePolicy,
    RetryPolicy,
    surviving,
)
from repro.obs import Instrumentation, StopCondition, aggregate_summaries
from repro.experiments.render import render_ascii
from repro.system.configuration import ParticleSystem
from repro.system.initializers import random_blob_system
from repro.system.observables import edge_count, heterogeneous_edge_count
from repro.util.rng import RngLike, derive_seed, seed_entropy
from repro.util.serialization import configuration_to_json

#: The iteration counts at which Figure 2 shows snapshots.
PAPER_CHECKPOINTS = (0, 50_000, 1_050_000, 17_050_000, 68_250_000)

#: The observables reported per checkpoint row.  All four read O(1)
#: incremental counters (``perimeter()`` uses the edge identity;
#: :func:`repro.system.observables.heterogeneous_edge_count` and
#: :func:`repro.system.observables.edge_count` read the running
#: counters) — setting ``REPRO_DEBUG_OBSERVABLES`` cross-checks every
#: read against a from-scratch recomputation.
OBSERVABLES = {
    "perimeter": lambda s: float(s.perimeter()),
    "alpha": lambda s: float(alpha_of(s)),
    "hetero_edges": lambda s: float(heterogeneous_edge_count(s)),
    "hetero_density": lambda s: (
        heterogeneous_edge_count(s) / edge_count(s) if s.edge_total else 0.0
    ),
}


@dataclass
class Figure2Result:
    """Outcome of a Figure 2 regeneration."""

    checkpoints: List[int]
    rows: List[Dict[str, float]]
    phases: List[str]
    snapshots: List[str] = field(default_factory=list)
    system: Optional[ParticleSystem] = None
    replicas: int = 1
    rows_std: Optional[List[Dict[str, float]]] = None
    #: Folded convergence summary over surviving replicas when the run
    #: sampled diagnostics (``obs.diag_every > 0``); ``low_ess`` marks
    #: a trace whose worst replica had too few effective samples for
    #: its points to be trusted.  ``None`` without diagnostics.
    diagnostics: Optional[Dict[str, object]] = None

    def summary_table(self) -> str:
        """Text table matching the figure's progression."""
        header = (
            f"{'iteration':>12}  {'perimeter':>9}  {'alpha':>6}  "
            f"{'hetero':>6}  {'h/e':>6}  phase"
        )
        lines = [header, "-" * len(header)]
        for row, phase in zip(self.rows, self.phases):
            lines.append(
                f"{int(row['iteration']):>12d}  {row['perimeter']:>9.0f}  "
                f"{row['alpha']:>6.2f}  {row['hetero_edges']:>6.0f}  "
                f"{row['hetero_density']:>6.3f}  {phase}"
            )
        return "\n".join(lines)


def scaled_checkpoints(scale: float) -> List[int]:
    """The paper's checkpoints multiplied by ``scale`` (deduplicated)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    seen = set()
    result = []
    for checkpoint in PAPER_CHECKPOINTS:
        scaled = int(round(checkpoint * scale))
        if scaled not in seen:
            seen.add(scaled)
            result.append(scaled)
    return result


def run_figure2(
    n: int = 100,
    lam: float = 4.0,
    gamma: float = 4.0,
    scale: float = 0.02,
    swaps: bool = True,
    seed: RngLike = 2018,
    keep_snapshots: bool = True,
    system: Optional[ParticleSystem] = None,
    checkpoints: Optional[Sequence[int]] = None,
    replicas: int = 1,
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Instrumentation] = None,
    kernel: str = "auto",
    replicas_per_task: int = 0,
    retry: Optional[RetryPolicy] = None,
    failure: Optional[FailurePolicy] = None,
    fault_spec: Optional[dict] = None,
    codec: str = DEFAULT_CODEC,
    adaptive: Optional[StopCondition] = None,
    warm_start: str = "off",
    state_every: int = 0,
    drain_timeout: float = 30.0,
) -> Figure2Result:
    """Regenerate the Figure 2 trajectory.

    Parameters default to the paper's setting with checkpoints scaled by
    ``scale`` (0.02 → final checkpoint 1.365M iterations, enough to see
    the bulk of compression and separation per the paper's own remark).
    A custom starting ``system`` or checkpoint list overrides the
    defaults.  Replica 0 keeps the historical seed so single-replica
    runs reproduce earlier releases exactly; additional replicas get
    deterministically derived seeds and can run on the process backend.

    ``progress`` and ``obs`` are forwarded to the execution engine
    (see :func:`repro.experiments.parallel.execute_cells`); the whole
    regeneration is additionally wrapped in a ``figure2`` trace span,
    and worker spans cover each inter-checkpoint chain segment — the
    burn-in/run/measure phasing of the figure.

    ``kernel`` picks the step kernel (``"auto"``/``"grid"``/``"dict"``)
    without affecting the trajectory or checkpoint identity.

    ``retry``/``failure`` configure the resilience layer.  Quarantined
    replicas are excluded from the means/votes; if *every* replica
    fails, :class:`repro.experiments.resilience.CellFailedError` is
    raised (a trajectory figure with zero trajectories has no partial
    result worth returning).
    """
    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if system is None:
        system = random_blob_system(n, seed=seed)
    if checkpoints is None:
        checkpoints = scaled_checkpoints(scale)
    checkpoints = [int(checkpoint) for checkpoint in checkpoints]
    base = seed_entropy(seed)
    initial_json = configuration_to_json(system, sort_nodes=False)
    steps = checkpoints[-1] if checkpoints else 0

    tasks = [
        CellTask(
            lam=lam,
            gamma=gamma,
            replica=replica,
            seed=base if replica == 0 else derive_seed(base, "figure2", replica),
            steps=steps,
            swaps=swaps,
            system_json=initial_json,
            checkpoints=tuple(checkpoints),
            label=f"figure2 replica={replica}",
            kernel=kernel,
        )
        for replica in range(replicas)
    ]
    if obs is not None:
        obs = obs.bind(run="figure2")
        obs.log(
            "figure2.start",
            replicas=replicas,
            steps=steps,
            checkpoints=len(checkpoints),
            backend=backend,
        )
    with obs.span("figure2", replicas=replicas) if obs is not None else (
        nullcontext()
    ):
        results = dispatch_cells(
            tasks,
            backend=backend,
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            progress=progress,
            obs=obs,
            replicas_per_task=replicas_per_task,
            retry=retry,
            failure=failure,
            fault_spec=fault_spec,
            codec=codec,
            adaptive=adaptive,
            warm_start=warm_start,
            state_every=state_every,
            drain_timeout=drain_timeout,
        )
    if obs is not None:
        obs.log("figure2.done", replicas=replicas, steps=steps)

    survivors = surviving(results)
    if not survivors:
        raise CellFailedError(
            "figure2: every replica was quarantined; nothing to aggregate"
        )

    thresholds = PhaseThresholds()
    per_replica_rows: List[List[Dict[str, float]]] = []
    per_replica_phases: List[List[str]] = []
    for result in survivors:
        rows = []
        phase_row = []
        for checkpoint, snapshot in zip(checkpoints, result.snapshots):
            row = {"iteration": float(checkpoint)}
            for name, fn in OBSERVABLES.items():
                row[name] = float(fn(snapshot))
            rows.append(row)
            phase_row.append(classify_phase(snapshot, thresholds))
        per_replica_rows.append(rows)
        per_replica_phases.append(phase_row)

    alive = len(survivors)
    rows: List[Dict[str, float]] = []
    rows_std: List[Dict[str, float]] = []
    phases: List[str] = []
    for position, checkpoint in enumerate(checkpoints):
        mean_row: Dict[str, float] = {"iteration": float(checkpoint)}
        std_row: Dict[str, float] = {"iteration": float(checkpoint)}
        for name in OBSERVABLES:
            samples = [
                per_replica_rows[r][position][name] for r in range(alive)
            ]
            mean = sum(samples) / alive
            mean_row[name] = mean
            std_row[name] = math.sqrt(
                sum((value - mean) ** 2 for value in samples) / alive
            )
        rows.append(mean_row)
        rows_std.append(std_row)
        votes = [per_replica_phases[r][position] for r in range(alive)]
        phases.append(max(votes, key=votes.count))

    snapshots = (
        [render_ascii(snapshot) for snapshot in survivors[0].snapshots]
        if keep_snapshots
        else []
    )
    return Figure2Result(
        checkpoints=list(checkpoints),
        rows=rows,
        phases=phases,
        snapshots=snapshots,
        system=survivors[0].system,
        replicas=alive,
        rows_std=rows_std,
        diagnostics=aggregate_summaries(
            getattr(result, "diag", None) for result in survivors
        ),
    )


# ---------------------------------------------------------------------------
# Dense measured traces (the measurement hot path)
# ---------------------------------------------------------------------------


@dataclass
class Figure2Trace:
    """A dense observable trace: one row every ``measure_every`` steps.

    ``rows``/``rows_std`` are replica means and standard deviations of
    the :data:`OBSERVABLES` quantities (plus ``iteration``);
    ``wall_time`` is the total run-plus-measure time in seconds, the
    quantity the incremental-vs-scratch measurement benchmark compares.
    """

    measure_every: int
    steps: int
    replicas: int
    incremental: bool
    rows: List[Dict[str, float]]
    rows_std: List[Dict[str, float]]
    wall_time: float = 0.0


def _trace_row(
    iteration: int,
    perimeters: Sequence[float],
    het_edges: Sequence[float],
    edge_totals: Sequence[float],
    p_min: int,
) -> Dict[str, List[float]]:
    """Per-replica observable samples for one measurement row."""
    samples: Dict[str, List[float]] = {
        "perimeter": [float(p) for p in perimeters],
        "alpha": [
            float(p) / p_min if p_min else 1.0 for p in perimeters
        ],
        "hetero_edges": [float(h) for h in het_edges],
        "hetero_density": [
            float(h) / e if e else 0.0
            for h, e in zip(het_edges, edge_totals)
        ],
    }
    samples["iteration"] = [float(iteration)]
    return samples


def measure_figure2(
    n: int = 100,
    lam: float = 4.0,
    gamma: float = 4.0,
    steps: int = 50_000,
    measure_every: int = 100,
    swaps: bool = True,
    seed: RngLike = 2018,
    system: Optional[ParticleSystem] = None,
    replicas: int = 1,
    kernel: str = "auto",
    incremental: bool = True,
    obs: Optional[Instrumentation] = None,
) -> Figure2Trace:
    """Run the Figure 2 cell and measure observables *densely*.

    Unlike :func:`run_figure2` (few checkpoints, full configuration
    snapshots), this is the measurement hot path: one observable row
    every ``measure_every`` iterations, with **no** configuration
    serialization.

    ``incremental=True`` (default) reads the O(1) running counters —
    perimeter via the edge identity, heterogeneous edges and edge
    totals directly; with ``REPRO_DEBUG_OBSERVABLES`` set every row is
    cross-checked against from-scratch recomputation.
    ``incremental=False`` recomputes every observable from scratch at
    every row (O(n) neighbor scans) — the honest baseline the
    measurement benchmark compares against.

    ``kernel="batch"`` advances all replicas lock-step inside one
    :class:`~repro.core.batch_kernel.BatchKernel` and reads whole
    counter *arrays* per row; scalar kernels run one chain per replica.
    Replica seeds match :func:`run_figure2` (replica 0 keeps the
    historical seed).
    """
    from repro.analysis.compression_metric import minimum_perimeter
    from repro.lattice.boundary import perimeter as perimeter_scratch
    from repro.system.observables import (
        edge_count_scratch,
        heterogeneous_edge_count_scratch,
    )
    from repro.system import observables as _observables

    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if measure_every < 1:
        raise ValueError(
            f"measure_every must be positive, got {measure_every}"
        )
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    if system is None:
        system = random_blob_system(n, seed=seed)
    n = system.n
    base = seed_entropy(seed)
    seeds = [
        base if replica == 0 else derive_seed(base, "figure2", replica)
        for replica in range(replicas)
    ]
    p_min = minimum_perimeter(n)

    if obs is not None:
        obs = obs.bind(run="figure2.measure")
        obs.log(
            "figure2.measure.start",
            replicas=replicas,
            steps=steps,
            measure_every=measure_every,
            incremental=incremental,
            kernel=kernel,
        )

    import time as _time

    wall_start = _time.perf_counter()

    batch_kernel = None
    chains = None
    if kernel == "batch":
        from repro.core.batch_kernel import BatchKernel

        batch_kernel = BatchKernel(
            system,
            lam,
            gamma,
            replicas=replicas,
            seed=seeds,
            swaps=swaps,
        )
    else:
        from repro.core.separation_chain import SeparationChain

        chains = [
            SeparationChain(
                system.copy(),
                lam=lam,
                gamma=gamma,
                swaps=swaps,
                seed=seeds[replica],
                backend=kernel,
            )
            for replica in range(replicas)
        ]

    def measure(iteration: int) -> Dict[str, List[float]]:
        if incremental:
            if batch_kernel is not None:
                perimeters = batch_kernel.perimeters()
                het = batch_kernel.het_edges()
                edges = batch_kernel.edge_totals()
                if _observables._OBSERVABLES_DEBUG:
                    for replica in range(replicas):
                        exported = batch_kernel.export_system(replica)
                        if (
                            exported.edge_total != int(edges[replica])
                            or exported.hetero_total != int(het[replica])
                        ):
                            raise RuntimeError(
                                "batch kernel incremental counters diverged "
                                f"from recomputation at replica {replica} "
                                f"(REPRO_DEBUG_OBSERVABLES cross-check)"
                            )
            else:
                # edge_count()/heterogeneous_edge_count() carry their
                # own REPRO_DEBUG_OBSERVABLES cross-check.
                from repro.system.observables import (
                    edge_count,
                    heterogeneous_edge_count,
                )

                perimeters = [c.system.perimeter() for c in chains]
                het = [heterogeneous_edge_count(c.system) for c in chains]
                edges = [edge_count(c.system) for c in chains]
        else:
            exported = (
                [
                    batch_kernel.export_system(replica)
                    for replica in range(replicas)
                ]
                if batch_kernel is not None
                else [c.system for c in chains]
            )
            perimeters = [
                perimeter_scratch(set(s.colors)) for s in exported
            ]
            het = [heterogeneous_edge_count_scratch(s) for s in exported]
            edges = [edge_count_scratch(s) for s in exported]
        return _trace_row(iteration, perimeters, het, edges, p_min)

    sample_rows = [measure(0)]
    current = 0
    while current < steps:
        delta = min(measure_every, steps - current)
        if batch_kernel is not None:
            batch_kernel.run(delta)
        else:
            for chain in chains:
                chain.run(delta)
        current += delta
        sample_rows.append(measure(current))
    wall_time = _time.perf_counter() - wall_start

    rows: List[Dict[str, float]] = []
    rows_std: List[Dict[str, float]] = []
    for samples in sample_rows:
        mean_row: Dict[str, float] = {}
        std_row: Dict[str, float] = {}
        for name, values in samples.items():
            mean = sum(values) / len(values)
            mean_row[name] = mean
            std_row[name] = math.sqrt(
                sum((v - mean) ** 2 for v in values) / len(values)
            )
        rows.append(mean_row)
        rows_std.append(std_row)

    if obs is not None:
        obs.log(
            "figure2.measure.done",
            rows=len(rows),
            seconds=wall_time,
            incremental=incremental,
        )
    return Figure2Trace(
        measure_every=measure_every,
        steps=steps,
        replicas=replicas,
        incremental=incremental,
        rows=rows,
        rows_std=rows_std,
        wall_time=wall_time,
    )
