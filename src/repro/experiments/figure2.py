"""Experiment E1 — Figure 2: separation over time at λ = γ = 4.

The paper runs :math:`\\mathcal{M}` on 100 particles (50 per color) from
an arbitrary initial configuration, showing snapshots at 0; 50,000;
1,050,000; 17,050,000; and 68,250,000 iterations, and reports that "much
of the system's compression and separation occurs in the first million
iterations".

This regenerator reproduces the run and reports the quantitative
trajectory (perimeter, compression factor α, heterogeneous edges, phase
label) at the same checkpoints — scaled down by default so the benchmark
finishes quickly, full scale with ``scale=1.0`` (or the
``REPRO_FULL_SCALE=1`` environment variable on the benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.compression_metric import alpha_of
from repro.core.separation_chain import SeparationChain
from repro.experiments.phases import PhaseThresholds, classify_phase
from repro.experiments.recorder import RunRecorder
from repro.experiments.render import render_ascii
from repro.system.configuration import ParticleSystem
from repro.system.initializers import random_blob_system
from repro.util.rng import RngLike

#: The iteration counts at which Figure 2 shows snapshots.
PAPER_CHECKPOINTS = (0, 50_000, 1_050_000, 17_050_000, 68_250_000)


@dataclass
class Figure2Result:
    """Outcome of a Figure 2 regeneration."""

    checkpoints: List[int]
    rows: List[Dict[str, float]]
    phases: List[str]
    snapshots: List[str] = field(default_factory=list)
    system: Optional[ParticleSystem] = None

    def summary_table(self) -> str:
        """Text table matching the figure's progression."""
        header = (
            f"{'iteration':>12}  {'perimeter':>9}  {'alpha':>6}  "
            f"{'hetero':>6}  {'h/e':>6}  phase"
        )
        lines = [header, "-" * len(header)]
        for row, phase in zip(self.rows, self.phases):
            lines.append(
                f"{int(row['iteration']):>12d}  {row['perimeter']:>9.0f}  "
                f"{row['alpha']:>6.2f}  {row['hetero_edges']:>6.0f}  "
                f"{row['hetero_density']:>6.3f}  {phase}"
            )
        return "\n".join(lines)


def scaled_checkpoints(scale: float) -> List[int]:
    """The paper's checkpoints multiplied by ``scale`` (deduplicated)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    seen = set()
    result = []
    for checkpoint in PAPER_CHECKPOINTS:
        scaled = int(round(checkpoint * scale))
        if scaled not in seen:
            seen.add(scaled)
            result.append(scaled)
    return result


def run_figure2(
    n: int = 100,
    lam: float = 4.0,
    gamma: float = 4.0,
    scale: float = 0.02,
    swaps: bool = True,
    seed: RngLike = 2018,
    keep_snapshots: bool = True,
    system: Optional[ParticleSystem] = None,
    checkpoints: Optional[Sequence[int]] = None,
) -> Figure2Result:
    """Regenerate the Figure 2 trajectory.

    Parameters default to the paper's setting with checkpoints scaled by
    ``scale`` (0.02 → final checkpoint 1.365M iterations, enough to see
    the bulk of compression and separation per the paper's own remark).
    A custom starting ``system`` or checkpoint list overrides the
    defaults.
    """
    if system is None:
        system = random_blob_system(n, seed=seed)
    chain = SeparationChain(system, lam=lam, gamma=gamma, swaps=swaps, seed=seed)
    if checkpoints is None:
        checkpoints = scaled_checkpoints(scale)
    recorder = RunRecorder(
        observables={
            "perimeter": lambda s: s.perimeter(),
            "alpha": alpha_of,
            "hetero_edges": lambda s: s.hetero_total,
            "hetero_density": lambda s: (
                s.hetero_total / s.edge_total if s.edge_total else 0.0
            ),
        }
    )
    thresholds = PhaseThresholds()
    phases: List[str] = []
    snapshots: List[str] = []
    current = 0
    for checkpoint in checkpoints:
        chain.run(checkpoint - current)
        current = checkpoint
        recorder.record(checkpoint, system)
        phases.append(classify_phase(system, thresholds))
        if keep_snapshots:
            snapshots.append(render_ascii(system))
    return Figure2Result(
        checkpoints=list(checkpoints),
        rows=recorder.rows,
        phases=phases,
        snapshots=snapshots,
        system=system,
    )
