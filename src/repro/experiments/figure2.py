"""Experiment E1 — Figure 2: separation over time at λ = γ = 4.

The paper runs :math:`\\mathcal{M}` on 100 particles (50 per color) from
an arbitrary initial configuration, showing snapshots at 0; 50,000;
1,050,000; 17,050,000; and 68,250,000 iterations, and reports that "much
of the system's compression and separation occurs in the first million
iterations".

This regenerator reproduces the run and reports the quantitative
trajectory (perimeter, compression factor α, heterogeneous edges, phase
label) at the same checkpoints — scaled down by default so the benchmark
finishes quickly, full scale with ``scale=1.0`` (or the
``REPRO_FULL_SCALE=1`` environment variable on the benchmark).

Execution goes through :mod:`repro.experiments.parallel`: with
``replicas > 1`` the independent trajectories fan out over the process
pool (``backend="process"``), the reported rows become replica means
with standard deviations in ``rows_std``, and the phase labels are
per-checkpoint majority votes.
"""

from __future__ import annotations

import math
import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.compression_metric import alpha_of
from repro.experiments.parallel import (
    CellTask,
    ProgressCallback,
    execute_cells,
)
from repro.experiments.phases import PhaseThresholds, classify_phase
from repro.obs import Instrumentation
from repro.experiments.render import render_ascii
from repro.system.configuration import ParticleSystem
from repro.system.initializers import random_blob_system
from repro.util.rng import RngLike, derive_seed, seed_entropy
from repro.util.serialization import configuration_to_json

#: The iteration counts at which Figure 2 shows snapshots.
PAPER_CHECKPOINTS = (0, 50_000, 1_050_000, 17_050_000, 68_250_000)

#: The observables reported per checkpoint row.
OBSERVABLES = {
    "perimeter": lambda s: float(s.perimeter()),
    "alpha": lambda s: float(alpha_of(s)),
    "hetero_edges": lambda s: float(s.hetero_total),
    "hetero_density": lambda s: (
        s.hetero_total / s.edge_total if s.edge_total else 0.0
    ),
}


@dataclass
class Figure2Result:
    """Outcome of a Figure 2 regeneration."""

    checkpoints: List[int]
    rows: List[Dict[str, float]]
    phases: List[str]
    snapshots: List[str] = field(default_factory=list)
    system: Optional[ParticleSystem] = None
    replicas: int = 1
    rows_std: Optional[List[Dict[str, float]]] = None

    def summary_table(self) -> str:
        """Text table matching the figure's progression."""
        header = (
            f"{'iteration':>12}  {'perimeter':>9}  {'alpha':>6}  "
            f"{'hetero':>6}  {'h/e':>6}  phase"
        )
        lines = [header, "-" * len(header)]
        for row, phase in zip(self.rows, self.phases):
            lines.append(
                f"{int(row['iteration']):>12d}  {row['perimeter']:>9.0f}  "
                f"{row['alpha']:>6.2f}  {row['hetero_edges']:>6.0f}  "
                f"{row['hetero_density']:>6.3f}  {phase}"
            )
        return "\n".join(lines)


def scaled_checkpoints(scale: float) -> List[int]:
    """The paper's checkpoints multiplied by ``scale`` (deduplicated)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    seen = set()
    result = []
    for checkpoint in PAPER_CHECKPOINTS:
        scaled = int(round(checkpoint * scale))
        if scaled not in seen:
            seen.add(scaled)
            result.append(scaled)
    return result


def run_figure2(
    n: int = 100,
    lam: float = 4.0,
    gamma: float = 4.0,
    scale: float = 0.02,
    swaps: bool = True,
    seed: RngLike = 2018,
    keep_snapshots: bool = True,
    system: Optional[ParticleSystem] = None,
    checkpoints: Optional[Sequence[int]] = None,
    replicas: int = 1,
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Instrumentation] = None,
    kernel: str = "auto",
) -> Figure2Result:
    """Regenerate the Figure 2 trajectory.

    Parameters default to the paper's setting with checkpoints scaled by
    ``scale`` (0.02 → final checkpoint 1.365M iterations, enough to see
    the bulk of compression and separation per the paper's own remark).
    A custom starting ``system`` or checkpoint list overrides the
    defaults.  Replica 0 keeps the historical seed so single-replica
    runs reproduce earlier releases exactly; additional replicas get
    deterministically derived seeds and can run on the process backend.

    ``progress`` and ``obs`` are forwarded to the execution engine
    (see :func:`repro.experiments.parallel.execute_cells`); the whole
    regeneration is additionally wrapped in a ``figure2`` trace span,
    and worker spans cover each inter-checkpoint chain segment — the
    burn-in/run/measure phasing of the figure.

    ``kernel`` picks the step kernel (``"auto"``/``"grid"``/``"dict"``)
    without affecting the trajectory or checkpoint identity.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if system is None:
        system = random_blob_system(n, seed=seed)
    if checkpoints is None:
        checkpoints = scaled_checkpoints(scale)
    checkpoints = [int(checkpoint) for checkpoint in checkpoints]
    base = seed_entropy(seed)
    initial_json = configuration_to_json(system, sort_nodes=False)
    steps = checkpoints[-1] if checkpoints else 0

    tasks = [
        CellTask(
            lam=lam,
            gamma=gamma,
            replica=replica,
            seed=base if replica == 0 else derive_seed(base, "figure2", replica),
            steps=steps,
            swaps=swaps,
            system_json=initial_json,
            checkpoints=tuple(checkpoints),
            label=f"figure2 replica={replica}",
            kernel=kernel,
        )
        for replica in range(replicas)
    ]
    if obs is not None:
        obs = obs.bind(run="figure2")
        obs.log(
            "figure2.start",
            replicas=replicas,
            steps=steps,
            checkpoints=len(checkpoints),
            backend=backend,
        )
    with obs.span("figure2", replicas=replicas) if obs is not None else (
        nullcontext()
    ):
        results = execute_cells(
            tasks,
            backend=backend,
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            progress=progress,
            obs=obs,
        )
    if obs is not None:
        obs.log("figure2.done", replicas=replicas, steps=steps)

    thresholds = PhaseThresholds()
    per_replica_rows: List[List[Dict[str, float]]] = []
    per_replica_phases: List[List[str]] = []
    for result in results:
        rows = []
        phase_row = []
        for checkpoint, snapshot in zip(checkpoints, result.snapshots):
            row = {"iteration": float(checkpoint)}
            for name, fn in OBSERVABLES.items():
                row[name] = float(fn(snapshot))
            rows.append(row)
            phase_row.append(classify_phase(snapshot, thresholds))
        per_replica_rows.append(rows)
        per_replica_phases.append(phase_row)

    rows: List[Dict[str, float]] = []
    rows_std: List[Dict[str, float]] = []
    phases: List[str] = []
    for position, checkpoint in enumerate(checkpoints):
        mean_row: Dict[str, float] = {"iteration": float(checkpoint)}
        std_row: Dict[str, float] = {"iteration": float(checkpoint)}
        for name in OBSERVABLES:
            samples = [
                per_replica_rows[r][position][name] for r in range(replicas)
            ]
            mean = sum(samples) / replicas
            mean_row[name] = mean
            std_row[name] = math.sqrt(
                sum((value - mean) ** 2 for value in samples) / replicas
            )
        rows.append(mean_row)
        rows_std.append(std_row)
        votes = [per_replica_phases[r][position] for r in range(replicas)]
        phases.append(max(votes, key=votes.count))

    snapshots = (
        [render_ascii(snapshot) for snapshot in results[0].snapshots]
        if keep_snapshots
        else []
    )
    return Figure2Result(
        checkpoints=list(checkpoints),
        rows=rows,
        phases=phases,
        snapshots=snapshots,
        system=results[0].system,
        replicas=replicas,
        rows_std=rows_std,
    )
