"""Generic parameter sweeps over the separation chain.

Sweeps are the workhorse behind Figure 3-style phase diagrams: a grid
of ``(λ, γ)`` cells, each run for a fixed step budget from a shared
initial configuration, possibly replicated over independent seeds.  The
cells are executed through :mod:`repro.experiments.parallel`, so a
sweep can fan out over a process pool (``backend="process"``), write
per-cell checkpoints, and resume a killed run — with results identical
to the serial backend for the same seed.
"""

from __future__ import annotations

import math
import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.experiments.parallel import (
    DEFAULT_CODEC,
    CellTask,
    ProgressCallback,
    dispatch_cells,
    group_by_cell,
)
from repro.experiments.resilience import FailurePolicy, RetryPolicy, surviving
from repro.obs import Instrumentation, StopCondition, aggregate_summaries
from repro.system.configuration import ParticleSystem
from repro.system.initializers import random_blob_system
from repro.util.rng import RngLike, derive_seed, seed_entropy
from repro.util.serialization import configuration_to_json


@dataclass
class SweepPoint:
    """One sweep cell: parameters, aggregated metrics, and a final system.

    ``metrics`` holds, for every requested metric ``name``, the mean
    over replicas under ``name`` and the population standard deviation
    under ``name + "_std"`` (zero for a single replica), plus a
    ``_replicas`` count — enough to draw error bars on Figure 3-style
    diagrams.  ``system`` is the final configuration of the last
    surviving replica (``None`` when every replica of the cell was
    quarantined); ``replica_values`` retains the raw per-replica metric
    values behind the aggregates.  ``diagnostics`` is the folded
    convergence summary over surviving replicas (see
    :func:`repro.obs.aggregate_summaries`) when the sweep ran with a
    ``diag_every`` stride — ``None`` otherwise; its ``low_ess`` flag
    marks points whose worst replica has too few effective samples.
    """

    params: Dict[str, float]
    metrics: Dict[str, float]
    system: Optional[ParticleSystem]
    replica_values: Dict[str, List[float]] = field(default_factory=dict)
    diagnostics: Optional[Dict[str, object]] = None


def run_sweep(
    param_grid: Iterable[Dict[str, float]],
    metrics: Dict[str, Callable[[ParticleSystem], float]],
    n: int = 100,
    iterations: int = 200_000,
    swaps: bool = True,
    seed: RngLike = 0,
    initial: Optional[ParticleSystem] = None,
    replicas: int = 1,
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Instrumentation] = None,
    kernel: str = "auto",
    replicas_per_task: int = 0,
    retry: Optional[RetryPolicy] = None,
    failure: Optional[FailurePolicy] = None,
    fault_spec: Optional[dict] = None,
    codec: str = DEFAULT_CODEC,
    adaptive: Optional[StopCondition] = None,
    warm_start: str = "off",
    state_every: int = 0,
    drain_timeout: float = 30.0,
) -> List[SweepPoint]:
    """Run the chain over a parameter grid, measuring the endpoints.

    ``param_grid`` yields dictionaries with keys ``lam`` and ``gamma``
    (and optionally ``iterations`` to override the default per cell).
    With ``replicas > 1`` each cell runs multiple independent seeds;
    metric values are averaged and their per-cell standard deviation is
    recorded under ``<name>_std`` (a ``_replicas`` entry records the
    count).  Every run starts from a copy of the same initial
    configuration.

    ``backend="process"`` distributes cells over ``workers`` processes;
    ``checkpoint_dir``/``resume`` persist completed cells and skip them
    on re-run (see :func:`repro.experiments.parallel.execute_cells`).
    Both backends produce identical metrics for the same ``seed``.

    ``obs`` threads :class:`repro.obs.Instrumentation` through the
    engine: structured cell-scoped log events, ``chain.*``/``engine.*``
    metrics with per-cell wall-times, and a ``sweep`` trace span
    wrapping the whole grid.  Instrumentation never perturbs the
    trajectories (the RNG stream is untouched).

    ``kernel`` selects the chain's step kernel per cell
    (``"auto"``/``"grid"``/``"dict"``); trajectories are identical
    either way, and the choice is excluded from checkpoint identity, so
    a sweep checkpointed under one kernel resumes under another.

    ``retry``/``failure`` configure the engine's resilience layer (see
    :mod:`repro.experiments.resilience`).  Under
    ``FailurePolicy(mode="quarantine")`` failed replicas are excluded
    from the aggregates: each point's ``_replicas`` counts survivors,
    and a cell whose replicas *all* failed yields NaN metrics with
    ``system=None``.

    ``adaptive`` (a :class:`repro.obs.StopCondition`) turns on
    ESS-targeted early termination: each cell stops once its streaming
    diagnostics satisfy the condition, with ``iterations`` as the hard
    budget, and records stop metadata in its results and checkpoints.
    ``warm_start="ladder"`` additionally runs the grid as anti-diagonal
    waves, seeding each cell from its finished smaller-parameter
    neighbor's equilibrated configuration (see
    :func:`repro.experiments.parallel.dispatch_cells`).  Both default
    off; the fixed-budget default stays bit-identical to historical
    sweeps.

    ``state_every``/``drain_timeout`` configure mid-cell durability:
    workers snapshot their full chain state every ``state_every``
    iterations (0 disables) so a preempted sweep resumes *inside*
    cells, and a SIGTERM/SIGINT drains in-flight cells to their last
    snapshot within ``drain_timeout`` seconds (see
    ``docs/resilience.md``).
    """
    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if initial is None:
        initial = random_blob_system(n, seed=seed)
    base = seed_entropy(seed)
    initial_json = configuration_to_json(initial, sort_nodes=False)
    if obs is not None:
        obs = obs.bind(run="sweep")

    cells = [dict(params) for params in param_grid]
    tasks: List[CellTask] = []
    for params in cells:
        steps = int(params.get("iterations", iterations))
        for replica in range(replicas):
            tasks.append(
                CellTask(
                    lam=params["lam"],
                    gamma=params["gamma"],
                    replica=replica,
                    seed=_replica_seed(base, params, replica),
                    steps=steps,
                    swaps=swaps,
                    system_json=initial_json,
                    label=f"lam={params['lam']} gamma={params['gamma']}",
                    kernel=kernel,
                )
            )

    if obs is not None:
        obs.log(
            "sweep.start",
            cells=len(cells),
            replicas=replicas,
            n=initial.n,
            iterations=iterations,
            backend=backend,
        )
    with (obs.span("sweep", cells=len(cells), replicas=replicas)
          if obs is not None else nullcontext()):
        results = dispatch_cells(
            tasks,
            backend=backend,
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            progress=progress,
            obs=obs,
            replicas_per_task=replicas_per_task,
            retry=retry,
            failure=failure,
            fault_spec=fault_spec,
            codec=codec,
            adaptive=adaptive,
            warm_start=warm_start,
            state_every=state_every,
            drain_timeout=drain_timeout,
        )
    if obs is not None:
        obs.log("sweep.done", cells=len(cells), replicas=replicas)

    points: List[SweepPoint] = []
    for params, cell_results in zip(cells, group_by_cell(results, replicas)):
        survivors = surviving(cell_results)
        values = {
            name: [float(fn(result.system)) for result in survivors]
            for name, fn in metrics.items()
        }
        measured: Dict[str, float] = {}
        for name, samples in values.items():
            if not samples:  # every replica of this cell quarantined
                measured[name] = math.nan
                measured[name + "_std"] = math.nan
                continue
            mean = sum(samples) / len(samples)
            measured[name] = mean
            measured[name + "_std"] = math.sqrt(
                sum((value - mean) ** 2 for value in samples) / len(samples)
            )
        measured["_replicas"] = float(len(survivors))
        points.append(
            SweepPoint(
                params=dict(params),
                metrics=measured,
                system=survivors[-1].system if survivors else None,
                replica_values=values,
                diagnostics=aggregate_summaries(
                    getattr(result, "diag", None) for result in survivors
                ),
            )
        )
    return points


def _replica_seed(base: int, params: Dict[str, float], replica: int) -> int:
    """Deterministic per-cell, per-replica seed derivation.

    ``base`` must already be an integer — callers collapse ``RngLike``
    seeds via :func:`repro.util.rng.seed_entropy`, which draws fresh
    entropy from a ``random.Random`` instead of silently degrading every
    non-int seed to ``0`` (the historical bug that gave every sweep the
    same replica seeds).  Derivation uses a cryptographic digest rather
    than ``hash()``, whose string hashing is salted per process and
    would break cross-process reproducibility.
    """
    return derive_seed(base, sorted(params.items()), replica)


def grid(lambdas: Iterable[float], gammas: Iterable[float]) -> List[Dict[str, float]]:
    """Cartesian product of λ and γ values as sweep parameters."""
    return [
        {"lam": lam, "gamma": gamma}
        for lam in lambdas
        for gamma in gammas
    ]
