"""Generic parameter sweeps over the separation chain."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.separation_chain import SeparationChain
from repro.system.configuration import ParticleSystem
from repro.system.initializers import random_blob_system
from repro.util.rng import RngLike


@dataclass
class SweepPoint:
    """One sweep cell: parameters, metrics, and the final system."""

    params: Dict[str, float]
    metrics: Dict[str, float]
    system: ParticleSystem


def run_sweep(
    param_grid: Iterable[Dict[str, float]],
    metrics: Dict[str, Callable[[ParticleSystem], float]],
    n: int = 100,
    iterations: int = 200_000,
    swaps: bool = True,
    seed: RngLike = 0,
    initial: Optional[ParticleSystem] = None,
    replicas: int = 1,
) -> List[SweepPoint]:
    """Run the chain over a parameter grid, measuring the endpoints.

    ``param_grid`` yields dictionaries with keys ``lam`` and ``gamma``
    (and optionally ``iterations`` to override the default per cell).
    With ``replicas > 1`` each cell runs multiple independent seeds and
    metric values are averaged (a ``_replicas`` entry records the count).
    Every run starts from a copy of the same initial configuration.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if initial is None:
        initial = random_blob_system(n, seed=seed)
    points: List[SweepPoint] = []
    for params in param_grid:
        lam = params["lam"]
        gamma = params["gamma"]
        steps = int(params.get("iterations", iterations))
        accumulated: Dict[str, float] = {name: 0.0 for name in metrics}
        final_system: Optional[ParticleSystem] = None
        for replica in range(replicas):
            system = initial.copy()
            chain = SeparationChain(
                system,
                lam=lam,
                gamma=gamma,
                swaps=swaps,
                seed=_replica_seed(seed, params, replica),
            )
            chain.run(steps)
            for name, fn in metrics.items():
                accumulated[name] += float(fn(system))
            final_system = system
        measured = {
            name: value / replicas for name, value in accumulated.items()
        }
        measured["_replicas"] = float(replicas)
        assert final_system is not None
        points.append(
            SweepPoint(params=dict(params), metrics=measured, system=final_system)
        )
    return points


def _replica_seed(seed: RngLike, params: Dict[str, float], replica: int) -> int:
    """Deterministic per-cell, per-replica seed derivation.

    Uses a cryptographic digest rather than ``hash()``, whose string
    hashing is salted per process and would break reproducibility.
    """
    import hashlib

    base = seed if isinstance(seed, int) else 0
    blob = f"{base}|{sorted(params.items())}|{replica}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def grid(lambdas: Iterable[float], gammas: Iterable[float]) -> List[Dict[str, float]]:
    """Cartesian product of λ and γ values as sweep parameters."""
    return [
        {"lam": lam, "gamma": gamma}
        for lam in lambdas
        for gamma in gammas
    ]
