"""Configuration rendering: ASCII for terminals, SVG for documents.

The paper's Figures 2 and 3 are pictures of configurations; these
renderers regenerate equivalent visuals.  ASCII renders use one character
per particle with half-character row offsets approximating the triangular
geometry; SVG renders place true hexagonal-lattice disks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.lattice.triangular import Node, to_cartesian
from repro.system.configuration import ParticleSystem

#: Characters used for the first few colors in ASCII renders.
ASCII_GLYPHS = ("o", "x", "v", "+", "*", "#")

#: Fill colors for the first few color classes in SVG renders.
SVG_COLORS = ("#2b6cb0", "#c53030", "#2f855a", "#b7791f", "#6b46c1", "#dd6b20")


def render_ascii(system: ParticleSystem, empty: str = ".") -> str:
    """Plain-text picture of the configuration.

    Rows are lattice rows (decreasing ``y`` top to bottom); each row is
    indented by half a character per unit ``y`` to mimic the triangular
    lattice's skew.  Occupied nodes show their color glyph, unoccupied
    nodes inside the bounding box show ``empty``.
    """
    colors = system.colors
    xs = [x for x, _ in colors]
    ys = [y for _, y in colors]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    lines = []
    for y in range(max_y, min_y - 1, -1):
        indent = y - min_y  # each +1 in y shifts cartesian x by +1/2
        cells = []
        for x in range(min_x, max_x + 1):
            color = colors.get((x, y))
            if color is None:
                cells.append(empty)
            else:
                cells.append(ASCII_GLYPHS[color % len(ASCII_GLYPHS)])
        lines.append(" " * indent + " ".join(cells))
    return "\n".join(lines)


def render_svg(
    system: ParticleSystem,
    path: Optional[Union[str, Path]] = None,
    scale: float = 14.0,
    margin: float = 1.5,
) -> str:
    """SVG picture with particles as colored disks on the true lattice.

    Returns the SVG text; also writes it to ``path`` when given.
    """
    colors = system.colors
    points: Dict[Node, tuple] = {node: to_cartesian(node) for node in colors}
    xs = [p[0] for p in points.values()]
    ys = [p[1] for p in points.values()]
    min_x, max_x = min(xs) - margin, max(xs) + margin
    min_y, max_y = min(ys) - margin, max(ys) + margin
    width = (max_x - min_x) * scale
    height = (max_y - min_y) * scale

    def transform(point: tuple) -> tuple:
        # Flip y so larger lattice y renders higher on the page.
        return ((point[0] - min_x) * scale, (max_y - point[1]) * scale)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.2f} {height:.2f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    # Draw configuration edges underneath the particles.
    from repro.lattice.triangular import NEIGHBOR_OFFSETS

    for (x, y), point in points.items():
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            if nbr in points and (x, y) < nbr:
                x1, y1 = transform(point)
                x2, y2 = transform(points[nbr])
                parts.append(
                    f'<line x1="{x1:.1f}" y1="{y1:.1f}" '
                    f'x2="{x2:.1f}" y2="{y2:.1f}" '
                    'stroke="#cbd5e0" stroke-width="1"/>'
                )
    radius = 0.35 * scale
    for node, point in points.items():
        cx, cy = transform(point)
        fill = SVG_COLORS[colors[node] % len(SVG_COLORS)]
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{radius:.1f}" '
            f'fill="{fill}"/>'
        )
    parts.append("</svg>")
    text = "\n".join(parts)
    if path is not None:
        Path(path).write_text(text)
    return text
