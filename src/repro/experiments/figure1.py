"""Figures 1 and 4 — illustrative figures, regenerated as SVG/ASCII.

Unlike Figures 2 and 3 these are not experimental results: Figure 1
illustrates the triangular lattice with expanded and contracted
particles, and Figure 4 illustrates the hexagon construction behind
Lemma 2.  We regenerate them so the repository covers every figure in
the paper; the quantitative content of Figure 4 (perimeter values) is
asserted in the Lemma 2 tests and benchmark.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.lattice.geometry import disk, hexagon
from repro.lattice.triangular import (
    NEIGHBOR_OFFSETS,
    Node,
    to_cartesian,
)
from repro.system.configuration import ParticleSystem
from repro.experiments.render import render_ascii, render_svg


def figure1_lattice_svg(
    radius: int = 3, path: Optional[Union[str, Path]] = None, scale: float = 16.0
) -> str:
    """Figure 1a: a section of the triangular lattice :math:`G_\\Delta`."""
    nodes = sorted(disk((0, 0), radius))
    node_set = set(nodes)
    xs, ys = zip(*(to_cartesian(n) for n in nodes))
    margin = 1.0
    min_x, max_x = min(xs) - margin, max(xs) + margin
    min_y, max_y = min(ys) - margin, max(ys) + margin
    width = (max_x - min_x) * scale
    height = (max_y - min_y) * scale

    def transform(node: Node) -> Tuple[float, float]:
        cx, cy = to_cartesian(node)
        return ((cx - min_x) * scale, (max_y - cy) * scale)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.2f} {height:.2f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    for node in nodes:
        x1, y1 = transform(node)
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (node[0] + dx, node[1] + dy)
            if nbr in node_set and node < nbr:
                x2, y2 = transform(nbr)
                parts.append(
                    f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                    f'y2="{y2:.1f}" stroke="#a0aec0" stroke-width="1"/>'
                )
    for node in nodes:
        cx, cy = transform(node)
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{0.12 * scale:.1f}" '
            'fill="#4a5568"/>'
        )
    parts.append("</svg>")
    text = "\n".join(parts)
    if path is not None:
        Path(path).write_text(text)
    return text


def figure1_particles_svg(
    path: Optional[Union[str, Path]] = None, scale: float = 18.0
) -> str:
    """Figure 1b: expanded and contracted particles on the lattice.

    Draws a handful of contracted particles (single disks) and one
    expanded particle (two disks joined by a thick bar), as in the
    paper's illustration.
    """
    lattice_nodes = sorted(disk((0, 0), 3))
    node_set = set(lattice_nodes)
    contracted: List[Node] = [(0, 0), (1, 0), (-1, 1), (0, -2), (2, -1)]
    expanded_pair: Tuple[Node, Node] = ((-1, -1), (0, -1))

    xs, ys = zip(*(to_cartesian(n) for n in lattice_nodes))
    margin = 1.0
    min_x, max_x = min(xs) - margin, max(xs) + margin
    min_y, max_y = min(ys) - margin, max(ys) + margin
    width = (max_x - min_x) * scale
    height = (max_y - min_y) * scale

    def transform(node: Node) -> Tuple[float, float]:
        cx, cy = to_cartesian(node)
        return ((cx - min_x) * scale, (max_y - cy) * scale)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.2f} {height:.2f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    for node in lattice_nodes:
        x1, y1 = transform(node)
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (node[0] + dx, node[1] + dy)
            if nbr in node_set and node < nbr:
                x2, y2 = transform(nbr)
                parts.append(
                    f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                    f'y2="{y2:.1f}" stroke="#cbd5e0" stroke-width="1"/>'
                )
    # Expanded particle: thick connector plus two disks.
    (a, b) = expanded_pair
    ax, ay = transform(a)
    bx, by = transform(b)
    parts.append(
        f'<line x1="{ax:.1f}" y1="{ay:.1f}" x2="{bx:.1f}" y2="{by:.1f}" '
        f'stroke="#1a202c" stroke-width="{0.18 * scale:.1f}"/>'
    )
    for node in list(contracted) + list(expanded_pair):
        cx, cy = transform(node)
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{0.3 * scale:.1f}" '
            'fill="#1a202c"/>'
        )
    parts.append("</svg>")
    text = "\n".join(parts)
    if path is not None:
        Path(path).write_text(text)
    return text


def figure4_hexagon_construction(
    side: int = 3, extra: int = 6
) -> Tuple[ParticleSystem, ParticleSystem, str, str]:
    """Figure 4: the Lemma 2 construction, as systems and ASCII art.

    Returns ``(hexagon_system, hexagon_plus_layer_system, ascii_a,
    ascii_b)`` for the regular hexagon of the given ``side`` and the
    same hexagon with ``extra`` particles added around the outside —
    the paper's example uses side 3 (37 particles) plus 6 extras with
    perimeter 20.
    """
    base_count = 3 * side * side + 3 * side + 1
    base = ParticleSystem.from_nodes(
        hexagon(base_count), [0] * base_count, num_colors=2
    )
    total = base_count + extra
    extended = ParticleSystem.from_nodes(
        hexagon(total), [0] * total, num_colors=2
    )
    return base, extended, render_ascii(base), render_ascii(extended)


def write_illustrations(directory: Union[str, Path]) -> List[Path]:
    """Write all illustrative figures into a directory; returns paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, producer in (
        ("figure1a_lattice.svg", figure1_lattice_svg),
        ("figure1b_particles.svg", figure1_particles_svg),
    ):
        target = directory / name
        producer(path=target)
        written.append(target)
    base, extended, _, _ = figure4_hexagon_construction()
    for name, system in (
        ("figure4a_hexagon.svg", base),
        ("figure4b_hexagon_layer.svg", extended),
    ):
        target = directory / name
        render_svg(system, target)
        written.append(target)
    return written
