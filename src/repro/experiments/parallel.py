"""Process-pool parallel execution backend for experiment sweeps.

Every quantitative result in the paper (Figure 2's evolution traces,
Figure 3's λ–γ phase diagram, the finite-size scaling study) reduces to
the same shape of work: run the separation chain from a fixed initial
configuration for a fixed number of steps under fixed ``(λ, γ)`` — once
per grid cell per replica.  Those cells are embarrassingly parallel, so
this module factors the execution out of the individual harnesses:

* :class:`CellTask` — one self-contained unit of work: the biases, the
  replica index, a *derived integer seed*, the step budget, optional
  intermediate snapshot checkpoints, and the initial configuration
  serialized with order-preserving JSON (dict order determines the
  chain's particle indexing, so an order-preserving round trip makes a
  worker's trajectory bit-identical to an in-process run).
* :func:`run_cell` — the worker entrypoint.  Importable at module top
  level so ``ProcessPoolExecutor`` can ship it to workers; it speaks
  plain JSON-able payload dicts (see :mod:`repro.util.serialization`)
  rather than live objects.
* :func:`execute_cells` — fan tasks out over a ``serial`` or ``process``
  backend, optionally writing one JSON checkpoint file per completed
  cell and, with ``resume=True``, skipping cells whose checkpoints are
  already on disk — a killed sweep re-run with ``--resume`` completes
  only the missing cells.

Because each task carries its own deterministically derived seed (see
:func:`repro.util.rng.derive_seed`), the two backends produce identical
results for the same inputs; the test suite asserts this cell by cell.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.separation_chain import SeparationChain
from repro.system.configuration import ParticleSystem
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    load_payload,
    save_payload,
)

#: Execution backends understood by :func:`execute_cells`.
BACKENDS = ("serial", "process")

#: Schema version of the per-cell checkpoint payloads.
CHECKPOINT_VERSION = 1

#: Callback signature: ``progress(index, total, result)`` after each cell.
ProgressCallback = Callable[[int, int, "CellResult"], None]


@dataclass(frozen=True)
class CellTask:
    """One sweep cell: a fully self-contained chain run.

    ``checkpoints`` lists iteration counts (strictly increasing, each
    ``<= steps``) at which the worker snapshots the configuration; the
    final configuration after ``steps`` iterations is always returned.
    ``label`` is free-form metadata for reporting and does not affect
    the task identity (it is excluded from :meth:`key`).
    """

    lam: float
    gamma: float
    replica: int
    seed: int
    steps: int
    swaps: bool = True
    system_json: str = ""
    checkpoints: Tuple[int, ...] = ()
    label: str = ""

    def key(self) -> str:
        """Stable identity digest used to name checkpoint files.

        Covers every field that affects the trajectory (including a
        digest of the initial configuration), so resuming against a
        checkpoint directory written by a *different* sweep recomputes
        rather than silently reusing stale cells.
        """
        system_digest = hashlib.sha256(self.system_json.encode()).hexdigest()
        blob = "|".join(
            [
                repr(self.lam),
                repr(self.gamma),
                str(self.replica),
                str(self.seed),
                str(self.steps),
                str(int(self.swaps)),
                ",".join(str(c) for c in self.checkpoints),
                system_digest,
            ]
        ).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    def validate(self) -> None:
        """Raise ``ValueError`` on malformed tasks before any fan-out."""
        if not self.system_json:
            raise ValueError("task is missing its initial configuration")
        if self.steps < 0:
            raise ValueError(f"steps must be non-negative, got {self.steps}")
        previous = -1
        for checkpoint in self.checkpoints:
            if checkpoint <= previous:
                raise ValueError(
                    f"checkpoints must be strictly increasing, got "
                    f"{self.checkpoints}"
                )
            previous = checkpoint
        if self.checkpoints and self.checkpoints[-1] > self.steps:
            raise ValueError(
                f"checkpoint {self.checkpoints[-1]} exceeds steps {self.steps}"
            )


@dataclass
class CellResult:
    """Outcome of one cell: final system, snapshots, and chain counters."""

    task: CellTask
    system: ParticleSystem
    snapshots: List[ParticleSystem] = field(default_factory=list)
    iterations: int = 0
    accepted_moves: int = 0
    accepted_swaps: int = 0
    from_checkpoint: bool = False


def task_payload(task: CellTask) -> Dict[str, Any]:
    """The JSON-able payload shipped to worker processes for ``task``."""
    return {
        "key": task.key(),
        "lam": task.lam,
        "gamma": task.gamma,
        "replica": task.replica,
        "seed": task.seed,
        "steps": task.steps,
        "swaps": task.swaps,
        "system": task.system_json,
        "checkpoints": list(task.checkpoints),
        "label": task.label,
    }


def run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entrypoint: execute one cell payload, return a result payload.

    Module-level (picklable) by design.  Rebuilds the initial
    configuration from its order-preserving JSON, runs the chain with
    the task's derived seed, snapshots at each requested checkpoint,
    and serializes everything back to plain JSON-able data.
    """
    system = configuration_from_json(payload["system"])
    chain = SeparationChain(
        system,
        lam=payload["lam"],
        gamma=payload["gamma"],
        swaps=payload["swaps"],
        seed=payload["seed"],
    )
    snapshots: List[str] = []
    current = 0
    for checkpoint in payload["checkpoints"]:
        chain.run(checkpoint - current)
        current = checkpoint
        snapshots.append(configuration_to_json(system, sort_nodes=False))
    chain.run(payload["steps"] - current)
    return {
        "version": CHECKPOINT_VERSION,
        "key": payload["key"],
        "snapshots": snapshots,
        "final": configuration_to_json(system, sort_nodes=False),
        "iterations": chain.iterations,
        "accepted_moves": chain.accepted_moves,
        "accepted_swaps": chain.accepted_swaps,
    }


def _decode_result(
    task: CellTask, payload: Dict[str, Any], from_checkpoint: bool = False
) -> CellResult:
    return CellResult(
        task=task,
        system=configuration_from_json(payload["final"]),
        snapshots=[
            configuration_from_json(text) for text in payload["snapshots"]
        ],
        iterations=int(payload["iterations"]),
        accepted_moves=int(payload["accepted_moves"]),
        accepted_swaps=int(payload["accepted_swaps"]),
        from_checkpoint=from_checkpoint,
    )


def checkpoint_path(directory: Path, task: CellTask) -> Path:
    """Filesystem location of ``task``'s checkpoint in ``directory``."""
    return directory / f"cell-{task.key()}.json"


def _load_checkpoint(directory: Path, task: CellTask) -> Optional[CellResult]:
    """Load a completed cell from disk, or ``None`` if absent/unusable.

    Unreadable or mismatched files are treated as missing (with a
    warning) so that a checkpoint corrupted by a hard kill forces a
    recompute instead of poisoning the resumed sweep.
    """
    path = checkpoint_path(directory, task)
    if not path.exists():
        return None
    try:
        payload = load_payload(path)
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {payload.get('version')!r} unsupported"
            )
        if payload.get("key") != task.key():
            raise ValueError("checkpoint key does not match task identity")
        return _decode_result(task, payload, from_checkpoint=True)
    except (ValueError, KeyError, OSError) as error:
        warnings.warn(
            f"ignoring unusable checkpoint {path.name}: {error}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def default_workers() -> int:
    """Worker count used when ``workers`` is not given: one per core."""
    return os.cpu_count() or 1


def execute_cells(
    tasks: Iterable[CellTask],
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> List[CellResult]:
    """Run every task and return results in task order.

    Parameters
    ----------
    backend:
        ``"serial"`` runs in-process; ``"process"`` fans out over a
        ``ProcessPoolExecutor``.  Both route each cell through
        :func:`run_cell`, so their results are identical for identical
        tasks.
    workers:
        Pool size for the process backend (default: one per CPU core).
        Ignored by the serial backend.
    checkpoint_dir:
        When given, each completed cell is written there as one JSON
        file (atomically, so killing the sweep never leaves truncated
        checkpoints).
    resume:
        Skip tasks whose checkpoint files already exist in
        ``checkpoint_dir`` (required when ``resume=True``), loading
        their recorded results instead of recomputing.
    progress:
        Optional callback ``(completed_count, total, result)`` invoked
        after every cell, including cells restored from checkpoints.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")

    task_list = list(tasks)
    for task in task_list:
        task.validate()

    directory: Optional[Path] = None
    if checkpoint_dir is not None:
        directory = Path(checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)

    total = len(task_list)
    results: List[Optional[CellResult]] = [None] * total
    completed = 0
    pending: List[int] = []
    for index, task in enumerate(task_list):
        restored = _load_checkpoint(directory, task) if resume else None
        if restored is not None:
            results[index] = restored
            completed += 1
            if progress is not None:
                progress(completed, total, restored)
        else:
            pending.append(index)

    def finish(index: int, payload: Dict[str, Any]) -> None:
        nonlocal completed
        task = task_list[index]
        if directory is not None:
            save_payload(payload, checkpoint_path(directory, task))
        result = _decode_result(task, payload)
        results[index] = result
        completed += 1
        if progress is not None:
            progress(completed, total, result)

    if backend == "serial":
        for index in pending:
            finish(index, run_cell(task_payload(task_list[index])))
    else:
        pool_size = workers if workers is not None else default_workers()
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = {
                pool.submit(run_cell, task_payload(task_list[index])): index
                for index in pending
            }
            for future in as_completed(futures):
                finish(futures[future], future.result())

    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def resolve_backend(backend: Optional[str], workers: Optional[int]) -> str:
    """CLI convenience: pick a backend from ``--backend``/``--workers``.

    An explicit backend wins; otherwise requesting more than one worker
    implies the process pool and anything else stays serial.
    """
    if backend is not None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        return backend
    if workers is not None and workers > 1:
        return "process"
    return "serial"


def group_by_cell(
    results: Sequence[CellResult], replicas: int
) -> List[List[CellResult]]:
    """Split a flat, task-ordered result list into per-cell replica groups.

    Harnesses emit tasks replica-innermost; this restores the
    ``cells × replicas`` nesting for aggregation.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if len(results) % replicas:
        raise ValueError(
            f"{len(results)} results do not divide into groups of {replicas}"
        )
    return [
        list(results[start : start + replicas])
        for start in range(0, len(results), replicas)
    ]
