"""Process-pool parallel execution backend for experiment sweeps.

Every quantitative result in the paper (Figure 2's evolution traces,
Figure 3's λ–γ phase diagram, the finite-size scaling study) reduces to
the same shape of work: run the separation chain from a fixed initial
configuration for a fixed number of steps under fixed ``(λ, γ)`` — once
per grid cell per replica.  Those cells are embarrassingly parallel, so
this module factors the execution out of the individual harnesses:

* :class:`CellTask` — one self-contained unit of work: the biases, the
  replica index, a *derived integer seed*, the step budget, optional
  intermediate snapshot checkpoints, and the initial configuration
  serialized with order-preserving JSON (dict order determines the
  chain's particle indexing, so an order-preserving round trip makes a
  worker's trajectory bit-identical to an in-process run).
* :func:`run_cell` — the worker entrypoint.  Importable at module top
  level so ``ProcessPoolExecutor`` can ship it to workers; it speaks
  payload dicts whose configurations travel either as binary columnar
  blobs (:mod:`repro.util.codec`, the default) or as plain JSON
  strings (see :mod:`repro.util.serialization`) rather than live
  objects.
* :func:`execute_cells` — fan tasks out over a ``serial`` or ``process``
  backend, optionally writing one checkpoint file per completed cell
  (``cell-<key>.bin`` columnar or ``cell-<key>.json`` legacy text, the
  ``codec`` knob; resume reads either) and, with ``resume=True``,
  skipping cells whose checkpoints are already on disk — a killed
  sweep re-run with ``--resume`` completes only the missing cells.

The engine itself is tuned for paper-scale sweeps: worker processes
pre-decode shared base systems once (pool initializer + per-worker
cache), task identity digests are memoized, and a ``steps × n`` cost
model (:mod:`repro.experiments.costmodel`, refined online) dispatches
cells longest-expected-first from a bounded in-flight window, packing
the cheap tail into chunks (``run_cell_chunk``).  None of this touches
trajectories — scheduling order, chunking, and codec are all outside
task identity.

Because each task carries its own deterministically derived seed (see
:func:`repro.util.rng.derive_seed`), the two backends produce identical
results for the same inputs; the test suite asserts this cell by cell.

Observability (:mod:`repro.obs`) threads through both backends: pass an
:class:`repro.obs.Instrumentation` to :func:`execute_cells` and workers
buffer structured log events, chain metrics, and pid-tagged trace spans
inside their result payloads; the parent merges the streams, counts
checkpoint hits/misses/recomputes, and records per-cell wall-time and
throughput.  Instrumentation is excluded from task identity and
stripped from checkpoint files, so instrumented and uninstrumented
sweeps are interchangeable on disk and bit-identical in trajectory.

Fault tolerance (:mod:`repro.experiments.resilience`) threads through
the same way: a :class:`~repro.experiments.resilience.RetryPolicy` and
:class:`~repro.experiments.resilience.FailurePolicy` control per-cell
retries with backoff, a per-task timeout watchdog, bounded process-pool
rebuilds on ``BrokenProcessPool``, and — under ``quarantine`` — partial
completion with :class:`~repro.experiments.resilience.FailedCell`
placeholders plus a ``failures.json`` manifest in the checkpoint dir.
Because retried cells re-run identical payloads with identical derived
seeds, a sweep that survives worker crashes is bit-identical to an
undisturbed one.

Preemption safety extends that guarantee *inside* a cell: with
``state_every > 0`` workers periodically persist a crash-consistent
``cell-<key>.state.bin`` snapshot (configuration, chain/kernel
counters, RNG state, streaming-diagnostics state — see
:func:`repro.util.codec.encode_state`), a retried or resumed cell
warm-restores from it and replays only the missing tail (bit-identical
to an uninterrupted run at the same snapshot cadence), SIGTERM/SIGINT
drain in-flight cells to their last durable snapshot and leave a
resumable ``drain.json`` manifest, and per-unit heartbeat files let
the supervisor tell live-but-slow workers from silently dead ones.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace as dataclass_replace
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.separation_chain import CHAIN_BACKENDS, SeparationChain
from repro.experiments.costmodel import CostModel, plan_ladder
from repro.experiments.resilience import (
    DrainInterrupt,
    DrainRequested,
    FailedCell,
    FailurePolicy,
    ResilientExecutor,
    ResultValidationError,
    RetryPolicy,
    TaskFailure,
    WorkUnit,
    clear_drain_manifest,
    clear_failures_manifest,
    corrupt_batch_payloads,
    corrupt_result_payload,
    drain_event,
    drain_requested,
    fault_after_snapshots,
    fire_fault,
    inject_preemptive_fault,
    install_drain_handlers,
    plan_fault,
    reset_drain,
    restore_drain_handlers,
    write_drain_manifest,
    write_failures_manifest,
)
from repro.obs import (
    ChainDiagnostics,
    DiagnosticsConfig,
    Instrumentation,
    JsonLogger,
    MetricsRegistry,
    ReplicaSetDiagnostics,
    StopCondition,
    TraceRecorder,
    merge_records,
    run_profiled,
)
from repro.obs.convergence import STOP_BUDGET, STOP_MAX_ITERATIONS
from repro.system.configuration import ParticleSystem
from repro.util import codec as binary_codec
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    load_payload,
    save_bytes,
    save_payload,
    sweep_stale_temp_files,
)

#: Execution backends understood by :func:`execute_cells`.
BACKENDS = ("serial", "process")

#: Transport/checkpoint codecs understood by the engine.  ``"binary"``
#: (the default) ships configurations as packed columnar blobs (see
#: :mod:`repro.util.codec`) and writes ``cell-<key>.bin`` checkpoints;
#: ``"json"`` is the legacy text path.  Both read sides fall back to
#: the other format, so a sweep can switch codecs mid-life and still
#: resume its old checkpoints.
CODECS = ("binary", "json")
DEFAULT_CODEC = "binary"

#: Checkpoint filename suffix per codec.
_CODEC_SUFFIX = {"binary": ".bin", "json": ".json"}

#: Scheduling policies: ``"cost"`` orders work longest-expected-first
#: via :class:`repro.experiments.costmodel.CostModel` (refined online)
#: and chunks cheap cells; ``"fifo"`` preserves task order.
SCHEDULES = ("cost", "fifo")

#: Pool oversubscription factor used when sizing adaptive chunks: aim
#: for at least this many work units per worker so the online cost
#: model keeps enough scheduling freedom to absorb bad estimates.
_CHUNK_OVERSUBSCRIPTION = 4

#: Hard cap on adaptive chunk size (``chunk=0``); explicit ``chunk=k``
#: overrides it.
_CHUNK_CAP = 16

#: Warm-start strategies understood by :func:`dispatch_cells`:
#: ``"off"`` runs every cell cold from its own initial configuration;
#: ``"ladder"`` schedules the (λ, γ) grid as a dependency DAG of
#: anti-diagonal waves and seeds each cell from the equilibrated final
#: configuration of its nearest already-finished neighbor (see
#: :func:`repro.experiments.costmodel.plan_ladder`).
WARM_STARTS = ("off", "ladder")

#: Schema version of the per-cell checkpoint payloads.
CHECKPOINT_VERSION = 1

#: Callback signature: ``progress(index, total, result)`` after each cell.
ProgressCallback = Callable[[int, int, "CellResult"], None]


@lru_cache(maxsize=128)
def _system_digest(system_json: str) -> str:
    """sha256 of a serialized configuration, cached per unique string.

    Harnesses share one ``system_json`` across every cell of a sweep,
    so this collapses thousands of digest computations into one.
    """
    return hashlib.sha256(system_json.encode()).hexdigest()


@lru_cache(maxsize=32)
def _encoded_system(system_json: str) -> bytes:
    """Binary transport blob for a task's initial configuration.

    Cached per unique JSON string: the parent encodes each distinct
    initial configuration once per sweep, not once per task.
    """
    return binary_codec.encode_configuration(
        configuration_from_json(system_json)
    )


@dataclass(frozen=True)
class CellTask:
    """One sweep cell: a fully self-contained chain run.

    ``checkpoints`` lists iteration counts (strictly increasing, each
    ``<= steps``) at which the worker snapshots the configuration; the
    final configuration after ``steps`` iterations is always returned.
    ``label`` is free-form metadata for reporting and does not affect
    the task identity (it is excluded from :meth:`key`).  ``kernel``
    selects the chain's step kernel (``"auto"``/``"grid"``/``"dict"``/
    ``"batch"``, see
    :class:`repro.core.separation_chain.SeparationChain`); the scalar
    kernels are bit-identical in trajectory, so — like ``label`` — it
    rides *outside* the task identity and checkpoints written under one
    kernel resume cleanly under another.  ``"batch"`` is a distinct RNG
    regime (statistically, not bit-wise, equivalent); its checkpoints
    are still valid chain samples, so cross-kernel resume remains
    sound for ensemble statistics.

    ``warm_parent`` records warm-start provenance: the :meth:`key` of
    the finished neighbor cell whose equilibrated final configuration
    became this task's ``system_json``.  Like ``label`` it is metadata
    and rides outside :meth:`key` — the *configuration itself* is what
    matters for identity, and it is already covered by the system
    digest, so a stale or changed parent produces a different digest
    and therefore a different checkpoint key automatically.
    """

    lam: float
    gamma: float
    replica: int
    seed: int
    steps: int
    swaps: bool = True
    system_json: str = ""
    checkpoints: Tuple[int, ...] = ()
    label: str = ""
    kernel: str = "auto"
    warm_parent: str = ""

    def key(self) -> str:
        """Stable identity digest used to name checkpoint files.

        Covers every field that affects the trajectory (including a
        digest of the initial configuration), so resuming against a
        checkpoint directory written by a *different* sweep recomputes
        rather than silently reusing stale cells.  ``kernel`` is
        deliberately excluded: the grid and dict kernels are
        trajectory-identical, so cells checkpointed before the grid
        kernel existed stay valid under it (and vice versa).

        The digest is memoized per instance (the dataclass is frozen,
        so it can never go stale) and the inner configuration digest is
        shared across tasks via :func:`_system_digest` — ``key()`` used
        to re-hash the full configuration JSON on every call, and the
        engine calls it for checkpoint paths, grouping, scheduling, and
        logging alike.
        """
        cached = getattr(self, "_key_cache", None)
        if cached is not None:
            return cached
        blob = "|".join(
            [
                repr(self.lam),
                repr(self.gamma),
                str(self.replica),
                str(self.seed),
                str(self.steps),
                str(int(self.swaps)),
                ",".join(str(c) for c in self.checkpoints),
                _system_digest(self.system_json),
            ]
        ).encode()
        key = hashlib.sha256(blob).hexdigest()[:24]
        object.__setattr__(self, "_key_cache", key)
        return key

    def validate(self) -> None:
        """Raise ``ValueError`` on malformed tasks before any fan-out."""
        if not self.system_json:
            raise ValueError("task is missing its initial configuration")
        if self.kernel not in CHAIN_BACKENDS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {CHAIN_BACKENDS}"
            )
        if self.steps < 0:
            raise ValueError(f"steps must be non-negative, got {self.steps}")
        previous = -1
        for checkpoint in self.checkpoints:
            if checkpoint <= previous:
                raise ValueError(
                    f"checkpoints must be strictly increasing, got "
                    f"{self.checkpoints}"
                )
            previous = checkpoint
        if self.checkpoints and self.checkpoints[-1] > self.steps:
            raise ValueError(
                f"checkpoint {self.checkpoints[-1]} exceeds steps {self.steps}"
            )


@dataclass
class CellResult:
    """Outcome of one cell: final system, snapshots, and chain counters.

    ``wall_time`` is the worker-measured execution time in seconds
    (zero for legacy checkpoints written before it was recorded);
    ``profile`` carries the cProfile report text when per-cell
    profiling was requested; ``diag`` carries the worker's streaming
    convergence summary (:mod:`repro.obs.convergence`) when a
    ``diag_every`` stride was requested — ``None`` otherwise, and for
    results restored from checkpoints (diagnostics ride outside the
    checkpoint schema).

    Adaptive runs additionally record stop metadata (persisted in the
    checkpoint header, defaulting to ``None`` for fixed-budget runs
    and legacy checkpoints): ``stop_reason`` (a
    :mod:`repro.obs.convergence` ``STOP_*`` constant), ``ess_at_stop``
    (worst-stream ESS when the cell stopped), ``budget_steps`` (the
    fixed budget the run was capped by — ``iterations < budget_steps``
    measures the savings), and warm-start provenance
    (``warm_parent``/``warm_digest``).

    ``restored_from`` records mid-run durability provenance: the
    iteration count at which the worker warm-restored this cell from a
    ``cell-<key>.state.bin`` snapshot (after a crash, preemption, or
    drain), or ``None`` for cells computed in one uninterrupted pass.
    """

    task: CellTask
    system: ParticleSystem
    snapshots: List[ParticleSystem] = field(default_factory=list)
    iterations: int = 0
    accepted_moves: int = 0
    accepted_swaps: int = 0
    from_checkpoint: bool = False
    wall_time: float = 0.0
    profile: Optional[str] = None
    diag: Optional[Dict[str, Any]] = None
    stop_reason: Optional[str] = None
    ess_at_stop: Optional[float] = None
    budget_steps: Optional[int] = None
    warm_parent: Optional[str] = None
    warm_digest: Optional[str] = None
    restored_from: Optional[int] = None


#: Side-channel payload keys (observability and fault injection):
#: stripped before checkpointing so instrumented, fault-injected, and
#: plain sweeps all write identical checkpoints.
_OBS_PAYLOAD_KEYS = (
    "events",
    "trace_events",
    "metrics",
    "profile",
    "instrument",
    "fault",
    "diag",
)


def task_payload(
    task: CellTask,
    instrument: Optional[Dict[str, bool]] = None,
    codec: str = "json",
    adaptive: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The payload shipped to worker processes for ``task``.

    ``instrument`` is the optional observability request (see
    :meth:`repro.obs.Instrumentation.worker_flags`); it rides outside
    the task identity, so instrumentation never changes checkpoint
    keys or trajectories.

    ``codec`` picks the configuration transport: ``"json"`` (the
    legacy payload, byte-for-byte unchanged) or ``"binary"`` — the
    initial system ships as a packed columnar blob plus its digest
    (the warm-worker cache key), and the worker is asked to return
    blobs in kind.  The codec rides outside the task identity too.

    ``adaptive`` is the optional adaptive-termination request (see
    :func:`adaptive_flags`): a :class:`~repro.obs.StopCondition`
    payload plus the diagnostics stride.  Like ``instrument`` it rides
    outside the task identity — an adaptive run that completes its
    full budget writes a checkpoint a fixed-budget run can resume, and
    vice versa.  Warm-start provenance (``warm_parent`` plus the
    digest of the inherited configuration) is forwarded so the worker
    can echo it into the result payload for the checkpoint header.
    """
    payload = {
        "key": task.key(),
        "lam": task.lam,
        "gamma": task.gamma,
        "replica": task.replica,
        "seed": task.seed,
        "steps": task.steps,
        "swaps": task.swaps,
        "system": task.system_json,
        "checkpoints": list(task.checkpoints),
        "label": task.label,
        "kernel": task.kernel,
    }
    if codec == "binary":
        payload["codec"] = "binary"
        payload["system"] = _encoded_system(task.system_json)
        payload["system_digest"] = _system_digest(task.system_json)
    if task.warm_parent:
        payload["warm_parent"] = task.warm_parent
        payload["warm_digest"] = _system_digest(task.system_json)
    if adaptive:
        payload["adaptive"] = dict(adaptive)
    if instrument:
        payload["instrument"] = dict(instrument)
    return payload


def adaptive_flags(
    adaptive: Optional[StopCondition], obs: Optional[Instrumentation]
) -> Optional[Dict[str, Any]]:
    """The JSON-able adaptive request shipped to workers, or ``None``.

    Bundles the stop condition's payload with the diagnostics sampling
    stride the worker should run at: an explicit ``obs.diag_every``
    wins (diagnostics are then shared between reporting and
    termination); otherwise the default
    :class:`~repro.obs.DiagnosticsConfig` stride applies.
    """
    if adaptive is None:
        return None
    flags = adaptive.to_payload()
    stride = obs.diag_every if obs is not None else 0
    flags["stride"] = int(stride) if stride > 0 else DiagnosticsConfig().stride
    return flags


# ---------------------------------------------------------------------------
# Warm workers: per-process base-system cache
# ---------------------------------------------------------------------------

#: Per-worker decoded base systems, keyed by configuration digest.
#: Sweeps run every cell from a handful of initial configurations, so
#: each worker decodes a given base once and hands out cheap copies.
_BASE_SYSTEM_CACHE: "OrderedDict[str, ParticleSystem]" = OrderedDict()
_BASE_SYSTEM_CACHE_LIMIT = 8


def _decode_system_any(data: Any) -> ParticleSystem:
    """Decode a configuration from either transport representation."""
    if isinstance(data, (bytes, bytearray)):
        return binary_codec.decode_configuration(bytes(data))
    return configuration_from_json(data)


def _base_system(payload: Dict[str, Any]) -> Tuple[ParticleSystem, bool]:
    """The payload's initial system (a private copy) and cache-hit flag.

    Copies preserve dict insertion order and the incremental counters,
    so a cached decode is trajectory-identical to a fresh one.
    """
    data = payload["system"]
    digest = payload.get("system_digest")
    if digest is None:
        raw = data if isinstance(data, (bytes, bytearray)) else data.encode()
        digest = hashlib.sha256(raw).hexdigest()
    cached = _BASE_SYSTEM_CACHE.get(digest)
    if cached is not None:
        _BASE_SYSTEM_CACHE.move_to_end(digest)
        return cached.copy(), True
    system = _decode_system_any(data)
    _BASE_SYSTEM_CACHE[digest] = system
    while len(_BASE_SYSTEM_CACHE) > _BASE_SYSTEM_CACHE_LIMIT:
        _BASE_SYSTEM_CACHE.popitem(last=False)
    return system.copy(), False


def warm_worker(entries: Sequence[Tuple[str, Any]]) -> None:
    """Process-pool initializer: pre-decode base systems once per worker.

    ``entries`` pairs configuration digests with their encoded forms
    (blob or JSON).  Failures are swallowed — a bad entry surfaces as
    a normal per-task decode error later instead of killing the worker
    at startup (which would read as an opaque ``BrokenProcessPool``).
    """
    for digest, data in entries:
        try:
            _BASE_SYSTEM_CACHE[digest] = _decode_system_any(data)
        except Exception:
            continue
    while len(_BASE_SYSTEM_CACHE) > _BASE_SYSTEM_CACHE_LIMIT:
        _BASE_SYSTEM_CACHE.popitem(last=False)


def _warm_entries(
    payloads: Iterable[Dict[str, Any]],
) -> List[Tuple[str, Any]]:
    """Distinct (digest, encoded system) pairs for :func:`warm_worker`."""
    entries: "OrderedDict[str, Any]" = OrderedDict()
    for payload in payloads:
        for member in payload.get("cells") or (payload,):
            digest = member.get("system_digest")
            if digest is not None and digest not in entries:
                entries[digest] = member["system"]
            if len(entries) >= _BASE_SYSTEM_CACHE_LIMIT:
                return list(entries.items())
    return list(entries.items())


#: Seconds between heartbeat-file touches in workers.
_HEARTBEAT_INTERVAL = 2.0


class _HeartbeatWriter:
    """Daemon thread that touches a per-unit liveness file periodically.

    The parent's executor watches the file's mtime: a worker that is
    alive but slow keeps beating, while one killed by SIGKILL/OOM — or
    hung before its first beat — goes silent and trips the
    ``heartbeat_grace`` watchdog (see
    :class:`repro.experiments.resilience.ResilientExecutor`).  Touches
    are tiny unsynced writes on a side thread, so they never perturb
    the measured cell wall time.
    """

    def __init__(self, path: str, interval: float = _HEARTBEAT_INTERVAL):
        self._path = path
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def start(self) -> "_HeartbeatWriter":
        self._touch()
        self._thread.start()
        return self

    def _touch(self) -> None:
        try:
            with open(self._path, "w") as handle:
                handle.write(str(os.getpid()))
        except OSError:
            pass

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            self._touch()

    def stop(self) -> None:
        self._stop.set()
        try:
            os.unlink(self._path)
        except OSError:
            pass


def _start_heartbeat(path: Optional[str]) -> Optional[_HeartbeatWriter]:
    """Start a heartbeat writer for ``path`` (``None`` disables)."""
    if not path:
        return None
    return _HeartbeatWriter(path).start()


def run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entrypoint: execute one cell payload, return a result payload.

    Module-level (picklable) by design.  Rebuilds the initial
    configuration from its order-preserving JSON, runs the chain with
    the task's derived seed, snapshots at each requested checkpoint,
    and serializes everything back to plain JSON-able data.

    When the payload carries an ``instrument`` request the worker
    builds *local* buffering instruments (list-sink logger, its own
    metrics registry and trace recorder — trace events tagged with the
    worker's pid) and returns their contents in the result payload for
    the parent to merge.  A ``profile`` request wraps the whole cell in
    cProfile and attaches the report text.

    Fault injection (a ``fault`` payload key or the
    :data:`repro.experiments.resilience.FAULT_ENV` environment
    variable) can crash, kill, hang, or corrupt this worker for chaos
    testing; like ``instrument`` it rides outside the task identity.
    """
    fault = plan_fault(payload, payload["key"], payload.get("label", ""))
    inject_preemptive_fault(fault)
    # The heartbeat starts *after* preemptive fault injection so a
    # preemptive hang leaves the file never written — exactly the
    # silent-death signature the supervisor watches for.
    heartbeat = _start_heartbeat(payload.get("heartbeat"))
    try:
        instrument = payload.get("instrument") or {}
        if instrument.get("profile"):
            result, profile_text = run_profiled(
                _run_cell_body, payload, instrument, fault
            )
            result["profile"] = profile_text
            return corrupt_result_payload(fault, result)
        return corrupt_result_payload(
            fault, _run_cell_body(payload, instrument, fault)
        )
    finally:
        if heartbeat is not None:
            heartbeat.stop()


def run_cell_chunk(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Worker entrypoint: run several cheap cells in one dispatch.

    The cost-model scheduler packs cells whose expected runtime is
    small relative to the sweep into chunks, amortizing process-pool
    round trips and IPC over several cells.  Each member payload runs
    through :func:`run_cell` unchanged (own seed, own fault plan, own
    instrumentation buffers), and the results come back as one list in
    member order — the same worker-side shape as a batch group, and
    like a batch group the retry/timeout/quarantine policies apply to
    the chunk as a unit.  Chunking therefore never affects
    trajectories, only scheduling granularity.
    """
    heartbeat = _start_heartbeat(payload.get("heartbeat"))
    try:
        return [run_cell(cell) for cell in payload["cells"]]
    finally:
        if heartbeat is not None:
            heartbeat.stop()


def _plan_chunks(
    task_list: Sequence[CellTask],
    pending: Sequence[int],
    model: CostModel,
    workers: int,
    chunk: int,
) -> List[List[int]]:
    """Group pending task indices into scheduling units, longest first.

    Cells whose a-priori cost clears the chunking threshold stay
    singletons; the cheap tail is packed greedily into chunks bounded
    by both a unit budget (the sweep's total divided across
    ``workers × oversubscription`` slots) and a size cap.  ``chunk=1``
    disables packing, ``chunk>=2`` overrides the cap, ``chunk=0`` is
    adaptive.  The grouping is a pure function of task costs — no
    clocks, no randomness — so reruns plan identically.
    """
    units = {index: model.units(task_list[index]) for index in pending}
    order = sorted(pending, key=lambda index: (-units[index], index))
    if chunk == 1 or len(pending) <= 1:
        return [[index] for index in order]
    cap = chunk if chunk >= 2 else _CHUNK_CAP
    target = sum(units.values()) / max(
        1.0, float(workers * _CHUNK_OVERSUBSCRIPTION)
    )
    threshold = target * 0.5
    groups: List[List[int]] = []
    current: List[int] = []
    current_units = 0.0
    for index in order:
        if units[index] >= threshold:
            groups.append([index])
            continue
        current.append(index)
        current_units += units[index]
        if len(current) >= cap or current_units >= target:
            groups.append(current)
            current, current_units = [], 0.0
    if current:
        groups.append(current)
    return groups


def _restore_cell_state(
    payload: Dict[str, Any],
    state: Dict[str, Any],
    chain: SeparationChain,
    diag: Optional[ChainDiagnostics],
    diag_every: int,
    state_every: int,
) -> List[Any]:
    """Validate + apply a decoded scalar state snapshot; return snapshots.

    Raises ``ValueError`` on any mismatch (wrong cell, wrong cadence,
    different diagnostics setup, inconsistent snapshot inventory) so
    the caller can rebuild cold — never resume from the wrong state.
    """
    if state.get("kind") != "cell-state":
        raise ValueError(
            f"expected a cell-state frame, got {state.get('kind')!r}"
        )
    if state.get("key") != payload["key"]:
        raise ValueError("state snapshot key does not match this task")
    if int(state.get("state_every") or 0) != state_every:
        raise ValueError("state snapshot cadence does not match this run")
    if bool(state.get("has_diag")) != (diag is not None) or (
        diag is not None and int(state.get("stride") or 0) != diag_every
    ):
        raise ValueError(
            "state snapshot diagnostics setup does not match this run"
        )
    chain.restore_state(state["chain"])
    if diag is not None:
        diag.restore_state(state["diag"])
    done = [c for c in payload["checkpoints"] if c <= chain.iterations]
    saved = list(state["items"][1:])
    if len(saved) == len(done):
        return saved
    if len(saved) == len(done) - 1 and done[-1] == chain.iterations:
        # The snapshot landed exactly on a checkpoint boundary, before
        # the worker appended that checkpoint's blob; the restored
        # configuration *is* that checkpoint state, so regenerate it.
        return saved + [None]  # caller fills with its own encoder
    raise ValueError(
        f"state snapshot carries {len(saved)} checkpoint blobs "
        f"but {len(done)} checkpoints precede iteration {chain.iterations}"
    )


def _run_cell_body(
    payload: Dict[str, Any],
    instrument: Dict[str, Any],
    fault: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    context = {
        "cell": payload["key"],
        "lam": payload["lam"],
        "gamma": payload["gamma"],
        "replica": payload["replica"],
        "label": payload["label"],
    }
    logger = (
        JsonLogger.collecting(context=context)
        if instrument.get("events")
        else None
    )
    metrics = MetricsRegistry() if instrument.get("metrics") else None
    trace = (
        TraceRecorder(process_name="repro-worker")
        if instrument.get("trace")
        else None
    )

    wall_start = time.perf_counter()
    cell_span_start = trace.now() if trace is not None else 0.0
    if logger is not None:
        logger.debug("cell.start", steps=payload["steps"])

    codec = payload.get("codec", "json")
    adaptive = payload.get("adaptive") or None
    diag_every = int(instrument.get("diag_every") or 0)
    if adaptive and diag_every <= 0:
        # Adaptive termination needs streaming diagnostics even when no
        # explicit observability stride was requested.
        diag_every = int(adaptive.get("stride") or 0) or DiagnosticsConfig().stride

    cache_counted = False

    def build(
        initial: Optional[ParticleSystem] = None,
    ) -> Tuple[ParticleSystem, SeparationChain, Optional[ChainDiagnostics]]:
        nonlocal cache_counted
        if initial is None:
            system, cache_hit = _base_system(payload)
            if metrics is not None and not cache_counted:
                cache_counted = True
                name = (
                    "engine.system_cache_hits"
                    if cache_hit
                    else "engine.system_cache_misses"
                )
                metrics.counter(name).inc()
        else:
            system = initial
        chain = SeparationChain(
            system,
            lam=payload["lam"],
            gamma=payload["gamma"],
            swaps=payload["swaps"],
            seed=payload["seed"],
            # Older payloads (pre-kernel) default to "auto"; either way
            # the trajectory is identical, only the throughput differs.
            backend=payload.get("kernel", "auto"),
        )
        diag = None
        if diag_every > 0:
            diag = ChainDiagnostics(
                DiagnosticsConfig(stride=diag_every),
                metrics=metrics,
                logger=logger,
                trace=trace,
                label=payload["label"] or payload["key"],
            )
        if (
            logger is not None
            or metrics is not None
            or trace is not None
            or diag is not None
        ):
            chain.instrument(
                metrics=metrics, trace=trace, logger=logger, diagnostics=diag
            )
        return system, chain, diag

    system, chain, diag = build()
    if codec == "binary":
        def encode(current_system: ParticleSystem) -> Any:
            return binary_codec.encode_configuration(current_system)
    else:
        def encode(current_system: ParticleSystem) -> Any:
            return configuration_to_json(current_system, sort_nodes=False)

    state_path = payload.get("state_path")
    state_every = int(payload.get("state_every") or 0)
    snapshots: List[Any] = []
    restored_from: Optional[int] = None
    if state_path and os.path.exists(state_path):
        # Warm restore: resume mid-cell from the last durable snapshot.
        # Any defect — corruption, a snapshot from a different task or
        # cadence — falls back to a cold start, the same posture the
        # checkpoint loader takes toward unusable checkpoints.
        try:
            state = binary_codec.decode_state(Path(state_path).read_bytes())
            restored_system = _decode_system_any(state["items"][0])
            system, chain, diag = build(restored_system)
            saved = _restore_cell_state(
                payload, state, chain, diag, diag_every, state_every
            )
            snapshots = [
                blob if blob is not None else encode(system)
                for blob in saved
            ]
            restored_from = chain.iterations
            if logger is not None:
                logger.info(
                    "cell.warm_restore", iteration=restored_from
                )
        except (ValueError, KeyError, TypeError, IndexError, OSError) as error:
            warnings.warn(
                f"ignoring unusable state snapshot "
                f"{Path(state_path).name}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            snapshots = []
            restored_from = None
            system, chain, diag = build()

    if state_path and state_every > 0:
        emitted = 0
        deferred = fault_after_snapshots(fault)

        def state_hook(ch: SeparationChain) -> None:
            nonlocal emitted
            frame: Dict[str, Any] = {
                "kind": "cell-state",
                "key": payload["key"],
                "state_every": state_every,
                "codec": codec,
                "iterations": ch.iterations,
                "chain": ch.export_state(),
                "has_diag": diag is not None,
                "stride": diag_every,
                "items": [binary_codec.encode_configuration(ch.system)]
                + list(snapshots),
            }
            if diag is not None:
                frame["diag"] = diag.state_payload()
            save_bytes(binary_codec.encode_state(frame), state_path)
            emitted += 1
            if metrics is not None:
                metrics.counter("engine.state_snapshots").inc()
            if deferred and emitted == deferred:
                fire_fault(fault)
            if drain_requested():
                raise DrainRequested(
                    f"cell {payload['key']} drained at "
                    f"iteration {ch.iterations}"
                )

        chain.set_state_hook(state_hook, state_every)

    current = chain.iterations
    for index, checkpoint in enumerate(payload["checkpoints"]):
        if index < len(snapshots):
            # Already materialized from the restored state snapshot.
            current = max(current, checkpoint)
            continue
        chain.run(checkpoint - current)
        current = checkpoint
        snapshots.append(encode(system))
    current = max(current, chain.iterations)
    stop_reason = None
    if adaptive:
        # Adaptive termination engages only on the final segment, after
        # every requested snapshot exists — the snapshot-count contract
        # of the checkpoint schema is preserved unconditionally.  The
        # stop-check schedule is anchored to absolute iteration counts,
        # so a warm-restored chain resumes the exact cadence of the
        # uninterrupted run.
        stop = StopCondition.from_payload(adaptive)
        stop_reason = chain.run_until(payload["steps"] - current, stop)
    else:
        chain.run(payload["steps"] - current)
    wall_time = time.perf_counter() - wall_start

    result = {
        "version": CHECKPOINT_VERSION,
        "key": payload["key"],
        "snapshots": snapshots,
        "final": encode(system),
        "iterations": chain.iterations,
        "accepted_moves": chain.accepted_moves,
        "accepted_swaps": chain.accepted_swaps,
        "wall_time": wall_time,
    }
    if restored_from is not None:
        result["restored_from"] = restored_from
    summary = diag.summary() if diag is not None else None
    if stop_reason is not None:
        result["stop_reason"] = stop_reason
        result["budget_steps"] = payload["steps"]
        result["ess_at_stop"] = (summary or {}).get("ess")
    if payload.get("warm_parent"):
        result["warm_parent"] = payload["warm_parent"]
        result["warm_digest"] = payload.get("warm_digest")
    if trace is not None:
        trace.complete("cell", cell_span_start, **context)
        result["trace_events"] = trace.events
    if logger is not None:
        logger.debug(
            "cell.end", seconds=wall_time, iterations=chain.iterations
        )
        result["events"] = logger.records
    if metrics is not None:
        result["metrics"] = metrics.snapshot()
    if diag is not None:
        result["diag"] = summary
    return result


class LazySnapshots(Sequence):
    """Snapshot list that decodes configurations on first access.

    Resume paths usually touch only a result's summary fields (or its
    final system); eagerly rebuilding every intermediate snapshot of a
    snapshot-heavy sweep wastes most of the load time.  This sequence
    keeps the still-encoded blobs and materializes each
    :class:`ParticleSystem` the first time it is indexed, caching it
    thereafter — iteration and ``len`` behave exactly like the eager
    list did.  Binary items were CRC-validated at load time, so a lazy
    decode can only fail if memory is corrupted after the fact.
    """

    def __init__(self, items: Sequence[Any]):
        self._items: List[Any] = list(items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        item = self._items[index]
        if not isinstance(item, ParticleSystem):
            item = _decode_system_any(item)
            self._items[index] = item
        return item


def _decode_result(
    task: CellTask, payload: Dict[str, Any], from_checkpoint: bool = False
) -> CellResult:
    return CellResult(
        task=task,
        system=_decode_system_any(payload["final"]),
        snapshots=LazySnapshots(payload["snapshots"]),
        iterations=int(payload["iterations"]),
        accepted_moves=int(payload["accepted_moves"]),
        accepted_swaps=int(payload["accepted_swaps"]),
        from_checkpoint=from_checkpoint,
        wall_time=float(payload.get("wall_time", 0.0)),
        profile=payload.get("profile"),
        diag=payload.get("diag"),
        stop_reason=payload.get("stop_reason"),
        ess_at_stop=payload.get("ess_at_stop"),
        budget_steps=(
            int(payload["budget_steps"])
            if payload.get("budget_steps") is not None
            else None
        ),
        warm_parent=payload.get("warm_parent"),
        warm_digest=payload.get("warm_digest"),
        restored_from=(
            int(payload["restored_from"])
            if payload.get("restored_from") is not None
            else None
        ),
    )


#: Keys a well-formed result payload must carry (checkpoint schema).
_RESULT_PAYLOAD_KEYS = (
    "key",
    "final",
    "snapshots",
    "iterations",
    "accepted_moves",
    "accepted_swaps",
)


def _validated_result(task: CellTask, payload: Any) -> CellResult:
    """Decode a worker result payload, validating it against ``task``.

    Raises :class:`ResultValidationError` on any structural problem —
    a non-dict return, missing keys, a key that does not match the task
    identity, an iteration count that disagrees with the step budget,
    or snapshot/final JSON that fails to deserialize (the corrupt-result
    case).  Validation runs *before* the payload is checkpointed, so a
    corrupted result can never poison the checkpoint directory.
    """
    if not isinstance(payload, dict):
        raise ResultValidationError(
            f"cell {task.key()} worker returned "
            f"{type(payload).__name__}, expected a payload dict"
        )
    missing = [key for key in _RESULT_PAYLOAD_KEYS if key not in payload]
    if missing:
        raise ResultValidationError(
            f"cell {task.key()} result payload missing keys {missing}"
        )
    if payload["key"] != task.key():
        raise ResultValidationError(
            f"result key {payload['key']!r} does not match "
            f"task {task.key()!r}"
        )
    iterations = int(payload["iterations"])
    if payload.get("stop_reason") is not None:
        # Adaptive runs legitimately stop short of the budget, but can
        # never legally exceed it.
        if iterations > task.steps:
            raise ResultValidationError(
                f"cell {task.key()} ran {iterations} iterations, "
                f"exceeding its budget of {task.steps}"
            )
    elif iterations != task.steps:
        raise ResultValidationError(
            f"cell {task.key()} ran {iterations} iterations, "
            f"expected {task.steps}"
        )
    if len(payload["snapshots"]) != len(task.checkpoints):
        raise ResultValidationError(
            f"cell {task.key()} returned {len(payload['snapshots'])} "
            f"snapshots, expected {len(task.checkpoints)}"
        )
    try:
        # Snapshots are validated *structurally* here: binary blobs by
        # magic + CRC (cheap, no ParticleSystem built — they decode
        # lazily on access), JSON strings by full decode as before.
        # The final configuration always decodes eagerly, so the
        # corrupt-result fault path is caught before checkpointing
        # regardless of codec.
        checked: List[Any] = []
        for snapshot in payload["snapshots"]:
            if isinstance(snapshot, (bytes, bytearray)):
                binary_codec.validate_blob(bytes(snapshot))
                checked.append(snapshot)
            else:
                checked.append(configuration_from_json(snapshot))
        result = _decode_result(task, payload)
        result.snapshots = LazySnapshots(checked)
        return result
    except (ValueError, KeyError, TypeError) as error:
        raise ResultValidationError(
            f"cell {task.key()} result payload is corrupt: {error}"
        ) from error


def checkpoint_path(
    directory: Path, task: CellTask, codec: str = DEFAULT_CODEC
) -> Path:
    """Filesystem location of ``task``'s checkpoint in ``directory``.

    The suffix tracks the codec: ``cell-<key>.bin`` for the binary
    columnar format, ``cell-<key>.json`` for legacy JSON.  Readers
    (:func:`read_checkpoint_payload`, resume) accept either.
    """
    return directory / f"cell-{task.key()}{_CODEC_SUFFIX[codec]}"


def read_checkpoint_payload(path: os.PathLike) -> Dict[str, Any]:
    """Read one checkpoint file, whichever codec wrote it.

    Binary checkpoints come back with their configurations still
    encoded as blobs (decode with
    :func:`repro.util.codec.decode_configuration` or via
    :func:`_decode_result`); JSON checkpoints are returned as before.
    Raises ``ValueError``/``OSError`` on corrupt or unreadable files.
    """
    path = Path(path)
    if path.suffix == _CODEC_SUFFIX["binary"]:
        return binary_codec.decode_checkpoint(path.read_bytes())
    return load_payload(path)


def write_checkpoint_payload(
    payload: Dict[str, Any], path: Path, codec: str
) -> None:
    """Atomically write one checkpoint file in the requested codec."""
    if codec == "binary":
        save_bytes(binary_codec.encode_checkpoint(payload), path)
    else:
        save_payload(payload, path)


def _load_checkpoint(
    directory: Path,
    task: CellTask,
    metrics: Optional[MetricsRegistry] = None,
    codec: str = DEFAULT_CODEC,
) -> Optional[CellResult]:
    """Load a completed cell from disk, or ``None`` if absent/unusable.

    Unreadable or mismatched files are treated as missing (with a
    warning) so that a checkpoint corrupted by a hard kill forces a
    recompute instead of poisoning the resumed sweep — binary
    corruption (bad magic, truncation, CRC mismatch) routes through
    the same recompute path as corrupt JSON.  With ``metrics``
    attached, the outcome is counted under ``engine.checkpoint_hits``
    (usable), ``engine.checkpoint_misses`` (absent), or
    ``engine.checkpoint_recomputes`` (present but unusable).

    The requested ``codec``'s file is preferred, but the other format
    is read transparently as a fallback, so legacy JSON checkpoints
    resume under the binary default (and vice versa).  Snapshots in
    binary checkpoints decode lazily (see :class:`LazySnapshots`);
    JSON checkpoints keep their historical eager decode-and-validate.
    """
    candidates = [checkpoint_path(directory, task, codec)]
    fallback = "json" if codec == "binary" else "binary"
    candidates.append(checkpoint_path(directory, task, fallback))
    path = next((c for c in candidates if c.exists()), None)
    if path is None:
        if metrics is not None:
            metrics.counter("engine.checkpoint_misses").inc()
        return None
    try:
        payload = read_checkpoint_payload(path)
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {payload.get('version')!r} unsupported"
            )
        if payload.get("key") != task.key():
            raise ValueError("checkpoint key does not match task identity")
        result = _decode_result(task, payload, from_checkpoint=True)
        if path.suffix == _CODEC_SUFFIX["json"]:
            list(result.snapshots)  # historical eager validation
        if metrics is not None:
            metrics.counter("engine.checkpoint_hits").inc()
        return result
    except (ValueError, KeyError, OSError) as error:
        if metrics is not None:
            metrics.counter("engine.checkpoint_recomputes").inc()
        warnings.warn(
            f"ignoring unusable checkpoint {path.name}: {error}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def default_workers() -> int:
    """Worker count used when ``workers`` is not given: one per core."""
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Replica-batched scheduling (kernel="batch")
# ---------------------------------------------------------------------------


def _batch_signature(task: CellTask) -> Tuple:
    """Cell identity ignoring replica/seed/label: tasks sharing it can
    run lock-step inside one :class:`~repro.core.batch_kernel.BatchKernel`."""
    return (
        task.lam,
        task.gamma,
        task.steps,
        task.swaps,
        task.checkpoints,
        task.system_json,
    )


def group_batch_tasks(
    task_list: Sequence[CellTask],
    indices: Iterable[int],
    replicas_per_task: int = 0,
) -> List[List[int]]:
    """Partition pending task indices into batch groups.

    Consecutive tasks with the same :func:`_batch_signature` share a
    group (harnesses emit replicas innermost, so whole cells coalesce);
    ``replicas_per_task > 0`` caps the group size, trading kernel
    efficiency for process-pool granularity.  Because each replica
    roots its own RNG stream from its own task seed, the grouping
    *never* affects trajectories — only scheduling.
    """
    if replicas_per_task < 0:
        raise ValueError(
            f"replicas_per_task must be >= 0, got {replicas_per_task}"
        )
    groups: List[List[int]] = []
    last_sig = None
    for index in indices:
        sig = _batch_signature(task_list[index])
        full = bool(
            groups
            and replicas_per_task > 0
            and len(groups[-1]) >= replicas_per_task
        )
        if groups and sig == last_sig and not full:
            groups[-1].append(index)
        else:
            groups.append([index])
            last_sig = sig
    return groups


def batch_group_payload(
    tasks: Sequence[CellTask],
    instrument: Optional[Dict[str, bool]] = None,
    codec: str = "json",
    adaptive: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Worker payload for one batch group (R replicas of one cell).

    ``codec="binary"`` ships the shared initial configuration as a
    columnar blob (decoded once per worker via the warm cache) and
    asks the worker to return blob configurations.  ``adaptive``
    requests ESS-targeted termination (see :func:`adaptive_flags`); the
    group's replicas vote through one
    :class:`~repro.obs.ReplicaSetDiagnostics` and stop together, so
    every member records the same stop reason.  Warm-start provenance
    travels per member.
    """
    head = tasks[0]
    payload: Dict[str, Any] = {
        "lam": head.lam,
        "gamma": head.gamma,
        "steps": head.steps,
        "swaps": head.swaps,
        "system": head.system_json,
        "checkpoints": list(head.checkpoints),
        "members": [
            {
                "key": task.key(),
                "replica": task.replica,
                "seed": task.seed,
                "label": task.label,
                "warm_parent": task.warm_parent,
            }
            for task in tasks
        ],
    }
    if codec == "binary":
        payload["codec"] = "binary"
        payload["system"] = _encoded_system(head.system_json)
        payload["system_digest"] = _system_digest(head.system_json)
    if any(task.warm_parent for task in tasks):
        payload["warm_digest"] = _system_digest(head.system_json)
    if adaptive:
        payload["adaptive"] = dict(adaptive)
    if instrument:
        payload["instrument"] = dict(instrument)
    return payload


def run_batch_group(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Worker entrypoint: advance R replicas of one cell lock-step.

    Builds a single :class:`~repro.core.batch_kernel.BatchKernel` with
    one PCG64 stream per member (rooted at the member's own task seed),
    runs checkpoint segment by checkpoint segment, and returns one
    result payload per member in member order — the same schema
    :func:`run_cell` produces, so checkpointing, decoding, and
    aggregation are shared with the scalar path.  The group's wall time
    is split evenly across members (the replicas genuinely ran
    concurrently, so per-replica attribution is a convention).

    With an ``instrument`` request, per-batch metrics (``batch.*``),
    one ``batch_cell`` trace span, and ``batch.start``/``batch.end``
    log events are attached to the *first* member's payload for the
    parent to merge.

    Fault injection matches against the group's first member key (and
    its label); the ``truncate`` mode drops the last member's payload
    to exercise the engine's payload-count validation.
    """
    fault = plan_fault(
        payload,
        payload["members"][0]["key"],
        payload["members"][0].get("label", ""),
    )
    inject_preemptive_fault(fault)
    heartbeat = _start_heartbeat(payload.get("heartbeat"))
    try:
        return corrupt_batch_payloads(
            fault, _run_batch_group_body(payload, fault)
        )
    finally:
        if heartbeat is not None:
            heartbeat.stop()


def _run_batch_group_body(
    payload: Dict[str, Any], fault: Optional[Dict[str, Any]] = None
) -> List[Dict[str, Any]]:
    from repro.core.batch_kernel import BatchKernel

    instrument = payload.get("instrument") or {}
    members = payload["members"]
    replicas = len(members)
    context = {
        "lam": payload["lam"],
        "gamma": payload["gamma"],
        "replicas": replicas,
        "label": members[0]["label"],
    }
    logger = (
        JsonLogger.collecting(context=context)
        if instrument.get("events")
        else None
    )
    metrics = MetricsRegistry() if instrument.get("metrics") else None
    trace = (
        TraceRecorder(process_name="repro-batch-worker")
        if instrument.get("trace")
        else None
    )

    wall_start = time.perf_counter()
    span_start = trace.now() if trace is not None else 0.0
    if logger is not None:
        logger.debug(
            "batch.start", steps=payload["steps"], replicas=replicas
        )

    codec = payload.get("codec", "json")
    adaptive = payload.get("adaptive") or None
    diag_every = int(instrument.get("diag_every") or 0)
    if adaptive and diag_every <= 0:
        diag_every = int(adaptive.get("stride") or 0) or DiagnosticsConfig().stride

    cache_counted = False

    def build() -> Tuple[Any, Optional[ReplicaSetDiagnostics]]:
        nonlocal cache_counted
        system, cache_hit = _base_system(payload)
        if metrics is not None and not cache_counted:
            cache_counted = True
            name = (
                "engine.system_cache_hits"
                if cache_hit
                else "engine.system_cache_misses"
            )
            metrics.counter(name).inc()
        kernel = BatchKernel(
            system,
            payload["lam"],
            payload["gamma"],
            replicas=replicas,
            seed=[member["seed"] for member in members],
            swaps=payload["swaps"],
        )
        diag = None
        if diag_every > 0:
            # Round-level observer: the kernel samples all R replicas in
            # lock step once per vectorized round, feeding per-replica
            # streams plus the cross-replica split R-hat.  Attaching it
            # never touches the proposal streams (trajectories stay
            # bit-identical; regression tested).
            diag = ReplicaSetDiagnostics(
                replicas,
                DiagnosticsConfig(stride=diag_every),
                metrics=metrics,
                logger=logger,
                trace=trace,
                label=members[0]["label"] or members[0]["key"],
            )
            kernel.observer = diag
        return kernel, diag

    kernel, diag = build()
    if codec == "binary":
        def export(r: int) -> Any:
            # Zero-copy-ish: the kernel's replica state goes straight
            # from arena arrays to columnar blob, never materializing
            # a node dict.
            return binary_codec.encode_columns(*kernel.export_columns(r))
    else:
        def export(r: int) -> Any:
            return configuration_to_json(
                kernel.export_system(r), sort_nodes=False
            )

    state_path = payload.get("state_path")
    state_every = int(payload.get("state_every") or 0)
    snapshots: List[List[Any]] = [[] for _ in range(replicas)]
    done = 0
    restored_from: Optional[int] = None
    if state_path and os.path.exists(state_path):
        # Warm restore: the snapshot was taken at a proposal-window
        # (round) boundary, so restoring the arenas, streams, cursors,
        # and per-replica RNG states and replaying the owed per-replica
        # steps reproduces the uninterrupted run bit for bit.
        try:
            state = binary_codec.decode_state(Path(state_path).read_bytes())
            if state.get("key") != members[0]["key"]:
                raise ValueError("state snapshot key does not match group")
            if int(state.get("state_every") or 0) != state_every:
                raise ValueError(
                    "state snapshot cadence does not match this run"
                )
            if int(state.get("members") or 0) != replicas:
                raise ValueError(
                    "state snapshot member count does not match"
                )
            if bool(state.get("has_diag")) != (diag is not None) or (
                diag is not None
                and int(state.get("stride") or 0) != diag_every
            ):
                raise ValueError(
                    "state snapshot diagnostics setup does not match this run"
                )
            kernel.restore_state(state)
            if diag is not None:
                diag.restore_state(state["diag"])
            done = int(state.get("snapshots_done") or 0)
            items = state.get("items") or []
            if (
                done < 0
                or done > len(payload["checkpoints"])
                or len(items) != done * replicas
            ):
                raise ValueError(
                    "state snapshot checkpoint inventory is inconsistent"
                )
            for r in range(replicas):
                snapshots[r] = list(items[r * done : (r + 1) * done])
            restored_from = int(kernel.iters.min())
            if logger is not None:
                logger.info("batch.warm_restore", iteration=restored_from)
        except (ValueError, KeyError, TypeError, IndexError, OSError) as error:
            warnings.warn(
                f"ignoring unusable state snapshot "
                f"{Path(state_path).name}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            snapshots = [[] for _ in range(replicas)]
            done = 0
            restored_from = None
            kernel, diag = build()

    if state_path and state_every > 0:
        last = int(kernel.iters[0])
        emitted = 0
        deferred = fault_after_snapshots(fault)

        def state_hook(k: Any) -> None:
            # Round-level like the observer: fires with every array at
            # a consistent proposal-window boundary, reads state only.
            nonlocal last, emitted
            if int(k.iters[0]) - last < state_every:
                return
            last = int(k.iters[0])
            frame: Dict[str, Any] = dict(k.export_state())
            frame["key"] = members[0]["key"]
            frame["state_every"] = state_every
            frame["members"] = replicas
            frame["has_diag"] = diag is not None
            frame["stride"] = diag_every
            frame["snapshots_done"] = len(snapshots[0])
            frame["items"] = [blob for row in snapshots for blob in row]
            if diag is not None:
                frame["diag"] = diag.state_payload()
            save_bytes(binary_codec.encode_state(frame), state_path)
            emitted += 1
            if metrics is not None:
                metrics.counter("engine.state_snapshots").inc()
            if deferred and emitted == deferred:
                fire_fault(fault)
            if drain_requested():
                raise DrainRequested(
                    f"batch group {members[0]['key']} drained at "
                    f"iteration {last}"
                )

        kernel.state_hook = state_hook

    for index, checkpoint in enumerate(payload["checkpoints"]):
        if index < done:
            # Already materialized from the restored state snapshot.
            continue
        remaining = checkpoint - kernel.iters
        if (remaining > 0).any():
            # Per-replica targets: a restored group's replicas sit at
            # different counters mid-round; each gets exactly the steps
            # the uninterrupted run still owed it.
            kernel.run(np.maximum(remaining, 0))
        for r in range(replicas):
            snapshots[r].append(export(r))
    stop_reason = None
    if adaptive:
        # Adaptive termination on the final segment: chunk the kernel
        # at verdict-cadence boundaries and let the replicas vote via
        # the group diagnostics' worst-replica fold + cross-replica
        # R-hat.  The whole group stops together, so all members stay
        # lock-step (and share one stop reason).  Chunked runs shift
        # the kernel's proposal refill points, so adaptive batch runs
        # are statistically (not bit-wise) equivalent to fixed-budget
        # ones — the scalar kernels keep bit-exact prefixes.  Verdict
        # boundaries are anchored to the *original* schedule
        # (``base + k·check_every``), so a warm-restored group checks
        # at exactly the points the uninterrupted run would have.
        stop = StopCondition.from_payload(adaptive)
        cap_end = stop.cap(payload["steps"])
        stop_reason = (
            STOP_MAX_ITERATIONS
            if cap_end < payload["steps"]
            else STOP_BUDGET
        )
        check_every = diag.config.stride * diag.config.verdict_every
        base = payload["checkpoints"][-1] if payload["checkpoints"] else 0
        position = int(kernel.iters.max())

        def verdict(pos: int) -> Optional[str]:
            if pos < stop.min_iterations and pos < cap_end:
                return None
            return stop.satisfied(diag.summary(), pos)

        # A snapshot taken in the final round of a verdict segment
        # restores with every replica exactly on the boundary but the
        # verdict still unevaluated — rule on it before dispatching the
        # next segment (the diagnostics state round-tripped, so the
        # verdict matches the uninterrupted run's).
        pending_verdict = (
            restored_from is not None
            and position > base
            and bool((kernel.iters == position).all())
            and (
                position == cap_end
                or (position - base) % check_every == 0
            )
        )
        reason = verdict(position) if pending_verdict else None
        if reason is not None:
            stop_reason = reason
        else:
            while position < cap_end:
                boundary = min(
                    cap_end,
                    base
                    + ((position - base) // check_every + 1) * check_every,
                )
                kernel.run(np.maximum(boundary - kernel.iters, 0))
                position = boundary
                reason = verdict(position)
                if reason is not None:
                    stop_reason = reason
                    break
    else:
        remaining = payload["steps"] - kernel.iters
        if (remaining > 0).any():
            kernel.run(np.maximum(remaining, 0))
    wall_time = time.perf_counter() - wall_start

    results: List[Dict[str, Any]] = []
    for r, member in enumerate(members):
        results.append(
            {
                "version": CHECKPOINT_VERSION,
                "key": member["key"],
                "snapshots": snapshots[r],
                "final": export(r),
                "iterations": int(kernel.iters[r]),
                "accepted_moves": int(kernel.acc_moves[r]),
                "accepted_swaps": int(kernel.acc_swaps[r]),
                "wall_time": wall_time / replicas,
            }
        )
        if restored_from is not None:
            results[r]["restored_from"] = restored_from
        member_diag = diag.member_summary(r) if diag is not None else None
        if member_diag is not None:
            results[r]["diag"] = member_diag
        if stop_reason is not None:
            results[r]["stop_reason"] = stop_reason
            results[r]["budget_steps"] = payload["steps"]
            results[r]["ess_at_stop"] = (member_diag or {}).get("ess")
        if member.get("warm_parent"):
            results[r]["warm_parent"] = member["warm_parent"]
            results[r]["warm_digest"] = payload.get("warm_digest")

    aggregate_steps = int(kernel.iters.sum())
    if metrics is not None:
        metrics.counter("batch.groups").inc()
        metrics.counter("batch.replicas").inc(replicas)
        metrics.counter("batch.steps").inc(aggregate_steps)
        if wall_time > 0.0:
            metrics.gauge("batch.last_replica_steps_per_sec").set(
                aggregate_steps / wall_time
            )
        metrics.histogram("batch.group_seconds").observe(wall_time)
        results[0]["metrics"] = metrics.snapshot()
    if trace is not None:
        trace.complete("batch_cell", span_start, **context)
        results[0]["trace_events"] = trace.events
    if logger is not None:
        logger.debug(
            "batch.end",
            seconds=wall_time,
            replicas=replicas,
            replica_steps_per_sec=(
                aggregate_steps / wall_time if wall_time > 0.0 else None
            ),
        )
        results[0]["events"] = logger.records
    return corrupt_batch_payloads(fault, results)


def _finalize_failures(
    directory: Optional[Path], failures: List[TaskFailure]
) -> None:
    """Persist (or clear) the quarantine manifest after an engine run.

    A run that quarantined cells leaves ``failures.json`` beside the
    checkpoints; a fully successful run removes any stale manifest so
    a ``--resume`` that recomputed every quarantined cell ends clean.
    """
    if directory is None:
        return
    if failures:
        write_failures_manifest(directory, failures)
    else:
        clear_failures_manifest(directory)


def _state_file(directory: Path, key: str) -> Path:
    """Filesystem location of a unit's mid-run state snapshot."""
    return directory / f"cell-{key}.state.bin"


def _heartbeat_file(directory: Path, key: str) -> Path:
    """Filesystem location of a unit's worker heartbeat file."""
    return directory / f"cell-{key}.hb"


def _note_warm_restore(
    obs: Optional[Instrumentation], task: CellTask, result: CellResult
) -> None:
    """Count and log a live cell that warm-restored mid-run."""
    if obs is None or result.restored_from is None:
        return
    if obs.metrics is not None:
        obs.metrics.counter("engine.warm_restores").inc()
    obs.log(
        "cell.warm_restore",
        cell=task.key(),
        label=task.label,
        restored_from=result.restored_from,
        iterations=result.iterations,
    )


def _cleanup_unit_state(directory: Optional[Path], key: str) -> None:
    """Drop a committed unit's state snapshot and heartbeat files.

    The final checkpoint supersedes the mid-run snapshot; removing it
    keeps ``--resume`` from warm-restoring into an already-complete
    cell (and keeps the directory from accumulating debris).
    """
    if directory is None:
        return
    for path in (_state_file(directory, key), _heartbeat_file(directory, key)):
        try:
            path.unlink()
        except OSError:
            pass


def _handle_drain(
    error: DrainInterrupt,
    directory: Optional[Path],
    completed: int,
    failures: List[TaskFailure],
    obs: Optional[Instrumentation],
    drain_timeout: float,
) -> None:
    """Record a graceful-shutdown interrupt before it propagates.

    Writes the resumable ``drain.json`` manifest (pending unit keys +
    completed count), persists any quarantined failures, and emits the
    ``engine.drains`` counter / ``engine.drain`` event + trace span.
    """
    if directory is not None:
        write_drain_manifest(directory, error.pending, completed)
        if failures:
            write_failures_manifest(directory, failures)
    if obs is not None:
        if obs.metrics is not None:
            obs.metrics.counter("engine.drains").inc()
        if obs.trace is not None:
            obs.trace.complete(
                "engine.drain",
                obs.trace.now(),
                pending=len(error.pending),
            )
        obs.log(
            "engine.drain",
            pending=len(error.pending),
            completed=completed,
            drain_timeout=drain_timeout,
        )


def execute_cells(
    tasks: Iterable[CellTask],
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Instrumentation] = None,
    retry: Optional[RetryPolicy] = None,
    failure: Optional[FailurePolicy] = None,
    fault_spec: Optional[Any] = None,
    codec: str = DEFAULT_CODEC,
    schedule: str = "cost",
    chunk: int = 0,
    adaptive: Optional[StopCondition] = None,
    state_every: int = 0,
    drain_timeout: float = 30.0,
) -> List[CellResult]:
    """Run every task and return results in task order.

    Parameters
    ----------
    backend:
        ``"serial"`` runs in-process; ``"process"`` fans out over a
        ``ProcessPoolExecutor``.  Both route each cell through
        :func:`run_cell`, so their results are identical for identical
        tasks.
    workers:
        Pool size for the process backend (default: one per CPU core).
        Ignored by the serial backend.
    checkpoint_dir:
        When given, each completed cell is written there as one file
        in the selected ``codec`` (atomically, so killing the sweep
        never leaves truncated checkpoints).  Stale ``*.tmp``
        leftovers from hard-killed runs are swept on engine start.
    resume:
        Skip tasks whose checkpoint files already exist in
        ``checkpoint_dir`` (required when ``resume=True``), loading
        their recorded results instead of recomputing.  Quarantined
        cells have no checkpoints, so a resume recomputes exactly them.
    progress:
        Optional callback ``(completed_count, total, result)`` invoked
        after every cell, including cells restored from checkpoints.
        (:class:`repro.obs.ProgressReporter` is a ready-made stderr
        implementation with EWMA cell time and ETA.)
    obs:
        Optional :class:`repro.obs.Instrumentation`.  Workers then
        collect structured log events, chain/cell metrics, pid-tagged
        trace spans, and (with ``obs.profile``) a cProfile report; the
        parent merges worker streams, counts checkpoint hits/misses/
        recomputes, and records per-cell wall-time and throughput
        under the ``engine.*`` metric names.  Instrumentation rides
        outside the task identity: checkpoints and trajectories are
        unchanged.
    retry:
        Optional :class:`~repro.experiments.resilience.RetryPolicy`
        (attempt budget, backoff, per-task timeout).  The default
        performs no retries.
    failure:
        Optional :class:`~repro.experiments.resilience.FailurePolicy`.
        The default (``"raise"``) aborts on the first failure — the
        historical behavior; ``"quarantine"`` completes with
        :class:`~repro.experiments.resilience.FailedCell` placeholders
        and a ``failures.json`` manifest instead.
    fault_spec:
        Optional fault-injection spec attached to worker payloads (see
        :mod:`repro.experiments.resilience`); for chaos testing only.
        Rides outside task identity, like ``obs``.
    codec:
        Configuration transport and checkpoint format: ``"binary"``
        (default — packed columnar blobs, ``cell-<key>.bin`` files,
        see :mod:`repro.util.codec`) or ``"json"`` (the legacy text
        path).  Resume reads either format regardless of the setting,
        and trajectories are bit-identical across codecs.
    schedule:
        ``"cost"`` (default) dispatches work longest-expected-first
        using an online-refined ``steps × n`` cost model (metrics
        under ``engine.cost_model.*``); ``"fifo"`` keeps task order.
        Scheduling never affects results, only wall time.
    chunk:
        Cheap-cell chunking under the cost scheduler on the process
        backend: ``0`` packs adaptively, ``1`` disables, ``k >= 2``
        caps chunks at ``k`` cells.  Retry/timeout/quarantine apply to
        a chunk as a unit, like a batch group.
    adaptive:
        Optional :class:`~repro.obs.StopCondition`.  Workers then stop
        each cell early once its streaming diagnostics satisfy the
        condition (``task.steps`` remains the hard budget) and record
        stop metadata — reason, ESS at stop, budget — in results and
        checkpoint headers.  ``None`` (the default) keeps fixed-budget
        execution bit-identical to historical runs.  The cost model
        observes *actual* executed iterations, so its online rates stay
        calibrated when cells stop early.
    state_every:
        Mid-run durability cadence in chain iterations: ``> 0`` makes
        workers persist a crash-consistent ``cell-<key>.state.bin``
        snapshot (configuration, counters, RNG state, diagnostics
        state) at least every ``state_every`` iterations, atomically,
        beside the checkpoints.  A retried or ``--resume``\\ d cell
        warm-restores from its snapshot and replays only the missing
        tail — bit-identical to an uninterrupted run at the same
        cadence, with recompute bounded by the snapshot interval.
        ``0`` (the default) disables snapshots.  Requires
        ``checkpoint_dir``.
    drain_timeout:
        Graceful-shutdown budget in seconds.  On SIGTERM/SIGINT the
        engine stops dispatching, lets in-flight cells reach their next
        durable snapshot (workers raise
        :class:`~repro.experiments.resilience.DrainRequested` there),
        writes a resumable ``drain.json`` manifest, and raises
        :class:`~repro.experiments.resilience.DrainInterrupt`; cells
        still running past the budget are torn down (their last
        snapshot survives).  A second SIGINT aborts immediately.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if codec not in CODECS:
        raise ValueError(
            f"unknown codec {codec!r}; expected one of {CODECS}"
        )
    if schedule not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r}; expected one of {SCHEDULES}"
        )
    if chunk < 0:
        raise ValueError(f"chunk must be >= 0, got {chunk}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    if state_every < 0:
        raise ValueError(f"state_every must be >= 0, got {state_every}")
    if state_every > 0 and checkpoint_dir is None:
        raise ValueError("state_every > 0 requires a checkpoint_dir")
    if drain_timeout <= 0:
        raise ValueError(
            f"drain_timeout must be positive, got {drain_timeout}"
        )
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if obs is not None and not obs.enabled():
        obs = None
    retry = retry if retry is not None else RetryPolicy()
    failure = failure if failure is not None else FailurePolicy()

    task_list = list(tasks)
    for task in task_list:
        task.validate()

    directory: Optional[Path] = None
    if checkpoint_dir is not None:
        directory = Path(checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        sweep_stale_temp_files(directory)

    total = len(task_list)
    engine_started = time.perf_counter()
    engine_span_start = 0.0
    if obs is not None:
        if obs.trace is not None:
            engine_span_start = obs.trace.now()
        obs.log(
            "engine.start",
            cells=total,
            backend=backend,
            workers=workers,
            resume=resume,
            on_failure=failure.mode,
            max_retries=retry.max_retries,
        )

    results: List[Optional[CellResult]] = [None] * total
    completed = 0
    pending: List[int] = []
    for index, task in enumerate(task_list):
        restored = (
            _load_checkpoint(
                directory,
                task,
                metrics=obs.metrics if obs else None,
                codec=codec,
            )
            if resume
            else None
        )
        if restored is not None:
            results[index] = restored
            completed += 1
            if obs is not None:
                _absorb_cell(obs, task, {"key": task.key()}, restored)
            if progress is not None:
                progress(completed, total, restored)
        else:
            pending.append(index)

    instrument = obs.worker_flags() if obs is not None else None
    adaptive_request = adaptive_flags(adaptive, obs)
    effective_workers = workers if workers is not None else default_workers()

    model: Optional[CostModel] = None
    if schedule == "cost":
        model = CostModel(metrics=obs.metrics if obs else None)
        groups = _plan_chunks(
            task_list,
            pending,
            model,
            effective_workers,
            # Chunking only pays on the process backend (it amortizes
            # IPC); serial dispatch has nothing to amortize.
            chunk if backend == "process" else 1,
        )
    else:
        groups = [[index] for index in pending]

    units = []
    for uid, group in enumerate(groups):
        payloads = []
        for index in group:
            payload = task_payload(
                task_list[index],
                instrument,
                codec=codec,
                adaptive=adaptive_request,
            )
            if fault_spec is not None:
                payload["fault"] = fault_spec
            if directory is not None and state_every > 0:
                payload["state_path"] = str(
                    _state_file(directory, task_list[index].key())
                )
                payload["state_every"] = state_every
            payloads.append(payload)
        heartbeat = (
            str(_heartbeat_file(directory, task_list[group[0]].key()))
            if directory is not None and backend == "process"
            else None
        )
        if len(group) == 1:
            if heartbeat is not None:
                payloads[0]["heartbeat"] = heartbeat
            units.append(
                WorkUnit(
                    uid=uid,
                    fn=run_cell,
                    payload=payloads[0],
                    tasks=[task_list[group[0]]],
                    heartbeat=heartbeat,
                )
            )
        else:
            chunk_payload: Dict[str, Any] = {"cells": payloads}
            if heartbeat is not None:
                chunk_payload["heartbeat"] = heartbeat
            units.append(
                WorkUnit(
                    uid=uid,
                    fn=run_cell_chunk,
                    payload=chunk_payload,
                    tasks=[task_list[index] for index in group],
                    heartbeat=heartbeat,
                )
            )

    if obs is not None and model is not None and units:
        chunked = sum(1 for group in groups if len(group) > 1)
        if obs.metrics is not None:
            obs.metrics.gauge("engine.cost_model.units").set(len(units))
            obs.metrics.gauge("engine.cost_model.chunked_units").set(chunked)
        obs.log(
            "engine.schedule",
            cells=len(pending),
            units=len(units),
            chunked_units=chunked,
            schedule=schedule,
        )

    order_key = None
    if model is not None:
        def order_key(unit: WorkUnit) -> float:
            return sum(model.predict_seconds(task) for task in unit.tasks)

    def decode(unit: WorkUnit, raw: Any) -> List[Tuple[Dict, CellResult]]:
        group = groups[unit.uid]
        if len(group) == 1:
            return [(raw, _validated_result(unit.tasks[0], raw))]
        if not isinstance(raw, list):
            raise ResultValidationError(
                f"chunk {unit.key} worker returned "
                f"{type(raw).__name__}, expected a payload list"
            )
        if len(raw) != len(group):
            raise ResultValidationError(
                f"chunk {unit.key} returned {len(raw)} payloads "
                f"for {len(group)} cells"
            )
        return [
            (payload, _validated_result(task_list[index], payload))
            for index, payload in zip(group, raw)
        ]

    def commit(
        unit: WorkUnit, decoded: List[Tuple[Dict, CellResult]]
    ) -> None:
        nonlocal completed
        for index, (payload, result) in zip(groups[unit.uid], decoded):
            task = task_list[index]
            if directory is not None:
                disk_payload = {
                    key: value
                    for key, value in payload.items()
                    if key not in _OBS_PAYLOAD_KEYS
                }
                write_checkpoint_payload(
                    disk_payload,
                    checkpoint_path(directory, task, codec),
                    codec,
                )
            if model is not None:
                # Adaptive cells stop short of their budget; train the
                # EWMA on the units actually executed, not budgeted.
                model.observe(
                    task, result.wall_time, iterations=result.iterations
                )
            _cleanup_unit_state(directory, task.key())
            _note_warm_restore(obs, task, result)
            if obs is not None:
                _absorb_cell(obs, task, payload, result)
            results[index] = result
            completed += 1
            if progress is not None:
                progress(completed, total, result)

    def quarantine(unit: WorkUnit, records: List[TaskFailure]) -> None:
        nonlocal completed
        for index, record in zip(groups[unit.uid], records):
            placeholder = FailedCell(
                task=task_list[index],
                error=record.error,
                kind=record.kind,
                attempts=record.attempts,
            )
            results[index] = placeholder
            completed += 1
            if progress is not None:
                progress(completed, total, placeholder)

    executor = ResilientExecutor(
        backend=backend,
        workers=effective_workers,
        retry=retry,
        failure=failure,
        obs=obs,
        order_key=order_key,
        initializer=warm_worker if codec == "binary" else None,
        initargs=(
            (_warm_entries(unit.payload for unit in units),)
            if codec == "binary"
            else ()
        ),
        drain=drain_event(),
        drain_timeout=drain_timeout,
    )
    reset_drain()
    handlers = install_drain_handlers()
    try:
        executor.run(units, decode, commit, quarantine)
    except DrainInterrupt as error:
        _handle_drain(
            error, directory, completed, executor.failures, obs, drain_timeout
        )
        raise
    except BaseException:
        # Aborted runs persist whatever was already quarantined but
        # never *clear* a manifest they did not complete.
        if directory is not None and executor.failures:
            write_failures_manifest(directory, executor.failures)
        raise
    finally:
        restore_drain_handlers(handlers)
    _finalize_failures(directory, executor.failures)
    if directory is not None:
        clear_drain_manifest(directory)

    if obs is not None:
        elapsed = time.perf_counter() - engine_started
        if obs.metrics is not None:
            obs.metrics.gauge("engine.wall_seconds").set(elapsed)
            obs.metrics.gauge("engine.cells_total").set(total)
        if obs.trace is not None:
            obs.trace.complete(
                "execute_cells",
                engine_span_start,
                cells=total,
                backend=backend,
            )
        obs.log(
            "engine.done",
            cells=total,
            seconds=elapsed,
            failed=len(executor.failures),
        )

    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def _absorb_cell(
    obs: Instrumentation,
    task: CellTask,
    payload: Dict[str, Any],
    result: CellResult,
) -> None:
    """Fold one finished (or restored) cell into parent instrumentation.

    Worker log events are re-emitted in timestamp order with their
    original pid, worker trace events are stitched into the parent
    recorder, and worker metrics merge into the parent registry; the
    parent then adds its own per-cell engine metrics — a histogram of
    wall-times, throughput gauges, and one ``engine.cells`` series
    entry carrying the cell's identity, wall-time, and steps/sec.
    """
    wall = result.wall_time
    throughput = result.iterations / wall if wall > 0.0 else None
    key = payload.get("key", "")
    if obs.metrics is not None:
        worker_snapshot = payload.get("metrics")
        if worker_snapshot:
            obs.metrics.merge(worker_snapshot)
        obs.metrics.counter("engine.cells_completed").inc()
        obs.metrics.counter("engine.steps").inc(result.iterations)
        if wall > 0.0:
            obs.metrics.histogram("engine.cell_seconds").observe(wall)
            obs.metrics.gauge("engine.last_cell_steps_per_sec").set(throughput)
        obs.metrics.series("engine.cells").append(
            {
                "cell": key,
                "label": task.label,
                "lam": task.lam,
                "gamma": task.gamma,
                "replica": task.replica,
                "iterations": result.iterations,
                "accepted_moves": result.accepted_moves,
                "accepted_swaps": result.accepted_swaps,
                "wall_time": wall,
                "steps_per_sec": throughput,
                "from_checkpoint": result.from_checkpoint,
                "stop_reason": result.stop_reason,
                "budget_steps": result.budget_steps,
                "ess_at_stop": result.ess_at_stop,
                "warm_parent": result.warm_parent,
                "restored_from": result.restored_from,
            }
        )
        diag = result.diag
        if diag:
            obs.metrics.series("diag.cells").append(
                {
                    "cell": key,
                    "label": task.label,
                    "lam": task.lam,
                    "gamma": task.gamma,
                    "replica": task.replica,
                    "iteration": diag.get("iteration"),
                    "samples": diag.get("samples"),
                    "ess": diag.get("ess"),
                    "tau": diag.get("tau"),
                    "geweke": diag.get("geweke"),
                    "rhat": diag.get("rhat"),
                    "acceptance_rate": diag.get("acceptance_rate"),
                    "stalled": diag.get("stalled"),
                    "converged": diag.get("converged"),
                    "ess_min": diag.get("ess_min"),
                }
            )
    if result.diag and obs.logger is not None:
        obs.logger.info(
            "cell.convergence",
            cell=key,
            label=task.label,
            converged=result.diag.get("converged"),
            stalled=result.diag.get("stalled"),
            ess=result.diag.get("ess"),
            rhat=result.diag.get("rhat"),
            reasons=result.diag.get("reasons"),
            stop_reason=result.stop_reason,
        )
    if obs.trace is not None and payload.get("trace_events"):
        obs.trace.extend(payload["trace_events"])
    if obs.logger is not None:
        worker_events = payload.get("events")
        if worker_events:
            for record in merge_records(worker_events):
                obs.logger.emit(record)
        obs.logger.info(
            "cell.done",
            cell=key,
            label=task.label,
            lam=task.lam,
            gamma=task.gamma,
            replica=task.replica,
            iterations=result.iterations,
            wall_time=wall,
            steps_per_sec=throughput,
            from_checkpoint=result.from_checkpoint,
        )
    if result.profile:
        if obs.logger is not None:
            obs.logger.info("cell.profile", cell=key, profile=result.profile)
        else:
            sys.stderr.write(result.profile)


@dataclass
class BatchRunner:
    """Schedule whole cells (R replicas each) onto batch kernels.

    The scalar engine (:func:`execute_cells`) fans out one process task
    per *replica*; this runner fans out one task per *cell group*, each
    advancing up to ``replicas_per_task`` replicas lock-step inside one
    :class:`~repro.core.batch_kernel.BatchKernel` (0 = no cap: one
    kernel per cell).  Everything else — per-replica checkpoint files,
    resume semantics, result ordering, progress callbacks, and the
    ``engine.*`` observability stream — matches the scalar engine, so
    harnesses can swap runners without changing aggregation.  Batch
    workers additionally report per-batch ``batch.*`` metrics and a
    ``batch_cell`` trace span per group.
    """

    backend: str = "serial"
    workers: Optional[int] = None
    replicas_per_task: int = 0
    checkpoint_dir: Optional[os.PathLike] = None
    resume: bool = False
    progress: Optional[ProgressCallback] = None
    obs: Optional[Instrumentation] = None
    retry: Optional[RetryPolicy] = None
    failure: Optional[FailurePolicy] = None
    fault_spec: Optional[Any] = None
    codec: str = DEFAULT_CODEC
    schedule: str = "cost"
    adaptive: Optional[StopCondition] = None
    state_every: int = 0
    drain_timeout: float = 30.0

    def run(self, tasks: Iterable[CellTask]) -> List[CellResult]:
        """Execute every task and return results in task order.

        The retry/failure policies apply at *group* granularity: a
        worker exception, timeout, or malformed return (including the
        historical silent-truncation bug — a worker returning fewer
        payloads than the group has members, now a hard
        :class:`~repro.experiments.resilience.ResultValidationError`)
        fails the whole group, which is then recomputed or quarantined
        as a unit.
        """
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if self.codec not in CODECS:
            raise ValueError(
                f"unknown codec {self.codec!r}; expected one of {CODECS}"
            )
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; "
                f"expected one of {SCHEDULES}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")
        if self.state_every < 0:
            raise ValueError(
                f"state_every must be >= 0, got {self.state_every}"
            )
        if self.state_every > 0 and self.checkpoint_dir is None:
            raise ValueError("state_every > 0 requires a checkpoint_dir")
        if self.drain_timeout <= 0:
            raise ValueError(
                f"drain_timeout must be positive, got {self.drain_timeout}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        obs = self.obs
        if obs is not None and not obs.enabled():
            obs = None
        retry = self.retry if self.retry is not None else RetryPolicy()
        failure = self.failure if self.failure is not None else FailurePolicy()

        task_list = list(tasks)
        for task in task_list:
            task.validate()

        directory: Optional[Path] = None
        if self.checkpoint_dir is not None:
            directory = Path(self.checkpoint_dir)
            directory.mkdir(parents=True, exist_ok=True)
            sweep_stale_temp_files(directory)

        total = len(task_list)
        engine_started = time.perf_counter()
        engine_span_start = 0.0
        if obs is not None:
            if obs.trace is not None:
                engine_span_start = obs.trace.now()
            obs.log(
                "engine.start",
                cells=total,
                backend=self.backend,
                workers=self.workers,
                resume=self.resume,
                mode="batch",
                replicas_per_task=self.replicas_per_task,
                on_failure=failure.mode,
                max_retries=retry.max_retries,
            )

        results: List[Optional[CellResult]] = [None] * total
        completed = 0
        pending: List[int] = []
        for index, task in enumerate(task_list):
            restored = (
                _load_checkpoint(
                    directory,
                    task,
                    metrics=obs.metrics if obs else None,
                    codec=self.codec,
                )
                if self.resume
                else None
            )
            if restored is not None:
                results[index] = restored
                completed += 1
                if obs is not None:
                    _absorb_cell(obs, task, {"key": task.key()}, restored)
                if self.progress is not None:
                    self.progress(completed, total, restored)
            else:
                pending.append(index)

        instrument = obs.worker_flags() if obs is not None else None
        adaptive_request = adaptive_flags(self.adaptive, obs)
        groups = group_batch_tasks(
            task_list, pending, self.replicas_per_task
        )

        model: Optional[CostModel] = None
        if self.schedule == "cost":
            model = CostModel(metrics=obs.metrics if obs else None)

        units = []
        for uid, group in enumerate(groups):
            payload = batch_group_payload(
                [task_list[i] for i in group],
                instrument,
                codec=self.codec,
                adaptive=adaptive_request,
            )
            if self.fault_spec is not None:
                payload["fault"] = self.fault_spec
            group_key = task_list[group[0]].key()
            if directory is not None and self.state_every > 0:
                # One snapshot per group: the kernel's replicas advance
                # lock-step, so their state serializes as one frame.
                payload["state_path"] = str(_state_file(directory, group_key))
                payload["state_every"] = self.state_every
            heartbeat = (
                str(_heartbeat_file(directory, group_key))
                if directory is not None and self.backend == "process"
                else None
            )
            if heartbeat is not None:
                payload["heartbeat"] = heartbeat
            units.append(
                WorkUnit(
                    uid=uid,
                    fn=run_batch_group,
                    payload=payload,
                    tasks=[task_list[i] for i in group],
                    heartbeat=heartbeat,
                )
            )

        order_key = None
        if model is not None:
            def order_key(unit: WorkUnit) -> float:
                return sum(
                    model.predict_seconds(task) for task in unit.tasks
                )

        def decode(unit: WorkUnit, raw: Any) -> List[Tuple[Dict, CellResult]]:
            group = groups[unit.uid]
            if not isinstance(raw, list):
                raise ResultValidationError(
                    f"batch group {unit.key} worker returned "
                    f"{type(raw).__name__}, expected a payload list"
                )
            if len(raw) != len(group):
                # Previously this mismatch was silently zip-truncated,
                # leaving None results that only tripped the final
                # assert; now the whole group is recomputed.
                raise ResultValidationError(
                    f"batch group {unit.key} returned {len(raw)} payloads "
                    f"for {len(group)} members"
                )
            return [
                (payload, _validated_result(task_list[index], payload))
                for index, payload in zip(group, raw)
            ]

        def commit(
            unit: WorkUnit, decoded: List[Tuple[Dict, CellResult]]
        ) -> None:
            nonlocal completed
            for index, (payload, result) in zip(groups[unit.uid], decoded):
                task = task_list[index]
                if directory is not None:
                    disk_payload = {
                        key: value
                        for key, value in payload.items()
                        if key not in _OBS_PAYLOAD_KEYS
                    }
                    write_checkpoint_payload(
                        disk_payload,
                        checkpoint_path(directory, task, self.codec),
                        self.codec,
                    )
                if model is not None:
                    model.observe(
                        task, result.wall_time, iterations=result.iterations
                    )
                _note_warm_restore(obs, task, result)
                if obs is not None:
                    _absorb_cell(obs, task, payload, result)
                results[index] = result
                completed += 1
                if self.progress is not None:
                    self.progress(completed, total, result)
            # The group shares one state snapshot, keyed by its first
            # member; every member checkpoint is now committed.
            _cleanup_unit_state(directory, unit.tasks[0].key())

        def quarantine(unit: WorkUnit, records: List[TaskFailure]) -> None:
            nonlocal completed
            for index, record in zip(groups[unit.uid], records):
                placeholder = FailedCell(
                    task=task_list[index],
                    error=record.error,
                    kind=record.kind,
                    attempts=record.attempts,
                )
                results[index] = placeholder
                completed += 1
                if self.progress is not None:
                    self.progress(completed, total, placeholder)

        executor = ResilientExecutor(
            backend=self.backend,
            workers=(
                self.workers if self.workers is not None else default_workers()
            ),
            retry=retry,
            failure=failure,
            obs=obs,
            order_key=order_key,
            initializer=warm_worker if self.codec == "binary" else None,
            initargs=(
                (_warm_entries(unit.payload for unit in units),)
                if self.codec == "binary"
                else ()
            ),
            drain=drain_event(),
            drain_timeout=self.drain_timeout,
        )
        reset_drain()
        handlers = install_drain_handlers()
        try:
            executor.run(units, decode, commit, quarantine)
        except DrainInterrupt as error:
            _handle_drain(
                error,
                directory,
                completed,
                executor.failures,
                obs,
                self.drain_timeout,
            )
            raise
        except BaseException:
            if directory is not None and executor.failures:
                write_failures_manifest(directory, executor.failures)
            raise
        finally:
            restore_drain_handlers(handlers)
        _finalize_failures(directory, executor.failures)
        if directory is not None:
            clear_drain_manifest(directory)

        if obs is not None:
            elapsed = time.perf_counter() - engine_started
            if obs.metrics is not None:
                obs.metrics.gauge("engine.wall_seconds").set(elapsed)
                obs.metrics.gauge("engine.cells_total").set(total)
                obs.metrics.gauge("engine.batch_groups").set(len(groups))
            if obs.trace is not None:
                obs.trace.complete(
                    "execute_cells",
                    engine_span_start,
                    cells=total,
                    backend=self.backend,
                    mode="batch",
                )
            obs.log(
                "engine.done",
                cells=total,
                seconds=elapsed,
                failed=len(executor.failures),
            )

        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]


def dispatch_cells(
    tasks: Iterable[CellTask],
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Instrumentation] = None,
    replicas_per_task: int = 0,
    retry: Optional[RetryPolicy] = None,
    failure: Optional[FailurePolicy] = None,
    fault_spec: Optional[Any] = None,
    codec: str = DEFAULT_CODEC,
    schedule: str = "cost",
    chunk: int = 0,
    adaptive: Optional[StopCondition] = None,
    warm_start: str = "off",
    state_every: int = 0,
    drain_timeout: float = 30.0,
) -> List[CellResult]:
    """Route tasks to the scalar engine or the batch runner by kernel.

    Harness-facing front door: tasks whose ``kernel`` is ``"batch"``
    run through :class:`BatchRunner` (whole cells per task), everything
    else through :func:`execute_cells` (one replica per task).  Mixed
    batches are rejected — a harness emits one kernel per run.
    ``retry``/``failure``/``fault_spec`` configure the resilience layer
    on either path (see :mod:`repro.experiments.resilience`);
    ``codec``/``schedule``/``chunk`` configure the transport codec and
    cost-model scheduling (see :func:`execute_cells` — none of them
    affect results, only speed).

    ``adaptive`` requests ESS-targeted early termination (see
    :func:`execute_cells`).  ``warm_start="ladder"`` additionally
    replaces the flat longest-first schedule with a dependency DAG:
    the (λ, γ) grid is planned as anti-diagonal waves
    (:func:`repro.experiments.costmodel.plan_ladder`) and each cell's
    initial configuration is swapped for the equilibrated final
    configuration of its nearest already-finished neighbor, per
    replica, cutting burn-in.  Warm-started cells are *statistically*
    — not bit-wise — equivalent to cold ones (different initial
    condition, same stationary distribution), so the ladder is opt-in
    and composes with ``adaptive``, where skipping burn-in is what
    converts warm starts into wall-clock savings.
    """
    if warm_start not in WARM_STARTS:
        raise ValueError(
            f"unknown warm_start {warm_start!r}; "
            f"expected one of {WARM_STARTS}"
        )
    task_list = list(tasks)
    kwargs = dict(
        backend=backend,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        progress=progress,
        obs=obs,
        replicas_per_task=replicas_per_task,
        retry=retry,
        failure=failure,
        fault_spec=fault_spec,
        codec=codec,
        schedule=schedule,
        chunk=chunk,
        adaptive=adaptive,
        state_every=state_every,
        drain_timeout=drain_timeout,
    )
    if warm_start == "ladder" and len(task_list) > 1:
        return _dispatch_ladder(task_list, **kwargs)
    batch_flags = {task.kernel == "batch" for task in task_list}
    if batch_flags == {True}:
        return BatchRunner(
            backend=backend,
            workers=workers,
            replicas_per_task=replicas_per_task,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            progress=progress,
            obs=obs,
            retry=retry,
            failure=failure,
            fault_spec=fault_spec,
            codec=codec,
            schedule=schedule,
            adaptive=adaptive,
            state_every=state_every,
            drain_timeout=drain_timeout,
        ).run(task_list)
    if True in batch_flags:
        raise ValueError(
            "cannot mix kernel='batch' tasks with scalar-kernel tasks "
            "in one dispatch"
        )
    return execute_cells(
        task_list,
        backend=backend,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        progress=progress,
        obs=obs,
        retry=retry,
        failure=failure,
        fault_spec=fault_spec,
        codec=codec,
        schedule=schedule,
        chunk=chunk,
        adaptive=adaptive,
        state_every=state_every,
        drain_timeout=drain_timeout,
    )


def _dispatch_ladder(
    task_list: List[CellTask],
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Instrumentation] = None,
    **kwargs: Any,
) -> List[CellResult]:
    """Wave-by-wave dependency-DAG dispatch with neighbor warm starts.

    Waves come from :func:`repro.experiments.costmodel.plan_ladder`
    (anti-diagonals of the (λ, γ) rank grid, rooted at the smallest
    parameters — the fastest-mixing corner by Theorems 1–2's phase
    structure).  Within a wave every cell's parents are finished, so
    each task's ``system_json`` is replaced with its parent's
    equilibrated final configuration (same replica; the γ-neighbor is
    preferred, then the λ-neighbor; cells with no finished parent run
    cold).  The provenance rides in ``warm_parent`` and — because the
    configuration digest participates in the task key — a stale parent
    automatically invalidates any checkpoint written for the child.

    Quarantined parents simply leave their children cold; failure
    handling inside each wave is unchanged.
    """
    waves = plan_ladder(task_list)
    total = len(task_list)
    results: List[Optional[CellResult]] = [None] * total
    lams = sorted({task.lam for task in task_list})
    gammas = sorted({task.gamma for task in task_list})
    lam_prev = {lam: lams[i - 1] for i, lam in enumerate(lams) if i > 0}
    gamma_prev = {g: gammas[i - 1] for i, g in enumerate(gammas) if i > 0}
    finished: Dict[Tuple[float, float, int], Tuple[str, str]] = {}

    if obs is not None:
        obs.log(
            "engine.ladder",
            cells=total,
            waves=len(waves),
            lams=len(lams),
            gammas=len(gammas),
        )
        if obs.metrics is not None:
            obs.metrics.gauge("engine.ladder_waves").set(len(waves))

    done_before = 0
    for wave in waves:
        warmed: List[CellTask] = []
        for index in wave:
            task = task_list[index]
            for parent_cell in (
                (task.lam, gamma_prev.get(task.gamma)),
                (lam_prev.get(task.lam), task.gamma),
            ):
                if parent_cell[0] is None or parent_cell[1] is None:
                    continue
                entry = finished.get((*parent_cell, task.replica))
                if entry is not None:
                    parent_key, parent_json = entry
                    task = dataclass_replace(
                        task,
                        system_json=parent_json,
                        warm_parent=parent_key,
                    )
                    break
            warmed.append(task)

        wave_progress: Optional[ProgressCallback] = None
        if progress is not None:
            def wave_progress(
                done: int,
                _wave_total: int,
                result: CellResult,
                _base: int = done_before,
            ) -> None:
                progress(_base + done, total, result)

        wave_results = dispatch_cells(
            warmed,
            progress=wave_progress,
            obs=obs,
            warm_start="off",
            **kwargs,
        )
        for index, task, result in zip(wave, warmed, wave_results):
            results[index] = result
            if isinstance(result, FailedCell):
                continue
            finished[(task.lam, task.gamma, task.replica)] = (
                task.key(),
                configuration_to_json(result.system, sort_nodes=False),
            )
        done_before += len(wave)

    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def resolve_backend(backend: Optional[str], workers: Optional[int]) -> str:
    """CLI convenience: pick a backend from ``--backend``/``--workers``.

    An explicit backend wins; otherwise requesting more than one worker
    implies the process pool and anything else stays serial.
    """
    if backend is not None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        return backend
    if workers is not None and workers > 1:
        return "process"
    return "serial"


def group_by_cell(
    results: Sequence[CellResult], replicas: int
) -> List[List[CellResult]]:
    """Split a flat, task-ordered result list into per-cell replica groups.

    Harnesses emit tasks replica-innermost; this restores the
    ``cells × replicas`` nesting for aggregation.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if len(results) % replicas:
        raise ValueError(
            f"{len(results)} results do not divide into groups of {replicas}"
        )
    return [
        list(results[start : start + replicas])
        for start in range(0, len(results), replicas)
    ]
