"""Process-pool parallel execution backend for experiment sweeps.

Every quantitative result in the paper (Figure 2's evolution traces,
Figure 3's λ–γ phase diagram, the finite-size scaling study) reduces to
the same shape of work: run the separation chain from a fixed initial
configuration for a fixed number of steps under fixed ``(λ, γ)`` — once
per grid cell per replica.  Those cells are embarrassingly parallel, so
this module factors the execution out of the individual harnesses:

* :class:`CellTask` — one self-contained unit of work: the biases, the
  replica index, a *derived integer seed*, the step budget, optional
  intermediate snapshot checkpoints, and the initial configuration
  serialized with order-preserving JSON (dict order determines the
  chain's particle indexing, so an order-preserving round trip makes a
  worker's trajectory bit-identical to an in-process run).
* :func:`run_cell` — the worker entrypoint.  Importable at module top
  level so ``ProcessPoolExecutor`` can ship it to workers; it speaks
  plain JSON-able payload dicts (see :mod:`repro.util.serialization`)
  rather than live objects.
* :func:`execute_cells` — fan tasks out over a ``serial`` or ``process``
  backend, optionally writing one JSON checkpoint file per completed
  cell and, with ``resume=True``, skipping cells whose checkpoints are
  already on disk — a killed sweep re-run with ``--resume`` completes
  only the missing cells.

Because each task carries its own deterministically derived seed (see
:func:`repro.util.rng.derive_seed`), the two backends produce identical
results for the same inputs; the test suite asserts this cell by cell.

Observability (:mod:`repro.obs`) threads through both backends: pass an
:class:`repro.obs.Instrumentation` to :func:`execute_cells` and workers
buffer structured log events, chain metrics, and pid-tagged trace spans
inside their result payloads; the parent merges the streams, counts
checkpoint hits/misses/recomputes, and records per-cell wall-time and
throughput.  Instrumentation is excluded from task identity and
stripped from checkpoint files, so instrumented and uninstrumented
sweeps are interchangeable on disk and bit-identical in trajectory.

Fault tolerance (:mod:`repro.experiments.resilience`) threads through
the same way: a :class:`~repro.experiments.resilience.RetryPolicy` and
:class:`~repro.experiments.resilience.FailurePolicy` control per-cell
retries with backoff, a per-task timeout watchdog, bounded process-pool
rebuilds on ``BrokenProcessPool``, and — under ``quarantine`` — partial
completion with :class:`~repro.experiments.resilience.FailedCell`
placeholders plus a ``failures.json`` manifest in the checkpoint dir.
Because retried cells re-run identical payloads with identical derived
seeds, a sweep that survives worker crashes is bit-identical to an
undisturbed one.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.separation_chain import CHAIN_BACKENDS, SeparationChain
from repro.experiments.resilience import (
    FailedCell,
    FailurePolicy,
    ResilientExecutor,
    ResultValidationError,
    RetryPolicy,
    TaskFailure,
    WorkUnit,
    clear_failures_manifest,
    corrupt_batch_payloads,
    corrupt_result_payload,
    inject_preemptive_fault,
    plan_fault,
    write_failures_manifest,
)
from repro.obs import (
    ChainDiagnostics,
    DiagnosticsConfig,
    Instrumentation,
    JsonLogger,
    MetricsRegistry,
    ReplicaSetDiagnostics,
    TraceRecorder,
    merge_records,
    run_profiled,
)
from repro.system.configuration import ParticleSystem
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    load_payload,
    save_payload,
    sweep_stale_temp_files,
)

#: Execution backends understood by :func:`execute_cells`.
BACKENDS = ("serial", "process")

#: Schema version of the per-cell checkpoint payloads.
CHECKPOINT_VERSION = 1

#: Callback signature: ``progress(index, total, result)`` after each cell.
ProgressCallback = Callable[[int, int, "CellResult"], None]


@dataclass(frozen=True)
class CellTask:
    """One sweep cell: a fully self-contained chain run.

    ``checkpoints`` lists iteration counts (strictly increasing, each
    ``<= steps``) at which the worker snapshots the configuration; the
    final configuration after ``steps`` iterations is always returned.
    ``label`` is free-form metadata for reporting and does not affect
    the task identity (it is excluded from :meth:`key`).  ``kernel``
    selects the chain's step kernel (``"auto"``/``"grid"``/``"dict"``/
    ``"batch"``, see
    :class:`repro.core.separation_chain.SeparationChain`); the scalar
    kernels are bit-identical in trajectory, so — like ``label`` — it
    rides *outside* the task identity and checkpoints written under one
    kernel resume cleanly under another.  ``"batch"`` is a distinct RNG
    regime (statistically, not bit-wise, equivalent); its checkpoints
    are still valid chain samples, so cross-kernel resume remains
    sound for ensemble statistics.
    """

    lam: float
    gamma: float
    replica: int
    seed: int
    steps: int
    swaps: bool = True
    system_json: str = ""
    checkpoints: Tuple[int, ...] = ()
    label: str = ""
    kernel: str = "auto"

    def key(self) -> str:
        """Stable identity digest used to name checkpoint files.

        Covers every field that affects the trajectory (including a
        digest of the initial configuration), so resuming against a
        checkpoint directory written by a *different* sweep recomputes
        rather than silently reusing stale cells.  ``kernel`` is
        deliberately excluded: the grid and dict kernels are
        trajectory-identical, so cells checkpointed before the grid
        kernel existed stay valid under it (and vice versa).
        """
        system_digest = hashlib.sha256(self.system_json.encode()).hexdigest()
        blob = "|".join(
            [
                repr(self.lam),
                repr(self.gamma),
                str(self.replica),
                str(self.seed),
                str(self.steps),
                str(int(self.swaps)),
                ",".join(str(c) for c in self.checkpoints),
                system_digest,
            ]
        ).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    def validate(self) -> None:
        """Raise ``ValueError`` on malformed tasks before any fan-out."""
        if not self.system_json:
            raise ValueError("task is missing its initial configuration")
        if self.kernel not in CHAIN_BACKENDS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {CHAIN_BACKENDS}"
            )
        if self.steps < 0:
            raise ValueError(f"steps must be non-negative, got {self.steps}")
        previous = -1
        for checkpoint in self.checkpoints:
            if checkpoint <= previous:
                raise ValueError(
                    f"checkpoints must be strictly increasing, got "
                    f"{self.checkpoints}"
                )
            previous = checkpoint
        if self.checkpoints and self.checkpoints[-1] > self.steps:
            raise ValueError(
                f"checkpoint {self.checkpoints[-1]} exceeds steps {self.steps}"
            )


@dataclass
class CellResult:
    """Outcome of one cell: final system, snapshots, and chain counters.

    ``wall_time`` is the worker-measured execution time in seconds
    (zero for legacy checkpoints written before it was recorded);
    ``profile`` carries the cProfile report text when per-cell
    profiling was requested; ``diag`` carries the worker's streaming
    convergence summary (:mod:`repro.obs.convergence`) when a
    ``diag_every`` stride was requested — ``None`` otherwise, and for
    results restored from checkpoints (diagnostics ride outside the
    checkpoint schema).
    """

    task: CellTask
    system: ParticleSystem
    snapshots: List[ParticleSystem] = field(default_factory=list)
    iterations: int = 0
    accepted_moves: int = 0
    accepted_swaps: int = 0
    from_checkpoint: bool = False
    wall_time: float = 0.0
    profile: Optional[str] = None
    diag: Optional[Dict[str, Any]] = None


#: Side-channel payload keys (observability and fault injection):
#: stripped before checkpointing so instrumented, fault-injected, and
#: plain sweeps all write identical checkpoints.
_OBS_PAYLOAD_KEYS = (
    "events",
    "trace_events",
    "metrics",
    "profile",
    "instrument",
    "fault",
    "diag",
)


def task_payload(
    task: CellTask, instrument: Optional[Dict[str, bool]] = None
) -> Dict[str, Any]:
    """The JSON-able payload shipped to worker processes for ``task``.

    ``instrument`` is the optional observability request (see
    :meth:`repro.obs.Instrumentation.worker_flags`); it rides outside
    the task identity, so instrumentation never changes checkpoint
    keys or trajectories.
    """
    payload = {
        "key": task.key(),
        "lam": task.lam,
        "gamma": task.gamma,
        "replica": task.replica,
        "seed": task.seed,
        "steps": task.steps,
        "swaps": task.swaps,
        "system": task.system_json,
        "checkpoints": list(task.checkpoints),
        "label": task.label,
        "kernel": task.kernel,
    }
    if instrument:
        payload["instrument"] = dict(instrument)
    return payload


def run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entrypoint: execute one cell payload, return a result payload.

    Module-level (picklable) by design.  Rebuilds the initial
    configuration from its order-preserving JSON, runs the chain with
    the task's derived seed, snapshots at each requested checkpoint,
    and serializes everything back to plain JSON-able data.

    When the payload carries an ``instrument`` request the worker
    builds *local* buffering instruments (list-sink logger, its own
    metrics registry and trace recorder — trace events tagged with the
    worker's pid) and returns their contents in the result payload for
    the parent to merge.  A ``profile`` request wraps the whole cell in
    cProfile and attaches the report text.

    Fault injection (a ``fault`` payload key or the
    :data:`repro.experiments.resilience.FAULT_ENV` environment
    variable) can crash, kill, hang, or corrupt this worker for chaos
    testing; like ``instrument`` it rides outside the task identity.
    """
    fault = plan_fault(payload, payload["key"], payload.get("label", ""))
    inject_preemptive_fault(fault)
    instrument = payload.get("instrument") or {}
    if instrument.get("profile"):
        result, profile_text = run_profiled(_run_cell_body, payload, instrument)
        result["profile"] = profile_text
        return corrupt_result_payload(fault, result)
    return corrupt_result_payload(fault, _run_cell_body(payload, instrument))


def _run_cell_body(
    payload: Dict[str, Any], instrument: Dict[str, Any]
) -> Dict[str, Any]:
    context = {
        "cell": payload["key"],
        "lam": payload["lam"],
        "gamma": payload["gamma"],
        "replica": payload["replica"],
        "label": payload["label"],
    }
    logger = (
        JsonLogger.collecting(context=context)
        if instrument.get("events")
        else None
    )
    metrics = MetricsRegistry() if instrument.get("metrics") else None
    trace = (
        TraceRecorder(process_name="repro-worker")
        if instrument.get("trace")
        else None
    )

    wall_start = time.perf_counter()
    cell_span_start = trace.now() if trace is not None else 0.0
    if logger is not None:
        logger.debug("cell.start", steps=payload["steps"])

    system = configuration_from_json(payload["system"])
    chain = SeparationChain(
        system,
        lam=payload["lam"],
        gamma=payload["gamma"],
        swaps=payload["swaps"],
        seed=payload["seed"],
        # Older payloads (pre-kernel) default to "auto"; either way the
        # trajectory is identical, only the throughput differs.
        backend=payload.get("kernel", "auto"),
    )
    diag = None
    diag_every = int(instrument.get("diag_every") or 0)
    if diag_every > 0:
        diag = ChainDiagnostics(
            DiagnosticsConfig(stride=diag_every),
            metrics=metrics,
            logger=logger,
            trace=trace,
            label=payload["label"] or payload["key"],
        )
    if (
        logger is not None
        or metrics is not None
        or trace is not None
        or diag is not None
    ):
        chain.instrument(
            metrics=metrics, trace=trace, logger=logger, diagnostics=diag
        )
    snapshots: List[str] = []
    current = 0
    for checkpoint in payload["checkpoints"]:
        chain.run(checkpoint - current)
        current = checkpoint
        snapshots.append(configuration_to_json(system, sort_nodes=False))
    chain.run(payload["steps"] - current)
    wall_time = time.perf_counter() - wall_start

    result = {
        "version": CHECKPOINT_VERSION,
        "key": payload["key"],
        "snapshots": snapshots,
        "final": configuration_to_json(system, sort_nodes=False),
        "iterations": chain.iterations,
        "accepted_moves": chain.accepted_moves,
        "accepted_swaps": chain.accepted_swaps,
        "wall_time": wall_time,
    }
    if trace is not None:
        trace.complete("cell", cell_span_start, **context)
        result["trace_events"] = trace.events
    if logger is not None:
        logger.debug(
            "cell.end", seconds=wall_time, iterations=chain.iterations
        )
        result["events"] = logger.records
    if metrics is not None:
        result["metrics"] = metrics.snapshot()
    if diag is not None:
        result["diag"] = diag.summary()
    return result


def _decode_result(
    task: CellTask, payload: Dict[str, Any], from_checkpoint: bool = False
) -> CellResult:
    return CellResult(
        task=task,
        system=configuration_from_json(payload["final"]),
        snapshots=[
            configuration_from_json(text) for text in payload["snapshots"]
        ],
        iterations=int(payload["iterations"]),
        accepted_moves=int(payload["accepted_moves"]),
        accepted_swaps=int(payload["accepted_swaps"]),
        from_checkpoint=from_checkpoint,
        wall_time=float(payload.get("wall_time", 0.0)),
        profile=payload.get("profile"),
        diag=payload.get("diag"),
    )


#: Keys a well-formed result payload must carry (checkpoint schema).
_RESULT_PAYLOAD_KEYS = (
    "key",
    "final",
    "snapshots",
    "iterations",
    "accepted_moves",
    "accepted_swaps",
)


def _validated_result(task: CellTask, payload: Any) -> CellResult:
    """Decode a worker result payload, validating it against ``task``.

    Raises :class:`ResultValidationError` on any structural problem —
    a non-dict return, missing keys, a key that does not match the task
    identity, an iteration count that disagrees with the step budget,
    or snapshot/final JSON that fails to deserialize (the corrupt-result
    case).  Validation runs *before* the payload is checkpointed, so a
    corrupted result can never poison the checkpoint directory.
    """
    if not isinstance(payload, dict):
        raise ResultValidationError(
            f"cell {task.key()} worker returned "
            f"{type(payload).__name__}, expected a payload dict"
        )
    missing = [key for key in _RESULT_PAYLOAD_KEYS if key not in payload]
    if missing:
        raise ResultValidationError(
            f"cell {task.key()} result payload missing keys {missing}"
        )
    if payload["key"] != task.key():
        raise ResultValidationError(
            f"result key {payload['key']!r} does not match "
            f"task {task.key()!r}"
        )
    if int(payload["iterations"]) != task.steps:
        raise ResultValidationError(
            f"cell {task.key()} ran {payload['iterations']} iterations, "
            f"expected {task.steps}"
        )
    if len(payload["snapshots"]) != len(task.checkpoints):
        raise ResultValidationError(
            f"cell {task.key()} returned {len(payload['snapshots'])} "
            f"snapshots, expected {len(task.checkpoints)}"
        )
    try:
        return _decode_result(task, payload)
    except (ValueError, KeyError, TypeError) as error:
        raise ResultValidationError(
            f"cell {task.key()} result payload is corrupt: {error}"
        ) from error


def checkpoint_path(directory: Path, task: CellTask) -> Path:
    """Filesystem location of ``task``'s checkpoint in ``directory``."""
    return directory / f"cell-{task.key()}.json"


def _load_checkpoint(
    directory: Path,
    task: CellTask,
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[CellResult]:
    """Load a completed cell from disk, or ``None`` if absent/unusable.

    Unreadable or mismatched files are treated as missing (with a
    warning) so that a checkpoint corrupted by a hard kill forces a
    recompute instead of poisoning the resumed sweep.  With ``metrics``
    attached, the outcome is counted under ``engine.checkpoint_hits``
    (usable), ``engine.checkpoint_misses`` (absent), or
    ``engine.checkpoint_recomputes`` (present but unusable).
    """
    path = checkpoint_path(directory, task)
    if not path.exists():
        if metrics is not None:
            metrics.counter("engine.checkpoint_misses").inc()
        return None
    try:
        payload = load_payload(path)
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {payload.get('version')!r} unsupported"
            )
        if payload.get("key") != task.key():
            raise ValueError("checkpoint key does not match task identity")
        result = _decode_result(task, payload, from_checkpoint=True)
        if metrics is not None:
            metrics.counter("engine.checkpoint_hits").inc()
        return result
    except (ValueError, KeyError, OSError) as error:
        if metrics is not None:
            metrics.counter("engine.checkpoint_recomputes").inc()
        warnings.warn(
            f"ignoring unusable checkpoint {path.name}: {error}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def default_workers() -> int:
    """Worker count used when ``workers`` is not given: one per core."""
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Replica-batched scheduling (kernel="batch")
# ---------------------------------------------------------------------------


def _batch_signature(task: CellTask) -> Tuple:
    """Cell identity ignoring replica/seed/label: tasks sharing it can
    run lock-step inside one :class:`~repro.core.batch_kernel.BatchKernel`."""
    return (
        task.lam,
        task.gamma,
        task.steps,
        task.swaps,
        task.checkpoints,
        task.system_json,
    )


def group_batch_tasks(
    task_list: Sequence[CellTask],
    indices: Iterable[int],
    replicas_per_task: int = 0,
) -> List[List[int]]:
    """Partition pending task indices into batch groups.

    Consecutive tasks with the same :func:`_batch_signature` share a
    group (harnesses emit replicas innermost, so whole cells coalesce);
    ``replicas_per_task > 0`` caps the group size, trading kernel
    efficiency for process-pool granularity.  Because each replica
    roots its own RNG stream from its own task seed, the grouping
    *never* affects trajectories — only scheduling.
    """
    if replicas_per_task < 0:
        raise ValueError(
            f"replicas_per_task must be >= 0, got {replicas_per_task}"
        )
    groups: List[List[int]] = []
    last_sig = None
    for index in indices:
        sig = _batch_signature(task_list[index])
        full = bool(
            groups
            and replicas_per_task > 0
            and len(groups[-1]) >= replicas_per_task
        )
        if groups and sig == last_sig and not full:
            groups[-1].append(index)
        else:
            groups.append([index])
            last_sig = sig
    return groups


def batch_group_payload(
    tasks: Sequence[CellTask],
    instrument: Optional[Dict[str, bool]] = None,
) -> Dict[str, Any]:
    """JSON-able payload for one batch group (R replicas of one cell)."""
    head = tasks[0]
    payload: Dict[str, Any] = {
        "lam": head.lam,
        "gamma": head.gamma,
        "steps": head.steps,
        "swaps": head.swaps,
        "system": head.system_json,
        "checkpoints": list(head.checkpoints),
        "members": [
            {
                "key": task.key(),
                "replica": task.replica,
                "seed": task.seed,
                "label": task.label,
            }
            for task in tasks
        ],
    }
    if instrument:
        payload["instrument"] = dict(instrument)
    return payload


def run_batch_group(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Worker entrypoint: advance R replicas of one cell lock-step.

    Builds a single :class:`~repro.core.batch_kernel.BatchKernel` with
    one PCG64 stream per member (rooted at the member's own task seed),
    runs checkpoint segment by checkpoint segment, and returns one
    result payload per member in member order — the same schema
    :func:`run_cell` produces, so checkpointing, decoding, and
    aggregation are shared with the scalar path.  The group's wall time
    is split evenly across members (the replicas genuinely ran
    concurrently, so per-replica attribution is a convention).

    With an ``instrument`` request, per-batch metrics (``batch.*``),
    one ``batch_cell`` trace span, and ``batch.start``/``batch.end``
    log events are attached to the *first* member's payload for the
    parent to merge.

    Fault injection matches against the group's first member key (and
    its label); the ``truncate`` mode drops the last member's payload
    to exercise the engine's payload-count validation.
    """
    from repro.core.batch_kernel import BatchKernel

    fault = plan_fault(
        payload,
        payload["members"][0]["key"],
        payload["members"][0].get("label", ""),
    )
    inject_preemptive_fault(fault)
    instrument = payload.get("instrument") or {}
    members = payload["members"]
    replicas = len(members)
    context = {
        "lam": payload["lam"],
        "gamma": payload["gamma"],
        "replicas": replicas,
        "label": members[0]["label"],
    }
    logger = (
        JsonLogger.collecting(context=context)
        if instrument.get("events")
        else None
    )
    metrics = MetricsRegistry() if instrument.get("metrics") else None
    trace = (
        TraceRecorder(process_name="repro-batch-worker")
        if instrument.get("trace")
        else None
    )

    wall_start = time.perf_counter()
    span_start = trace.now() if trace is not None else 0.0
    if logger is not None:
        logger.debug(
            "batch.start", steps=payload["steps"], replicas=replicas
        )

    system = configuration_from_json(payload["system"])
    kernel = BatchKernel(
        system,
        payload["lam"],
        payload["gamma"],
        replicas=replicas,
        seed=[member["seed"] for member in members],
        swaps=payload["swaps"],
    )
    diag = None
    diag_every = int(instrument.get("diag_every") or 0)
    if diag_every > 0:
        # Round-level observer: the kernel samples all R replicas in
        # lock step once per vectorized round, feeding per-replica
        # streams plus the cross-replica split R-hat.  Attaching it
        # never touches the proposal streams (trajectories stay
        # bit-identical; regression tested).
        diag = ReplicaSetDiagnostics(
            replicas,
            DiagnosticsConfig(stride=diag_every),
            metrics=metrics,
            logger=logger,
            trace=trace,
            label=members[0]["label"] or members[0]["key"],
        )
        kernel.observer = diag
    snapshots: List[List[str]] = [[] for _ in range(replicas)]
    current = 0
    for checkpoint in payload["checkpoints"]:
        kernel.run(checkpoint - current)
        current = checkpoint
        for r in range(replicas):
            snapshots[r].append(
                configuration_to_json(
                    kernel.export_system(r), sort_nodes=False
                )
            )
    kernel.run(payload["steps"] - current)
    wall_time = time.perf_counter() - wall_start

    results: List[Dict[str, Any]] = []
    for r, member in enumerate(members):
        results.append(
            {
                "version": CHECKPOINT_VERSION,
                "key": member["key"],
                "snapshots": snapshots[r],
                "final": configuration_to_json(
                    kernel.export_system(r), sort_nodes=False
                ),
                "iterations": int(kernel.iters[r]),
                "accepted_moves": int(kernel.acc_moves[r]),
                "accepted_swaps": int(kernel.acc_swaps[r]),
                "wall_time": wall_time / replicas,
            }
        )
        if diag is not None:
            results[r]["diag"] = diag.member_summary(r)

    aggregate_steps = int(kernel.iters.sum())
    if metrics is not None:
        metrics.counter("batch.groups").inc()
        metrics.counter("batch.replicas").inc(replicas)
        metrics.counter("batch.steps").inc(aggregate_steps)
        if wall_time > 0.0:
            metrics.gauge("batch.last_replica_steps_per_sec").set(
                aggregate_steps / wall_time
            )
        metrics.histogram("batch.group_seconds").observe(wall_time)
        results[0]["metrics"] = metrics.snapshot()
    if trace is not None:
        trace.complete("batch_cell", span_start, **context)
        results[0]["trace_events"] = trace.events
    if logger is not None:
        logger.debug(
            "batch.end",
            seconds=wall_time,
            replicas=replicas,
            replica_steps_per_sec=(
                aggregate_steps / wall_time if wall_time > 0.0 else None
            ),
        )
        results[0]["events"] = logger.records
    return corrupt_batch_payloads(fault, results)


def _finalize_failures(
    directory: Optional[Path], failures: List[TaskFailure]
) -> None:
    """Persist (or clear) the quarantine manifest after an engine run.

    A run that quarantined cells leaves ``failures.json`` beside the
    checkpoints; a fully successful run removes any stale manifest so
    a ``--resume`` that recomputed every quarantined cell ends clean.
    """
    if directory is None:
        return
    if failures:
        write_failures_manifest(directory, failures)
    else:
        clear_failures_manifest(directory)


def execute_cells(
    tasks: Iterable[CellTask],
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Instrumentation] = None,
    retry: Optional[RetryPolicy] = None,
    failure: Optional[FailurePolicy] = None,
    fault_spec: Optional[Any] = None,
) -> List[CellResult]:
    """Run every task and return results in task order.

    Parameters
    ----------
    backend:
        ``"serial"`` runs in-process; ``"process"`` fans out over a
        ``ProcessPoolExecutor``.  Both route each cell through
        :func:`run_cell`, so their results are identical for identical
        tasks.
    workers:
        Pool size for the process backend (default: one per CPU core).
        Ignored by the serial backend.
    checkpoint_dir:
        When given, each completed cell is written there as one JSON
        file (atomically, so killing the sweep never leaves truncated
        checkpoints).  Stale ``*.tmp`` leftovers from hard-killed runs
        are swept on engine start.
    resume:
        Skip tasks whose checkpoint files already exist in
        ``checkpoint_dir`` (required when ``resume=True``), loading
        their recorded results instead of recomputing.  Quarantined
        cells have no checkpoints, so a resume recomputes exactly them.
    progress:
        Optional callback ``(completed_count, total, result)`` invoked
        after every cell, including cells restored from checkpoints.
        (:class:`repro.obs.ProgressReporter` is a ready-made stderr
        implementation with EWMA cell time and ETA.)
    obs:
        Optional :class:`repro.obs.Instrumentation`.  Workers then
        collect structured log events, chain/cell metrics, pid-tagged
        trace spans, and (with ``obs.profile``) a cProfile report; the
        parent merges worker streams, counts checkpoint hits/misses/
        recomputes, and records per-cell wall-time and throughput
        under the ``engine.*`` metric names.  Instrumentation rides
        outside the task identity: checkpoints and trajectories are
        unchanged.
    retry:
        Optional :class:`~repro.experiments.resilience.RetryPolicy`
        (attempt budget, backoff, per-task timeout).  The default
        performs no retries.
    failure:
        Optional :class:`~repro.experiments.resilience.FailurePolicy`.
        The default (``"raise"``) aborts on the first failure — the
        historical behavior; ``"quarantine"`` completes with
        :class:`~repro.experiments.resilience.FailedCell` placeholders
        and a ``failures.json`` manifest instead.
    fault_spec:
        Optional fault-injection spec attached to worker payloads (see
        :mod:`repro.experiments.resilience`); for chaos testing only.
        Rides outside task identity, like ``obs``.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if obs is not None and not obs.enabled():
        obs = None
    retry = retry if retry is not None else RetryPolicy()
    failure = failure if failure is not None else FailurePolicy()

    task_list = list(tasks)
    for task in task_list:
        task.validate()

    directory: Optional[Path] = None
    if checkpoint_dir is not None:
        directory = Path(checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        sweep_stale_temp_files(directory)

    total = len(task_list)
    engine_started = time.perf_counter()
    engine_span_start = 0.0
    if obs is not None:
        if obs.trace is not None:
            engine_span_start = obs.trace.now()
        obs.log(
            "engine.start",
            cells=total,
            backend=backend,
            workers=workers,
            resume=resume,
            on_failure=failure.mode,
            max_retries=retry.max_retries,
        )

    results: List[Optional[CellResult]] = [None] * total
    completed = 0
    pending: List[int] = []
    for index, task in enumerate(task_list):
        restored = (
            _load_checkpoint(
                directory, task, metrics=obs.metrics if obs else None
            )
            if resume
            else None
        )
        if restored is not None:
            results[index] = restored
            completed += 1
            if obs is not None:
                _absorb_cell(obs, task, {"key": task.key()}, restored)
            if progress is not None:
                progress(completed, total, restored)
        else:
            pending.append(index)

    instrument = obs.worker_flags() if obs is not None else None

    units = []
    for index in pending:
        payload = task_payload(task_list[index], instrument)
        if fault_spec is not None:
            payload["fault"] = fault_spec
        units.append(
            WorkUnit(
                uid=index,
                fn=run_cell,
                payload=payload,
                tasks=[task_list[index]],
            )
        )

    def decode(unit: WorkUnit, raw: Any) -> Tuple[Dict[str, Any], CellResult]:
        return raw, _validated_result(unit.tasks[0], raw)

    def commit(
        unit: WorkUnit, decoded: Tuple[Dict[str, Any], CellResult]
    ) -> None:
        nonlocal completed
        payload, result = decoded
        task = unit.tasks[0]
        if directory is not None:
            disk_payload = {
                key: value
                for key, value in payload.items()
                if key not in _OBS_PAYLOAD_KEYS
            }
            save_payload(disk_payload, checkpoint_path(directory, task))
        if obs is not None:
            _absorb_cell(obs, task, payload, result)
        results[unit.uid] = result
        completed += 1
        if progress is not None:
            progress(completed, total, result)

    def quarantine(unit: WorkUnit, records: List[TaskFailure]) -> None:
        nonlocal completed
        (record,) = records
        placeholder = FailedCell(
            task=unit.tasks[0],
            error=record.error,
            kind=record.kind,
            attempts=record.attempts,
        )
        results[unit.uid] = placeholder
        completed += 1
        if progress is not None:
            progress(completed, total, placeholder)

    executor = ResilientExecutor(
        backend=backend,
        workers=workers if workers is not None else default_workers(),
        retry=retry,
        failure=failure,
        obs=obs,
    )
    try:
        executor.run(units, decode, commit, quarantine)
    except BaseException:
        # Aborted runs persist whatever was already quarantined but
        # never *clear* a manifest they did not complete.
        if directory is not None and executor.failures:
            write_failures_manifest(directory, executor.failures)
        raise
    _finalize_failures(directory, executor.failures)

    if obs is not None:
        elapsed = time.perf_counter() - engine_started
        if obs.metrics is not None:
            obs.metrics.gauge("engine.wall_seconds").set(elapsed)
            obs.metrics.gauge("engine.cells_total").set(total)
        if obs.trace is not None:
            obs.trace.complete(
                "execute_cells",
                engine_span_start,
                cells=total,
                backend=backend,
            )
        obs.log(
            "engine.done",
            cells=total,
            seconds=elapsed,
            failed=len(executor.failures),
        )

    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def _absorb_cell(
    obs: Instrumentation,
    task: CellTask,
    payload: Dict[str, Any],
    result: CellResult,
) -> None:
    """Fold one finished (or restored) cell into parent instrumentation.

    Worker log events are re-emitted in timestamp order with their
    original pid, worker trace events are stitched into the parent
    recorder, and worker metrics merge into the parent registry; the
    parent then adds its own per-cell engine metrics — a histogram of
    wall-times, throughput gauges, and one ``engine.cells`` series
    entry carrying the cell's identity, wall-time, and steps/sec.
    """
    wall = result.wall_time
    throughput = result.iterations / wall if wall > 0.0 else None
    key = payload.get("key", "")
    if obs.metrics is not None:
        worker_snapshot = payload.get("metrics")
        if worker_snapshot:
            obs.metrics.merge(worker_snapshot)
        obs.metrics.counter("engine.cells_completed").inc()
        obs.metrics.counter("engine.steps").inc(result.iterations)
        if wall > 0.0:
            obs.metrics.histogram("engine.cell_seconds").observe(wall)
            obs.metrics.gauge("engine.last_cell_steps_per_sec").set(throughput)
        obs.metrics.series("engine.cells").append(
            {
                "cell": key,
                "label": task.label,
                "lam": task.lam,
                "gamma": task.gamma,
                "replica": task.replica,
                "iterations": result.iterations,
                "accepted_moves": result.accepted_moves,
                "accepted_swaps": result.accepted_swaps,
                "wall_time": wall,
                "steps_per_sec": throughput,
                "from_checkpoint": result.from_checkpoint,
            }
        )
        diag = result.diag
        if diag:
            obs.metrics.series("diag.cells").append(
                {
                    "cell": key,
                    "label": task.label,
                    "lam": task.lam,
                    "gamma": task.gamma,
                    "replica": task.replica,
                    "iteration": diag.get("iteration"),
                    "samples": diag.get("samples"),
                    "ess": diag.get("ess"),
                    "tau": diag.get("tau"),
                    "geweke": diag.get("geweke"),
                    "rhat": diag.get("rhat"),
                    "acceptance_rate": diag.get("acceptance_rate"),
                    "stalled": diag.get("stalled"),
                    "converged": diag.get("converged"),
                    "ess_min": diag.get("ess_min"),
                }
            )
    if result.diag and obs.logger is not None:
        obs.logger.info(
            "cell.convergence",
            cell=key,
            label=task.label,
            converged=result.diag.get("converged"),
            stalled=result.diag.get("stalled"),
            ess=result.diag.get("ess"),
            rhat=result.diag.get("rhat"),
            reasons=result.diag.get("reasons"),
        )
    if obs.trace is not None and payload.get("trace_events"):
        obs.trace.extend(payload["trace_events"])
    if obs.logger is not None:
        worker_events = payload.get("events")
        if worker_events:
            for record in merge_records(worker_events):
                obs.logger.emit(record)
        obs.logger.info(
            "cell.done",
            cell=key,
            label=task.label,
            lam=task.lam,
            gamma=task.gamma,
            replica=task.replica,
            iterations=result.iterations,
            wall_time=wall,
            steps_per_sec=throughput,
            from_checkpoint=result.from_checkpoint,
        )
    if result.profile:
        if obs.logger is not None:
            obs.logger.info("cell.profile", cell=key, profile=result.profile)
        else:
            sys.stderr.write(result.profile)


@dataclass
class BatchRunner:
    """Schedule whole cells (R replicas each) onto batch kernels.

    The scalar engine (:func:`execute_cells`) fans out one process task
    per *replica*; this runner fans out one task per *cell group*, each
    advancing up to ``replicas_per_task`` replicas lock-step inside one
    :class:`~repro.core.batch_kernel.BatchKernel` (0 = no cap: one
    kernel per cell).  Everything else — per-replica checkpoint files,
    resume semantics, result ordering, progress callbacks, and the
    ``engine.*`` observability stream — matches the scalar engine, so
    harnesses can swap runners without changing aggregation.  Batch
    workers additionally report per-batch ``batch.*`` metrics and a
    ``batch_cell`` trace span per group.
    """

    backend: str = "serial"
    workers: Optional[int] = None
    replicas_per_task: int = 0
    checkpoint_dir: Optional[os.PathLike] = None
    resume: bool = False
    progress: Optional[ProgressCallback] = None
    obs: Optional[Instrumentation] = None
    retry: Optional[RetryPolicy] = None
    failure: Optional[FailurePolicy] = None
    fault_spec: Optional[Any] = None

    def run(self, tasks: Iterable[CellTask]) -> List[CellResult]:
        """Execute every task and return results in task order.

        The retry/failure policies apply at *group* granularity: a
        worker exception, timeout, or malformed return (including the
        historical silent-truncation bug — a worker returning fewer
        payloads than the group has members, now a hard
        :class:`~repro.experiments.resilience.ResultValidationError`)
        fails the whole group, which is then recomputed or quarantined
        as a unit.
        """
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        obs = self.obs
        if obs is not None and not obs.enabled():
            obs = None
        retry = self.retry if self.retry is not None else RetryPolicy()
        failure = self.failure if self.failure is not None else FailurePolicy()

        task_list = list(tasks)
        for task in task_list:
            task.validate()

        directory: Optional[Path] = None
        if self.checkpoint_dir is not None:
            directory = Path(self.checkpoint_dir)
            directory.mkdir(parents=True, exist_ok=True)
            sweep_stale_temp_files(directory)

        total = len(task_list)
        engine_started = time.perf_counter()
        engine_span_start = 0.0
        if obs is not None:
            if obs.trace is not None:
                engine_span_start = obs.trace.now()
            obs.log(
                "engine.start",
                cells=total,
                backend=self.backend,
                workers=self.workers,
                resume=self.resume,
                mode="batch",
                replicas_per_task=self.replicas_per_task,
                on_failure=failure.mode,
                max_retries=retry.max_retries,
            )

        results: List[Optional[CellResult]] = [None] * total
        completed = 0
        pending: List[int] = []
        for index, task in enumerate(task_list):
            restored = (
                _load_checkpoint(
                    directory, task, metrics=obs.metrics if obs else None
                )
                if self.resume
                else None
            )
            if restored is not None:
                results[index] = restored
                completed += 1
                if obs is not None:
                    _absorb_cell(obs, task, {"key": task.key()}, restored)
                if self.progress is not None:
                    self.progress(completed, total, restored)
            else:
                pending.append(index)

        instrument = obs.worker_flags() if obs is not None else None
        groups = group_batch_tasks(
            task_list, pending, self.replicas_per_task
        )

        units = []
        for uid, group in enumerate(groups):
            payload = batch_group_payload(
                [task_list[i] for i in group], instrument
            )
            if self.fault_spec is not None:
                payload["fault"] = self.fault_spec
            units.append(
                WorkUnit(
                    uid=uid,
                    fn=run_batch_group,
                    payload=payload,
                    tasks=[task_list[i] for i in group],
                )
            )

        def decode(unit: WorkUnit, raw: Any) -> List[Tuple[Dict, CellResult]]:
            group = groups[unit.uid]
            if not isinstance(raw, list):
                raise ResultValidationError(
                    f"batch group {unit.key} worker returned "
                    f"{type(raw).__name__}, expected a payload list"
                )
            if len(raw) != len(group):
                # Previously this mismatch was silently zip-truncated,
                # leaving None results that only tripped the final
                # assert; now the whole group is recomputed.
                raise ResultValidationError(
                    f"batch group {unit.key} returned {len(raw)} payloads "
                    f"for {len(group)} members"
                )
            return [
                (payload, _validated_result(task_list[index], payload))
                for index, payload in zip(group, raw)
            ]

        def commit(
            unit: WorkUnit, decoded: List[Tuple[Dict, CellResult]]
        ) -> None:
            nonlocal completed
            for index, (payload, result) in zip(groups[unit.uid], decoded):
                task = task_list[index]
                if directory is not None:
                    disk_payload = {
                        key: value
                        for key, value in payload.items()
                        if key not in _OBS_PAYLOAD_KEYS
                    }
                    save_payload(
                        disk_payload, checkpoint_path(directory, task)
                    )
                if obs is not None:
                    _absorb_cell(obs, task, payload, result)
                results[index] = result
                completed += 1
                if self.progress is not None:
                    self.progress(completed, total, result)

        def quarantine(unit: WorkUnit, records: List[TaskFailure]) -> None:
            nonlocal completed
            for index, record in zip(groups[unit.uid], records):
                placeholder = FailedCell(
                    task=task_list[index],
                    error=record.error,
                    kind=record.kind,
                    attempts=record.attempts,
                )
                results[index] = placeholder
                completed += 1
                if self.progress is not None:
                    self.progress(completed, total, placeholder)

        executor = ResilientExecutor(
            backend=self.backend,
            workers=(
                self.workers if self.workers is not None else default_workers()
            ),
            retry=retry,
            failure=failure,
            obs=obs,
        )
        try:
            executor.run(units, decode, commit, quarantine)
        except BaseException:
            if directory is not None and executor.failures:
                write_failures_manifest(directory, executor.failures)
            raise
        _finalize_failures(directory, executor.failures)

        if obs is not None:
            elapsed = time.perf_counter() - engine_started
            if obs.metrics is not None:
                obs.metrics.gauge("engine.wall_seconds").set(elapsed)
                obs.metrics.gauge("engine.cells_total").set(total)
                obs.metrics.gauge("engine.batch_groups").set(len(groups))
            if obs.trace is not None:
                obs.trace.complete(
                    "execute_cells",
                    engine_span_start,
                    cells=total,
                    backend=self.backend,
                    mode="batch",
                )
            obs.log(
                "engine.done",
                cells=total,
                seconds=elapsed,
                failed=len(executor.failures),
            )

        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]


def dispatch_cells(
    tasks: Iterable[CellTask],
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Instrumentation] = None,
    replicas_per_task: int = 0,
    retry: Optional[RetryPolicy] = None,
    failure: Optional[FailurePolicy] = None,
    fault_spec: Optional[Any] = None,
) -> List[CellResult]:
    """Route tasks to the scalar engine or the batch runner by kernel.

    Harness-facing front door: tasks whose ``kernel`` is ``"batch"``
    run through :class:`BatchRunner` (whole cells per task), everything
    else through :func:`execute_cells` (one replica per task).  Mixed
    batches are rejected — a harness emits one kernel per run.
    ``retry``/``failure``/``fault_spec`` configure the resilience layer
    on either path (see :mod:`repro.experiments.resilience`).
    """
    task_list = list(tasks)
    batch_flags = {task.kernel == "batch" for task in task_list}
    if batch_flags == {True}:
        return BatchRunner(
            backend=backend,
            workers=workers,
            replicas_per_task=replicas_per_task,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            progress=progress,
            obs=obs,
            retry=retry,
            failure=failure,
            fault_spec=fault_spec,
        ).run(task_list)
    if True in batch_flags:
        raise ValueError(
            "cannot mix kernel='batch' tasks with scalar-kernel tasks "
            "in one dispatch"
        )
    return execute_cells(
        task_list,
        backend=backend,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        progress=progress,
        obs=obs,
        retry=retry,
        failure=failure,
        fault_spec=fault_spec,
    )


def resolve_backend(backend: Optional[str], workers: Optional[int]) -> str:
    """CLI convenience: pick a backend from ``--backend``/``--workers``.

    An explicit backend wins; otherwise requesting more than one worker
    implies the process pool and anything else stays serial.
    """
    if backend is not None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        return backend
    if workers is not None and workers > 1:
        return "process"
    return "serial"


def group_by_cell(
    results: Sequence[CellResult], replicas: int
) -> List[List[CellResult]]:
    """Split a flat, task-ordered result list into per-cell replica groups.

    Harnesses emit tasks replica-innermost; this restores the
    ``cells × replicas`` nesting for aggregation.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be positive, got {replicas}")
    if len(results) % replicas:
        raise ValueError(
            f"{len(results)} results do not divide into groups of {replicas}"
        )
    return [
        list(results[start : start + replicas])
        for start in range(0, len(results), replicas)
    ]
