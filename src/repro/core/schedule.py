"""Parameter schedules (annealing) for the separation chain.

The paper runs :math:`\\mathcal{M}` at fixed :math:`(\\lambda, \\gamma)`,
but because the proven phase boundaries are not tight (Section 3.2), it is
natural to ask whether ramping the biases accelerates convergence — the
standard simulated-annealing question.  These schedules drive
:meth:`SeparationChain.set_parameters` over the course of a run; the
ablation example ``examples/annealing_separation.py`` compares fixed
versus annealed runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

from repro.core.separation_chain import SeparationChain

ScheduleFn = Callable[[float], Tuple[float, float]]


@dataclass(frozen=True)
class LinearSchedule:
    """Linear interpolation of (λ, γ) from start to end values.

    Evaluated at progress ``t in [0, 1]``.
    """

    lam_start: float
    lam_end: float
    gamma_start: float
    gamma_end: float

    def __call__(self, t: float) -> Tuple[float, float]:
        t = min(1.0, max(0.0, t))
        lam = self.lam_start + t * (self.lam_end - self.lam_start)
        gamma = self.gamma_start + t * (self.gamma_end - self.gamma_start)
        return lam, gamma


@dataclass(frozen=True)
class GeometricSchedule:
    """Geometric (log-linear) interpolation of (λ, γ).

    Moves at constant multiplicative rate, the natural schedule for
    parameters that enter the stationary weights exponentially.
    """

    lam_start: float
    lam_end: float
    gamma_start: float
    gamma_end: float

    def __post_init__(self):
        for name in ("lam_start", "lam_end", "gamma_start", "gamma_end"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def __call__(self, t: float) -> Tuple[float, float]:
        t = min(1.0, max(0.0, t))
        lam = self.lam_start * (self.lam_end / self.lam_start) ** t
        gamma = self.gamma_start * (self.gamma_end / self.gamma_start) ** t
        return lam, gamma


@dataclass(frozen=True)
class ConstantSchedule:
    """Fixed parameters; useful as a baseline in schedule comparisons."""

    lam: float
    gamma: float

    def __call__(self, t: float) -> Tuple[float, float]:
        return self.lam, self.gamma


def run_annealed(
    chain: SeparationChain,
    schedule: ScheduleFn,
    total_steps: int,
    updates: int = 100,
    observer: Optional[Callable[[int, SeparationChain], None]] = None,
) -> SeparationChain:
    """Run ``chain`` for ``total_steps`` while following ``schedule``.

    The schedule is re-evaluated ``updates`` times, evenly spaced; the
    optional ``observer(iteration, chain)`` fires after each segment,
    which experiment recorders use for snapshotting.
    """
    if total_steps < 0:
        raise ValueError(f"total_steps must be non-negative, got {total_steps}")
    if updates < 1:
        raise ValueError(f"updates must be positive, got {updates}")
    segments = _segment_lengths(total_steps, updates)
    done = 0
    for i, segment in enumerate(segments):
        t = i / max(1, updates - 1) if updates > 1 else 1.0
        lam, gamma = schedule(t)
        chain.set_parameters(lam=lam, gamma=gamma)
        chain.run(segment)
        done += segment
        if observer is not None:
            observer(done, chain)
    return chain


def _segment_lengths(total: int, parts: int) -> Iterator[int]:
    """Split ``total`` into ``parts`` near-equal non-negative integers."""
    base = total // parts
    remainder = total - base * parts
    for i in range(parts):
        yield base + (1 if i < remainder else 0)


def effective_temperature(lam: float, gamma: float) -> float:
    """Inverse bias strength :math:`1 / \\ln(\\lambda\\gamma)`.

    The weight exponent :math:`-p\\ln(\\lambda\\gamma) - h\\ln\\gamma`
    plays the role of an energy over temperature; this scalar summarizes
    how "cold" a parameter pair is (infinite at the unbiased point
    :math:`\\lambda\\gamma = 1`).
    """
    strength = math.log(lam * gamma)
    if strength == 0:
        return math.inf
    return 1.0 / strength
