"""Locality properties governing particle movement (Properties 4 and 5).

A contracted particle may move from node :math:`\\ell` to an adjacent
empty node :math:`\\ell'` only if one of two locally checkable properties
holds; together they guarantee the system stays connected and never forms
a new hole (Lemma 6).  With :math:`\\mathbb{S} = N(\\ell) \\cap N(\\ell')`
the set of particles adjacent to both nodes:

* **Property 4**: :math:`|\\mathbb{S}| \\in \\{1, 2\\}` and every particle
  in :math:`N(\\ell \\cup \\ell')` is connected to exactly one particle of
  :math:`\\mathbb{S}` by a path through :math:`N(\\ell \\cup \\ell')`.
* **Property 5**: :math:`|\\mathbb{S}| = 0`, and both
  :math:`N(\\ell) \\setminus \\{\\ell'\\}` and
  :math:`N(\\ell') \\setminus \\{\\ell\\}` are nonempty and connected.

Fast path: the eight nodes adjacent to :math:`\\ell` or :math:`\\ell'`
form a chordless 8-cycle (:func:`repro.lattice.triangular.edge_ring`), on
which "connected through the neighborhood" reduces to membership in
maximal circular runs of occupied positions.  Ring index convention (from
``edge_ring``): positions 0 and 4 are the two common neighbors; positions
1-3 are exclusive to :math:`\\ell'`; positions 5-7 exclusive to
:math:`\\ell`.

The module also provides reference implementations that follow the paper
definitions verbatim via BFS; the property-based tests assert the two
agree on random neighborhoods.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from repro.lattice.triangular import (
    Node,
    common_neighbors,
    edge_ring,
    neighbors,
)

#: Ring indices adjacent to the source node ℓ (including both commons).
SRC_RING_INDICES: Tuple[int, ...] = (0, 4, 5, 6, 7)
#: Ring indices adjacent to the destination node ℓ' (including both commons).
DST_RING_INDICES: Tuple[int, ...] = (0, 1, 2, 3, 4)
#: Ring indices of the two common neighbors (the candidate set S).
COMMON_RING_INDICES: Tuple[int, ...] = (0, 4)


def _circular_runs(occ: Sequence[bool]) -> List[List[int]]:
    """Maximal circular runs of True positions in an 8-slot ring."""
    size = len(occ)
    if all(occ):
        return [list(range(size))]
    if not any(occ):
        return []
    # Start scanning just after an empty slot so runs never wrap.
    start = next(i for i in range(size) if not occ[i])
    runs: List[List[int]] = []
    current: List[int] = []
    for offset in range(1, size + 1):
        i = (start + offset) % size
        if occ[i]:
            current.append(i)
        elif current:
            runs.append(current)
            current = []
    if current:
        runs.append(current)
    return runs


def satisfies_property_4(occ: Sequence[bool]) -> bool:
    """Property 4 on an edge-ring occupancy vector (length 8).

    ``occ[i]`` is whether the i-th ring position is occupied, with the
    index convention documented at module level.
    """
    s_count = occ[0] + occ[4]
    if s_count not in (1, 2):
        return False
    for run in _circular_runs(occ):
        commons_in_run = sum(1 for i in run if i in COMMON_RING_INDICES)
        if commons_in_run != 1:
            return False
    return True


def satisfies_property_5(occ: Sequence[bool]) -> bool:
    """Property 5 on an edge-ring occupancy vector (length 8)."""
    if occ[0] or occ[4]:
        return False
    # ℓ's exclusive neighbors are ring positions 5,6,7 (a path);
    # ℓ''s are positions 1,2,3.  Each side must be nonempty and
    # consecutive (the only disconnected pattern on a 3-path is 1,0,1).
    src_side = (occ[5], occ[6], occ[7])
    dst_side = (occ[1], occ[2], occ[3])
    for side in (src_side, dst_side):
        if not any(side):
            return False
        if side[0] and side[2] and not side[1]:
            return False
    return True


def move_allowed(occ: Sequence[bool]) -> bool:
    """Whether Property 4 or Property 5 holds for the ring occupancy."""
    return satisfies_property_4(occ) or satisfies_property_5(occ)


def ring_occupancy(colors: Dict[Node, int], src: Node, dst: Node) -> List[bool]:
    """Occupancy vector of the edge ring around ``(src, dst)``."""
    return [node in colors for node in edge_ring(src, dst)]


def move_allowed_between(colors: Dict[Node, int], src: Node, dst: Node) -> bool:
    """Convenience wrapper: Properties 4/5 for a move ``src -> dst``."""
    return move_allowed(ring_occupancy(colors, src, dst))


# ----------------------------------------------------------------------
# Reference (definition-verbatim) implementations, used in tests.
# ----------------------------------------------------------------------


def _union_neighborhood(occupied: Set[Node], src: Node, dst: Node) -> Set[Node]:
    """Occupied members of :math:`N(\\ell \\cup \\ell')` (excluding both)."""
    union = set(neighbors(src)) | set(neighbors(dst))
    union.discard(src)
    union.discard(dst)
    return {node for node in union if node in occupied}


def property_4_reference(occupied: Set[Node], src: Node, dst: Node) -> bool:
    """Property 4 straight from the definition (BFS through the union)."""
    union = _union_neighborhood(occupied, src, dst)
    s_set = {node for node in common_neighbors(src, dst) if node in occupied}
    if len(s_set) not in (1, 2):
        return False
    for start in union:
        reached_s = _reachable_s_members(union, s_set, start)
        if reached_s != 1:
            return False
    return True


def _reachable_s_members(union: Set[Node], s_set: Set[Node], start: Node) -> int:
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for nbr in neighbors(node):
            if nbr in union and nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
    return len(seen & s_set)


def property_5_reference(occupied: Set[Node], src: Node, dst: Node) -> bool:
    """Property 5 straight from the definition."""
    s_set = {node for node in common_neighbors(src, dst) if node in occupied}
    if s_set:
        return False
    for center, excluded in ((src, dst), (dst, src)):
        side = {
            node
            for node in neighbors(center)
            if node != excluded and node in occupied
        }
        if not side:
            return False
        if not _side_connected(side):
            return False
    return True


def _side_connected(side: Set[Node]) -> bool:
    start = next(iter(side))
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for nbr in neighbors(node):
            if nbr in side and nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
    return len(seen) == len(side)


def move_allowed_reference(occupied: Set[Node], src: Node, dst: Node) -> bool:
    """Definition-verbatim validity check for a move ``src -> dst``."""
    return property_4_reference(occupied, src, dst) or property_5_reference(
        occupied, src, dst
    )
