"""Replica-batched NumPy kernel for the separation chain hot loop.

Figures 2 and 3 of [CannonDGRR18] average many independent replicas of
the same :math:`(\\lambda, \\gamma, n)` cell.  The scalar kernels in
:mod:`repro.core.separation_chain` advance one replica at a time; this
module packs ``R`` replicas into stacked flat integer arenas and
advances all of them lock-step with vectorized NumPy gathers.

Design — speculative proposal windows
-------------------------------------

A Metropolis step depends on the *current* configuration, so naive
vectorization across time is unsound.  The batch kernel instead
exploits the chain's low acceptance rate (most proposals reject):

1. For each replica, evaluate a *window* of ``W`` future proposals
   against the block-start configuration (vectorized across the
   ``R × W`` plane).
2. Per replica, find the **first** proposal that changes state and
   consume the stream up to and including it; proposals before the
   first change saw the true configuration, so their evaluation is
   exact.
3. Apply the accepted changes (at most one per replica — disjoint
   arenas, so a vectorized scatter is race-free) and repeat.

Unconsumed draws are re-evaluated next round with identical values, so
every draw is used exactly once in the final trajectory: the batch
kernel is *exactly* the sequential chain consuming the same per-replica
``(index, direction, q)`` streams.  That makes it testable two ways —
bit-exact against a sequential re-execution of its own streams, and
statistically against the reference ``random.Random`` kernels (whose
draw sequence differs; see ``tests/test_batch_statistical.py``).

RNG regime
----------

Each replica owns a ``numpy.random.Generator`` (PCG64) spawned from one
``SeedSequence``, and always consumes three uniforms per step.  This is
a *different stream discipline* from the scalar kernels (which share a
``random.Random`` and skip the ``q`` draw when the bias ratio is ≥ 1),
so batch trajectories are not bit-comparable to ``dict``/``grid``
trajectories — only distributionally equivalent.

Counters are maintained incrementally (O(1) per accepted step): total
edges, heterogeneous edges, accepted moves/swaps.  ``export_system``
reconstructs a :class:`~repro.system.configuration.ParticleSystem` for
any replica; its recomputed counters cross-check the incremental ones
in the fuzz suite.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

import numpy as np

from repro.core.separation_chain import (
    MOVE_DELTA,
    RING_OFFSETS,
    _MOVE_REJECT,
    _clamped_power,
    bias_ratio,
)
from repro.lattice.triangular import NEIGHBOR_OFFSETS
from repro.system.configuration import ParticleSystem
from repro.util.rng import RngLike, seed_entropy

__all__ = ["BatchKernel", "DEFAULT_WINDOW", "RNG_CHUNK"]

#: Per-replica random-draw chunk size (uniforms are generated in blocks).
RNG_CHUNK = 8192

#: Default speculative-window width (benchmarked optimum at n=100, R=32).
DEFAULT_WINDOW = 56

#: Padding margin (in cells) around the bounding box; doubled on regrow.
_MARGIN = 8

# ---------------------------------------------------------------------------
# Precomputed occupancy-mask tables.  Ring cells are packed into one byte
# via ``np.packbits(..., bitorder="little")`` so bit i = ring position i.
# Positions 1..3 are dst-exclusive edge slots, 5..7 src-exclusive
# (position 0 and 4 are common to both endpoints and cancel in deltas).
# ---------------------------------------------------------------------------

#: Δe_i contribution of a same-color mask: popcount(bits 1-3) − popcount(bits 5-7).
DEI_TABLE = np.array(
    [
        sum(1 for i in (1, 2, 3) if m >> i & 1)
        - sum(1 for i in (5, 6, 7) if m >> i & 1)
        for m in range(256)
    ],
    dtype=np.int64,
)

#: Δe + 5 per occupancy mask (0 where the move is structurally invalid).
MD5 = np.zeros(256, dtype=np.int64)
#: Structural validity (Properties 4/5 + e_src ≠ 5) per occupancy mask.
MV = np.zeros(256, dtype=bool)
for _m in range(256):
    _de = MOVE_DELTA[_m]
    if _de != _MOVE_REJECT:
        MV[_m] = True
        MD5[_m] = _de + 5

#: Row base into the folded ratio table: valid masks index their Δe row,
#: invalid masks index a trailing all-zero row (ratio 0.0 → never accept),
#: which removes the separate validity gather from the accept test.
RI2 = np.where(MV, MD5 * 7 + 3, 77 + 3)


def _move_ratio_table(lam: float, gamma: float) -> np.ndarray:
    """Flat 91-entry bias-ratio table: 11 Δe rows × 7 Δe_i slots + zero row."""
    ratio = [
        bias_ratio(lam, gamma, de, dei)
        for de in range(-5, 6)
        for dei in range(-3, 4)
    ]
    return np.array(ratio + [0.0] * 7, dtype=np.float64)


def _swap_ratio_table(gamma: float) -> np.ndarray:
    """γ^Δa for Δa in −6..6 (swap acceptance ratios, clamped to [0, 1])."""
    return np.array(
        [_clamped_power(gamma, e) for e in range(-6, 7)], dtype=np.float64
    )


class BatchKernel:
    """Advance ``R`` independent replicas of one chain cell lock-step.

    Parameters
    ----------
    system:
        Start configuration; every replica begins as a copy of it.
    lam, gamma:
        Chain bias parameters (must be positive, as in the scalar chain).
    replicas:
        Number of independent replicas ``R``.
    seed:
        Integer / ``random.Random`` / ``None`` — collapsed via
        :func:`repro.util.rng.seed_entropy` into one ``SeedSequence``
        which spawns a child PCG64 stream per replica.  Alternatively a
        sequence of ``replicas`` integers: each replica then roots its
        own ``SeedSequence``, so a replica's trajectory depends only on
        its own seed — not on how replicas are grouped into kernels
        (the batch cell runner relies on this grouping invariance).
    swaps:
        Enable the heterogeneous swap move (disable for compression).
    window:
        Speculative-window width ``W``.
    """

    def __init__(
        self,
        system: ParticleSystem,
        lam: float,
        gamma: float,
        replicas: int,
        seed: Union[RngLike, Sequence[int]] = None,
        swaps: bool = True,
        window: int = DEFAULT_WINDOW,
    ):
        if lam <= 0 or gamma <= 0:
            raise ValueError(
                f"lambda and gamma must be positive, got lam={lam} gamma={gamma}"
            )
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if not 1 <= window <= RNG_CHUNK:
            raise ValueError(
                f"window must be in [1, {RNG_CHUNK}], got {window}"
            )
        self.lam = float(lam)
        self.gamma = float(gamma)
        self.swaps = bool(swaps)
        self.R = int(replicas)
        self.window = int(window)
        nodes = list(system.colors)
        vals = [system.colors[nd] + 1 for nd in nodes]
        self.n = len(nodes)
        self.k = system.num_colors
        if isinstance(seed, (list, tuple)):
            if len(seed) != self.R:
                raise ValueError(
                    f"got {len(seed)} per-replica seeds for {self.R} replicas"
                )
            children = [np.random.SeedSequence(int(s)) for s in seed]
        else:
            ss = np.random.SeedSequence(seed_entropy(seed))
            children = ss.spawn(self.R)
        self.gens = [np.random.Generator(np.random.PCG64(c)) for c in children]
        self._margin = _MARGIN
        self._build(nodes, vals)
        self.RATIO2 = _move_ratio_table(self.lam, self.gamma)
        self.SRATIO = _swap_ratio_table(self.gamma)
        T = RNG_CHUNK
        self.T = T
        R = self.R
        # Per-replica proposal streams (refilled per row when exhausted).
        self.IDXG = np.empty((R, T), dtype=np.int64)  # particle idx + r*n baked
        self.D = np.empty((R, T), dtype=np.int64)
        self.MD = np.empty((R, T), dtype=np.int64)  # MDELT[D]; refreshed on regrow
        self.Q = np.empty((R, T), dtype=np.float64)
        self.cursor = np.full(R, T, dtype=np.int64)  # exhausted → refill on first run
        # Incremental per-replica observables.
        self.edge = np.full(R, system.edge_total, dtype=np.int64)
        self.het = np.full(R, system.hetero_total, dtype=np.int64)
        self.iters = np.zeros(R, dtype=np.int64)
        self.acc_moves = np.zeros(R, dtype=np.int64)
        self.acc_swaps = np.zeros(R, dtype=np.int64)
        self.rowT = np.arange(R, dtype=np.int64) * T
        self.WIN = np.arange(self.window, dtype=np.int64)
        # Optional round-level observer (duck-typed: anything with a
        # ``maybe_observe(kernel)`` method, e.g. the streaming
        # convergence diagnostics in repro.obs.convergence).  Called
        # once per vectorized round with read-only access to the
        # incremental counter arrays; it must not touch the proposal
        # streams, so attaching one leaves trajectories bit-identical.
        self.observer = None
        # Optional round-level state hook for crash-consistent mid-run
        # snapshots: called once per vectorized round, after the
        # observer, when every array is at a consistent proposal-window
        # boundary.  Read-only like the observer (it serializes state
        # via export_state), so attaching one never perturbs
        # trajectories.
        self.state_hook = None

    # -- arena construction -------------------------------------------------

    def _geometry(self, W: int, H: int) -> None:
        """(Re)build geometry-dependent tables for arena width ``W``."""
        danger = np.zeros((H, W), dtype=bool)
        danger[:2, :] = True
        danger[-2:, :] = True
        danger[:, :2] = True
        danger[:, -2:] = True
        self.danger = np.tile(danger.ravel(), self.R)
        self.MDELT = np.array(
            [dy * W + dx for dx, dy in NEIGHBOR_OFFSETS], dtype=np.int64
        )
        self.RINGD = np.array(
            [[rdy * W + rdx for rdx, rdy in RING_OFFSETS[d]] for d in range(6)],
            dtype=np.int64,
        )

    def _build(self, nodes: Sequence[tuple], vals: Sequence[int]) -> None:
        pad = self._margin
        xs = [x for x, _ in nodes]
        ys = [y for _, y in nodes]
        ox, oy = min(xs) - pad, min(ys) - pad
        W = max(xs) - min(xs) + 1 + 2 * pad
        H = max(ys) - min(ys) + 1 + 2 * pad
        A = W * H
        self.W, self.H, self.A, self.ox, self.oy = W, H, A, ox, oy
        base = np.zeros(A, dtype=np.int8)
        ids = np.array(
            [(y - oy) * W + (x - ox) for x, y in nodes], dtype=np.int64
        )
        base[ids] = vals
        self.arena = np.tile(base, self.R)
        row = (np.arange(self.R, dtype=np.int64) * A)[:, None]
        self.gpos = (ids[None, :] + row).ravel()  # flat (R*n,) global arena ids
        self._geometry(W, H)

    def _refill(self, rows: np.ndarray) -> None:
        """Regenerate the proposal stream for the given replica rows."""
        n = self.n
        for r in rows:
            u = self.gens[r].random((3, self.T))
            self.IDXG[r] = (u[0] * n).astype(np.int64) + r * n
            d = (u[1] * 6).astype(np.int64)
            self.D[r] = d
            self.MD[r] = self.MDELT[d]
            self.Q[r] = u[2]
        self.cursor[rows] = 0

    # -- parameters ---------------------------------------------------------

    def set_parameters(self, lam: float, gamma: float) -> None:
        """Change (λ, γ) mid-run; only the ratio tables depend on them."""
        if lam <= 0 or gamma <= 0:
            raise ValueError(
                f"lambda and gamma must be positive, got lam={lam} gamma={gamma}"
            )
        self.lam = float(lam)
        self.gamma = float(gamma)
        self.RATIO2 = _move_ratio_table(self.lam, self.gamma)
        self.SRATIO = _swap_ratio_table(self.gamma)

    # -- hot loop -----------------------------------------------------------

    def run(self, steps: Union[int, np.ndarray]) -> None:
        """Advance every replica by exactly ``steps`` Metropolis steps.

        ``steps`` may also be a per-replica int64 array: a kernel
        restored from a mid-round snapshot has replicas at *different*
        step counts (rounds consume per-replica amounts), so resuming
        bit-identically means giving each replica exactly the steps the
        uninterrupted run still owed it.
        """
        if np.ndim(steps):
            remaining = np.array(steps, dtype=np.int64)
            if remaining.shape != (self.R,):
                raise ValueError(
                    f"per-replica steps must have shape {(self.R,)}, "
                    f"got {remaining.shape}"
                )
            if (remaining < 0).any():
                raise ValueError("per-replica steps must be >= 0")
            if not remaining.any():
                return
        else:
            if steps < 0:
                raise ValueError(f"steps must be >= 0, got {steps}")
            if steps == 0:
                return
            remaining = np.full(self.R, steps, dtype=np.int64)
        W = self.window
        R = self.R
        WIN = self.WIN
        RATIO2, SRATIO = self.RATIO2, self.SRATIO
        swaps = self.swaps
        posf = np.empty(R, dtype=np.int64)
        tstar = np.empty(R, dtype=np.int64)
        while True:
            if not (remaining > 0).any():
                break
            refill = (self.cursor + W > self.T).nonzero()[0]
            if refill.size:
                self._refill(refill)
            arena = self.arena
            gpos = self.gpos
            IDXGf = self.IDXG.ravel()
            Df = self.D.ravel()
            MDf = self.MD.ravel()
            Qf = self.Q.ravel()
            flat = (self.cursor + self.rowT)[:, None] + WIN  # (R, W)
            flatr = flat.ravel()
            idxg = IDXGf[flatr]
            srcw = gpos[idxg]
            dstg = srcw + MDf[flatr]
            civ = arena[srcw]
            dstv = arena[dstg]
            # Candidate compression: only proposals that can possibly change
            # state get the expensive ring evaluation.  With swaps on, any
            # dst differing from src qualifies (civ > 0 always); with swaps
            # off only empty destinations do.
            if swaps:
                w = (dstv != civ).nonzero()[0]
            else:
                w = (dstv == 0).nonzero()[0]
            pacc = w
            if w.size:
                flatw = flatr[w]
                qc = Qf[flatw]
                dc = Df[flatw]
                srcc = srcw[w]
                civc = civ[w]
                dstvc = dstv[w]
                ringc = arena[srcc[:, None] + self.RINGD[dc]]
                if swaps:
                    b3 = np.empty((3, w.size, 8), dtype=bool)
                    np.greater(ringc, 0, out=b3[0])
                    np.equal(ringc, civc[:, None], out=b3[1])
                    np.equal(ringc, dstvc[:, None], out=b3[2])
                    pb = np.packbits(b3, axis=2, bitorder="little")
                    occ = pb[0, :, 0]
                    dei = DEI_TABLE[pb[1, :, 0]]
                    is_move = dstvc == 0
                    acc = is_move & (qc < RATIO2[RI2[occ] + dei])
                    expo = dei - DEI_TABLE[pb[2, :, 0]]
                    acc |= (~is_move) & (qc < SRATIO[expo + 6])
                else:
                    b2 = np.empty((2, w.size, 8), dtype=bool)
                    np.greater(ringc, 0, out=b2[0])
                    np.equal(ringc, civc[:, None], out=b2[1])
                    pb = np.packbits(b2, axis=2, bitorder="little")
                    occ = pb[0, :, 0]
                    dei = DEI_TABLE[pb[1, :, 0]]
                    acc = qc < RATIO2[RI2[occ] + dei]
                pacc = acc.nonzero()[0]
            limit = np.minimum(remaining, W)
            tstar.fill(W)
            if pacc.size:
                wacc = w[pacc]
                rows_acc = wacc // W
                # Reversed scatter → the first accepted step per row wins.
                tstar[rows_acc[::-1]] = wacc[::-1] % W
                posf[rows_acc[::-1]] = pacc[::-1]
            has = tstar < limit
            consumed = np.where(has, tstar + 1, limit)
            rows = has.nonzero()[0]
            if rows.size:
                pos = posf[rows]  # candidate index of each accepted step
                wsel = w[pos]
                s = srcc[pos]
                dg = dstg[wsel]
                c = civ[wsel]
                dv = dstv[wsel]
                mrow = dv == 0
                # Swaps first: a regrow (move branch only) rebuilds the
                # arena and would invalidate the swap branch's cell ids.
                sr = rows[~mrow]
                if sr.size:
                    ps = pos[~mrow]
                    arena[s[~mrow]] = dv[~mrow]
                    arena[dg[~mrow]] = c[~mrow]
                    self.het[sr] -= expo[ps]
                    self.acc_swaps[sr] += 1
                mr = rows[mrow]
                if mr.size:
                    pm = pos[mrow]
                    sm, dm = s[mrow], dg[mrow]
                    arena[sm] = 0
                    arena[dm] = c[mrow]
                    gpos[idxg[wsel[mrow]]] = dm
                    de = MD5[occ[pm]] - 5
                    self.edge[mr] += de
                    self.het[mr] += de - dei[pm]
                    self.acc_moves[mr] += 1
                    if self.danger[dm].any():
                        self._regrow()
            self.cursor += consumed
            self.iters += consumed
            remaining -= consumed
            # Diagnostics hook: rounds are the natural sampling grain
            # here — chunking run() itself would shift the proposal
            # streams' refill points (the tail of each regenerated
            # stream is discarded), changing trajectories.  The
            # observer only reads counters, so the streams are
            # untouched.
            if self.observer is not None:
                self.observer.maybe_observe(self)
            if self.state_hook is not None:
                self.state_hook(self)

    def _regrow(self) -> None:
        """Rebuild every replica's arena with a doubled safety margin."""
        self._margin *= 2
        W, A, ox, oy = self.W, self.A, self.ox, self.oy
        gp = self.gpos.reshape(self.R, self.n)
        local = gp - (np.arange(self.R, dtype=np.int64) * A)[:, None]
        xs = local % W + ox
        ys = local // W + oy
        vals = self.arena[gp]
        pad = self._margin
        nox, noy = int(xs.min()) - pad, int(ys.min()) - pad
        nW = int(xs.max() - xs.min()) + 1 + 2 * pad
        nH = int(ys.max() - ys.min()) + 1 + 2 * pad
        nA = nW * nH
        self.W, self.H, self.A, self.ox, self.oy = nW, nH, nA, nox, noy
        arena = np.zeros(self.R * nA, dtype=np.int8)
        row = (np.arange(self.R, dtype=np.int64) * nA)[:, None]
        gpos = (ys - noy) * nW + (xs - nox) + row
        arena[gpos.ravel()] = vals.ravel()
        self.arena, self.gpos = arena, gpos.ravel()
        self._geometry(nW, nH)
        # Direction deltas changed width: refresh the precomputed stream.
        np.take(self.MDELT, self.D, out=self.MD)

    # -- observables --------------------------------------------------------

    def perimeters(self) -> np.ndarray:
        """Per-replica perimeter via the identity p = 3n − 3 − e.

        Vectorized form of
        :func:`repro.lattice.boundary.perimeter_from_edges`, reading the
        incremental edge counters (valid because moves preserve
        connectivity and hole-freeness — Properties 4/5).
        """
        return 3 * self.n - 3 - self.edge

    def het_edges(self) -> np.ndarray:
        """Per-replica heterogeneous edge counts (incremental)."""
        return self.het.copy()

    def edge_totals(self) -> np.ndarray:
        """Per-replica total edge counts (incremental)."""
        return self.edge.copy()

    def acceptance_rates(self) -> np.ndarray:
        """Per-replica fraction of accepted proposals (NaN before any step)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self.iters > 0,
                (self.acc_moves + self.acc_swaps) / np.maximum(self.iters, 1),
                np.nan,
            )

    def positions(self, replica: int) -> List[tuple]:
        """Lattice coordinates of every particle in one replica."""
        self._check_replica(replica)
        W, A, ox, oy = self.W, self.A, self.ox, self.oy
        gp = self.gpos.reshape(self.R, self.n)[replica] - replica * A
        return [(int(g % W + ox), int(g // W + oy)) for g in gp]

    def export_system(self, replica: int) -> ParticleSystem:
        """Reconstruct a :class:`ParticleSystem` for one replica.

        The returned system recomputes its counters from scratch in its
        constructor, so it independently cross-checks the kernel's
        incremental ``edge`` / ``het`` arrays (asserted in the fuzz
        tests, not here — export stays cheap).
        """
        self._check_replica(replica)
        W, A, ox, oy = self.W, self.A, self.ox, self.oy
        gp = self.gpos.reshape(self.R, self.n)[replica]
        local = gp - replica * A
        colors = {}
        for g, lg in zip(gp, local):
            x = int(lg % W + ox)
            y = int(lg // W + oy)
            colors[(x, y)] = int(self.arena[g]) - 1
        return ParticleSystem(colors, num_colors=self.k)

    def export_columns(self, replica: int):
        """One replica's state as packed columns, counters included.

        Returns ``(x, y, colors, num_colors, edge_total,
        hetero_total)`` with coordinate and color arrays in the same
        particle order :meth:`export_system` would use for its node
        dict — ready for :func:`repro.util.codec.encode_columns`
        without materializing a Python dict (the vectorized fast path
        the binary sweep transport rides on).  Counters come from the
        kernel's incremental ``edge``/``het`` arrays, which the fuzz
        tests cross-check against from-scratch recounts.
        """
        self._check_replica(replica)
        W, A, ox, oy = self.W, self.A, self.ox, self.oy
        gp = self.gpos.reshape(self.R, self.n)[replica]
        local = gp - replica * A
        x = local % W + ox
        y = local // W + oy
        colors = self.arena[gp].astype(np.int64) - 1
        return (
            x,
            y,
            colors,
            self.k,
            int(self.edge[replica]),
            int(self.het[replica]),
        )

    # -- crash-consistent state snapshots -----------------------------------

    def export_state(self) -> Dict[str, object]:
        """Full kernel state for a crash-consistent mid-run snapshot.

        Returns a mapping shaped for :func:`repro.util.codec.encode_state`:
        scalar geometry/identity metadata plus a ``columns`` dict holding
        the arenas, particle positions, proposal streams, and incremental
        counters.  The per-replica PCG64 bit-generator states ride along
        so :meth:`restore_state` resumes the *exact* draw sequence — the
        unconsumed tails of the ``IDXG``/``D``/``Q`` streams plus
        ``cursor`` are captured verbatim, because re-drawing them would
        shift every refill point downstream.  ``MD`` is derived
        (``MDELT[D]``) and the ratio tables are pure functions of
        ``(lam, gamma)``, so both are recomputed on restore.  A restored
        kernel is bit-identical to one that was never stopped.
        """
        return {
            "kind": "batch-kernel",
            "lam": self.lam,
            "gamma": self.gamma,
            "swaps": self.swaps,
            "replicas": self.R,
            "n": self.n,
            "num_colors": self.k,
            "window": self.window,
            "width": self.W,
            "height": self.H,
            "ox": self.ox,
            "oy": self.oy,
            "margin": self._margin,
            "rng_states": [g.bit_generator.state for g in self.gens],
            "columns": {
                "arena": self.arena,
                "gpos": self.gpos,
                "idxg": self.IDXG,
                "d": self.D,
                "q": self.Q,
                "cursor": self.cursor,
                "edge": self.edge,
                "het": self.het,
                "iters": self.iters,
                "acc_moves": self.acc_moves,
                "acc_swaps": self.acc_swaps,
            },
        }

    def restore_state(self, payload: Mapping) -> None:
        """Adopt a snapshot produced by :meth:`export_state`.

        The kernel must have been constructed for the same cell (same
        ``lam``/``gamma``/``swaps``/``replicas``/``n``/``window``); the
        constructor-built geometry and streams are discarded wholesale
        and replaced by the snapshot's.  Raises ``ValueError`` on any
        identity mismatch or malformed column — nothing is mutated
        until every field has validated, so a failed restore leaves the
        kernel usable for a cold start.
        """
        if payload.get("kind") != "batch-kernel":
            raise ValueError(
                f"state payload kind {payload.get('kind')!r} "
                "is not a batch-kernel snapshot"
            )
        expected = {
            "lam": self.lam,
            "gamma": self.gamma,
            "swaps": self.swaps,
            "replicas": self.R,
            "n": self.n,
            "num_colors": self.k,
            "window": self.window,
        }
        for field, current in expected.items():
            if payload.get(field) != current:
                raise ValueError(
                    f"state payload {field}={payload.get(field)!r} does not "
                    f"match kernel {field}={current!r}"
                )
        rng_states = payload.get("rng_states")
        if not isinstance(rng_states, (list, tuple)) or len(rng_states) != self.R:
            raise ValueError("state payload rng_states does not cover every replica")
        columns = payload.get("columns")
        if not isinstance(columns, dict):
            raise ValueError("state payload is missing its columns mapping")
        R, T, n = self.R, self.T, self.n
        W = int(payload["width"])
        H = int(payload["height"])
        A = W * H
        try:
            # np.array copies: decoded columns are read-only frombuffer
            # views over the decompressed frame body.
            arena = np.array(columns["arena"], dtype=np.int8)
            gpos = np.array(columns["gpos"], dtype=np.int64)
            idxg = np.array(columns["idxg"], dtype=np.int64)
            d = np.array(columns["d"], dtype=np.int64)
            q = np.array(columns["q"], dtype=np.float64)
            cursor = np.array(columns["cursor"], dtype=np.int64)
            counters = {
                name: np.array(columns[name], dtype=np.int64)
                for name in ("edge", "het", "iters", "acc_moves", "acc_swaps")
            }
        except KeyError as error:
            raise ValueError(f"state payload is missing column {error}") from error
        shapes = {
            "arena": (arena, (R * A,)),
            "gpos": (gpos, (R * n,)),
            "idxg": (idxg, (R, T)),
            "d": (d, (R, T)),
            "q": (q, (R, T)),
            "cursor": (cursor, (R,)),
        }
        for name, (array, want) in shapes.items():
            if array.shape != want:
                raise ValueError(
                    f"state column {name!r} has shape {array.shape}, "
                    f"expected {want}"
                )
        for name, array in counters.items():
            if array.shape != (R,):
                raise ValueError(
                    f"state column {name!r} has shape {array.shape}, "
                    f"expected {(R,)}"
                )
        if (d < 0).any() or (d >= 6).any():
            raise ValueError("state column 'd' holds out-of-range directions")
        self._margin = int(payload["margin"])
        self.W, self.H, self.A = W, H, A
        self.ox, self.oy = int(payload["ox"]), int(payload["oy"])
        self.arena = arena
        self.gpos = gpos
        self.IDXG = idxg
        self.D = d
        self.Q = q
        self.cursor = cursor
        self.edge = counters["edge"]
        self.het = counters["het"]
        self.iters = counters["iters"]
        self.acc_moves = counters["acc_moves"]
        self.acc_swaps = counters["acc_swaps"]
        self._geometry(W, H)
        self.MD = np.take(self.MDELT, self.D)
        for gen, state in zip(self.gens, rng_states):
            gen.bit_generator.state = state

    def _check_replica(self, replica: int) -> None:
        if not 0 <= replica < self.R:
            raise IndexError(
                f"replica index {replica} out of range [0, {self.R})"
            )
