"""The paper's primary contribution: stochastic separation algorithms.

* :class:`SeparationChain` — Markov chain :math:`\\mathcal{M}`
  (Algorithm 1) for separation and integration of colored particles.
* :class:`CompressionChain` — the homogeneous compression chain of
  PODC '16 recovered as the :math:`\\gamma = 1` special case.
* :class:`PottsSeparationChain` — the k-color extension sketched in
  Section 5.
* Move-validity logic (Properties 4 and 5) in :mod:`repro.core.moves`.
* Annealing schedules in :mod:`repro.core.schedule`.
"""

from repro.core.moves import (
    move_allowed,
    move_allowed_between,
    move_allowed_reference,
    satisfies_property_4,
    satisfies_property_5,
)
from repro.core.separation_chain import (
    SeparationChain,
    evaluate_move,
    evaluate_swap,
    stationary_log_weight,
)
from repro.core.compression_chain import (
    COMPRESSION_THRESHOLD,
    EXPANSION_THRESHOLD,
    CompressionChain,
    compression_ratio,
    is_compressed,
)
from repro.core.potts import (
    PottsSeparationChain,
    dominant_cluster_fractions,
    interface_density,
)
from repro.core.schedule import (
    ConstantSchedule,
    GeometricSchedule,
    LinearSchedule,
    run_annealed,
)
from repro.core.energy import (
    CompressionEnergy,
    EnergyChain,
    InteractionEnergy,
    LocalEnergy,
    SeparationEnergy,
)

__all__ = [
    "SeparationChain",
    "CompressionChain",
    "PottsSeparationChain",
    "evaluate_move",
    "evaluate_swap",
    "stationary_log_weight",
    "move_allowed",
    "move_allowed_between",
    "move_allowed_reference",
    "satisfies_property_4",
    "satisfies_property_5",
    "COMPRESSION_THRESHOLD",
    "EXPANSION_THRESHOLD",
    "compression_ratio",
    "is_compressed",
    "dominant_cluster_fractions",
    "interface_density",
    "ConstantSchedule",
    "GeometricSchedule",
    "LinearSchedule",
    "run_annealed",
    "LocalEnergy",
    "SeparationEnergy",
    "CompressionEnergy",
    "InteractionEnergy",
    "EnergyChain",
]
