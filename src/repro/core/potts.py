"""Separation with more than two color classes (Section 5 extension).

The paper restricts the analysis to :math:`k = 2` colors but notes the
algorithm "performs well in practice for larger values of k", with proofs
expected to generalize via Pirogov-Sinai contours.  Algorithm 1 itself is
color-count agnostic — the bias exponent counts only *same-color*
neighbors of the moving particle — so :class:`PottsSeparationChain` is a
thin layer over the bichromatic engine that adds k-color construction
helpers and k-aware observables.

The name nods to the statistical-physics correspondence: two colors map
to the Ising model, k colors to the Potts model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.separation_chain import SeparationChain
from repro.system.configuration import ParticleSystem
from repro.system.initializers import hexagon_system, random_blob_system
from repro.system.observables import monochromatic_cluster_sizes
from repro.util.rng import RngLike


class PottsSeparationChain(SeparationChain):
    """Separation chain over :math:`k \\ge 2` color classes."""

    def __init__(
        self,
        system: ParticleSystem,
        lam: float,
        gamma: float,
        swaps: bool = True,
        seed: RngLike = None,
    ):
        if system.num_colors < 2:
            raise ValueError(
                f"PottsSeparationChain needs k >= 2 colors, got {system.num_colors}"
            )
        super().__init__(system, lam=lam, gamma=gamma, swaps=swaps, seed=seed)

    @classmethod
    def balanced(
        cls,
        n: int,
        k: int,
        lam: float,
        gamma: float,
        swaps: bool = True,
        seed: RngLike = None,
        compact_start: bool = True,
    ) -> "PottsSeparationChain":
        """Chain over ``n`` particles split evenly among ``k`` colors.

        ``compact_start=True`` begins from a randomly colored hexagon
        (the typical experimental setting); otherwise from a random
        connected blob.
        """
        if k < 2:
            raise ValueError(f"k must be at least 2, got {k}")
        if n < k:
            raise ValueError(f"need at least one particle per color, n={n} k={k}")
        if compact_start:
            system = hexagon_system(n, num_colors=k, seed=seed)
        else:
            system = random_blob_system(n, num_colors=k, seed=seed)
        return cls(system, lam=lam, gamma=gamma, swaps=swaps, seed=seed)


def dominant_cluster_fractions(system: ParticleSystem) -> List[float]:
    """Per color: fraction of that color's particles in its largest cluster.

    In a k-separated system every entry approaches 1; in an integrated
    system entries are small.  This is the k-color order parameter used by
    the E11 benchmark.
    """
    sizes = monochromatic_cluster_sizes(system)
    counts = [0] * system.num_colors
    for color in system.colors.values():
        counts[color] += 1
    fractions: List[float] = []
    for color in range(system.num_colors):
        if counts[color] == 0:
            fractions.append(0.0)
        else:
            largest = sizes[color][0] if sizes[color] else 0
            fractions.append(largest / counts[color])
    return fractions


def interface_density(system: ParticleSystem) -> float:
    """Heterogeneous edges per configuration edge, in ``[0, 1]``.

    The k-color analogue of :math:`h(\\sigma)` normalized by
    :math:`e(\\sigma)`; low values indicate separation.
    """
    if system.edge_total == 0:
        return 0.0
    return system.hetero_total / system.edge_total


def balanced_counts(n: int, k: int) -> Optional[Sequence[int]]:
    """Even split of ``n`` particles into ``k`` color counts."""
    base = n // k
    counts = [base] * k
    for i in range(n - base * k):
        counts[i] += 1
    return counts
