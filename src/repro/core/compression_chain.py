"""The compression chain of [CannonDRR16] (PODC '16).

The paper's separation algorithm generalizes the earlier compression
algorithm: with a single color class and :math:`\\gamma = 1`, Algorithm 1
reduces exactly to the compression chain, whose stationary distribution is
:math:`\\pi(\\sigma) \\propto \\lambda^{e(\\sigma)}`.  [CannonDRR16] proves
:math:`\\alpha`-compression occurs w.h.p. for
:math:`\\lambda > 2 + \\sqrt{2}` and that expansion occurs for
:math:`\\lambda < 2.17`.

This module provides the baseline as a first-class object so experiments
can compare the heterogeneous chain against its homogeneous special case
(benchmark E4), and exposes the proven thresholds.
"""

from __future__ import annotations

import math

from repro.core.separation_chain import SeparationChain
from repro.system.configuration import ParticleSystem
from repro.system.initializers import hexagon_system, line_system
from repro.util.rng import RngLike

#: λ above which [CannonDRR16] proves α-compression w.h.p. (for some α).
COMPRESSION_THRESHOLD = 2.0 + math.sqrt(2.0)

#: λ below which [CannonDRR16] proves expansion (no compression) w.h.p.
EXPANSION_THRESHOLD = 2.17


class CompressionChain(SeparationChain):
    """Markov chain for compression in homogeneous particle systems.

    A :class:`~repro.core.separation_chain.SeparationChain` constrained to
    one color class with :math:`\\gamma = 1` and swaps disabled (swaps are
    meaningless when all particles are indistinguishable).

    Observability hooks are inherited unchanged: ``instrument()`` attaches
    the same ``chain.*`` metrics, trace spans, and log events as the
    heterogeneous chain (with ``chain.swaps_accepted`` pinned at zero),
    so compression baselines and separation runs share dashboards.

    The flat-grid step kernel is likewise inherited: pass
    ``backend="grid"|"dict"|"auto"`` to select it, with the same
    bit-identical-trajectory guarantee as the heterogeneous chain (the
    local rule is shared, so one fast kernel speeds both).
    ``backend="batch"`` selects the replica-batched NumPy kernel (swaps
    are disabled here, so it runs its move-only fast path); like the
    heterogeneous chain this is a distinct RNG regime, statistically —
    not bit-wise — equivalent to the reference kernels.
    """

    def __init__(
        self,
        system: ParticleSystem,
        lam: float,
        seed: RngLike = None,
        backend: str = "auto",
    ):
        distinct = set(system.colors.values())
        if len(distinct) > 1:
            raise ValueError(
                "CompressionChain requires a homogeneous system; "
                f"found colors {sorted(distinct)}"
            )
        super().__init__(
            system,
            lam=lam,
            gamma=1.0,
            swaps=False,
            seed=seed,
            backend=backend,
        )

    @classmethod
    def from_line(
        cls, n: int, lam: float, seed: RngLike = None, backend: str = "auto"
    ) -> "CompressionChain":
        """Chain started from the maximum-perimeter (line) configuration."""
        system = line_system(n, counts=[n, 0], num_colors=2, shuffle=False)
        return cls(system, lam=lam, seed=seed, backend=backend)

    @classmethod
    def from_hexagon(
        cls, n: int, lam: float, seed: RngLike = None, backend: str = "auto"
    ) -> "CompressionChain":
        """Chain started from the near-minimum-perimeter configuration."""
        system = hexagon_system(n, counts=[n, 0], num_colors=2, shuffle=False)
        return cls(system, lam=lam, seed=seed, backend=backend)


def compression_ratio(system: ParticleSystem) -> float:
    """Perimeter relative to the minimum possible: :math:`p / p_{min}(n)`.

    The system is α-compressed iff this ratio is at most α.  Uses the
    exact minimum perimeter (see
    :func:`repro.analysis.compression_metric.minimum_perimeter`).
    """
    from repro.analysis.compression_metric import minimum_perimeter

    p_min = minimum_perimeter(system.n)
    if p_min == 0:
        return 1.0
    return system.perimeter() / p_min


def is_compressed(system: ParticleSystem, alpha: float) -> bool:
    """Whether the configuration is α-compressed (:math:`p \\le \\alpha p_{min}`)."""
    if alpha < 1:
        raise ValueError(f"alpha must be at least 1, got {alpha}")
    return compression_ratio(system) <= alpha


def proven_compression_lambda(margin: float = 0.0) -> float:
    """Smallest λ proven to compress homogeneous systems, plus ``margin``."""
    return COMPRESSION_THRESHOLD + margin
