"""Markov chain :math:`\\mathcal{M}` for separation and integration.

This is Algorithm 1 of the paper.  Each step:

1. choose a particle :math:`P` uniformly at random (color :math:`c_i`,
   location :math:`\\ell`);
2. choose a neighboring location :math:`\\ell'` and :math:`q \\in (0,1)`
   uniformly at random;
3. if :math:`\\ell'` is unoccupied, move :math:`P` there provided
   (i) :math:`P` does not have five neighbors, (ii) Property 4 or 5 holds,
   and (iii) :math:`q < \\lambda^{e'-e} \\gamma^{e_i'-e_i}`;
4. if :math:`\\ell'` holds a particle :math:`Q` of another color, swap the
   two provided :math:`q < \\gamma^{\\Delta a}` where :math:`\\Delta a` is
   the change in homogeneous-edge count.

All quantities are strictly local (the eight nodes surrounding the edge
:math:`(\\ell, \\ell')`), which is what allows the chain to be realized by
the fully distributed algorithm in :mod:`repro.distributed`.

Performance notes: the step loop avoids attribute lookups and function
calls by caching the color map, precomputing the edge-ring offsets per
direction, table-driving the Property 4/5 check over the 256 ring
occupancy bitmasks, and table-driving the bias powers
:math:`\\lambda^{\\Delta e} \\gamma^{\\Delta e_i}`.
"""

from __future__ import annotations

import math
import random as _random
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Instrumentation, JsonLogger, MetricsRegistry, TraceRecorder

from repro.core.moves import (
    DST_RING_INDICES,
    SRC_RING_INDICES,
    move_allowed,
)
from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node, direction_between
from repro.system.configuration import ParticleSystem
from repro.util.rng import RngLike, make_rng, uniform_chunk

# ----------------------------------------------------------------------
# Precomputed tables
# ----------------------------------------------------------------------


def _build_ring_offsets() -> Tuple[Tuple[Tuple[int, int], ...], ...]:
    """For each move direction d, offsets of the 8 edge-ring nodes.

    Offsets are relative to the source node; the ring index convention is
    that of :func:`repro.lattice.triangular.edge_ring` (positions 0 and 4
    are the common neighbors).
    """
    tables = []
    for d in range(6):
        vdx, vdy = NEIGHBOR_OFFSETS[d]
        ring = []
        # Position 0: common neighbor on the counterclockwise side.
        ring.append(NEIGHBOR_OFFSETS[(d + 1) % 6])
        # Positions 1-3: exclusive neighbors of the destination.
        for step in (1, 0, 5):
            dx, dy = NEIGHBOR_OFFSETS[(d + step) % 6]
            ring.append((vdx + dx, vdy + dy))
        # Position 4: common neighbor on the clockwise side.
        ring.append(NEIGHBOR_OFFSETS[(d + 5) % 6])
        # Positions 5-7: exclusive neighbors of the source.
        for step in (4, 3, 2):
            ring.append(NEIGHBOR_OFFSETS[(d + step) % 6])
        tables.append(tuple(ring))
    return tuple(tables)


RING_OFFSETS = _build_ring_offsets()

#: MOVE_OK[mask] — whether Property 4 or 5 holds for the ring occupancy
#: bitmask (bit i set iff ring position i occupied).
MOVE_OK: Tuple[bool, ...] = tuple(
    move_allowed([bool(mask & (1 << i)) for i in range(8)])
    for mask in range(256)
)

_SRC_MASK = sum(1 << i for i in SRC_RING_INDICES)
_DST_MASK = sum(1 << i for i in DST_RING_INDICES)

#: Number of occupied source-side / destination-side neighbors per mask.
E_SRC: Tuple[int, ...] = tuple(bin(mask & _SRC_MASK).count("1") for mask in range(256))
E_DST: Tuple[int, ...] = tuple(bin(mask & _DST_MASK).count("1") for mask in range(256))


#: Uniform draws per refill of the batched run() fast path.
_RNG_CHUNK = 4096


def _clamped_power(base: float, exponent: int) -> float:
    """``base ** exponent`` with overflow clamped to ``math.inf``.

    ``float.__pow__`` raises ``OverflowError`` for results above the
    float range (e.g. ``1e40 ** 10`` while building the swap table for
    the large-γ limit of Theorem 14) but silently underflows to ``0.0``
    below it; clamping the overflow side to ``inf`` makes both
    directions total, so extreme-but-valid biases construct fine.
    """
    try:
        return base ** exponent
    except OverflowError:
        return math.inf


def _power_table(base: float, max_abs_exponent: int) -> List[float]:
    """``table[k + max_abs_exponent] == base ** k`` for |k| <= max.

    Entries overflowing the float range clamp to ``math.inf`` (and
    underflow naturally to ``0.0``) instead of raising at construction.
    """
    return [
        _clamped_power(base, k)
        for k in range(-max_abs_exponent, max_abs_exponent + 1)
    ]


def bias_ratio(lam: float, gamma: float, delta_e: int, delta_ei: int) -> float:
    """:math:`\\lambda^{\\Delta e} \\gamma^{\\Delta e_i}`, overflow-safe.

    Resolves the indeterminate ``inf * 0`` corner (one bias extremely
    large, the other extremely small) in log space, which is where the
    product is well defined.
    """
    ratio = _clamped_power(lam, delta_e) * _clamped_power(gamma, delta_ei)
    if ratio != ratio:  # nan from inf * 0: resolve via logarithms
        log_ratio = delta_e * math.log(lam) + delta_ei * math.log(gamma)
        if log_ratio > 0.0:
            return math.inf
        return math.exp(log_ratio)
    return ratio


class SeparationChain:
    """Sampler for the separation/integration chain :math:`\\mathcal{M}`.

    Parameters
    ----------
    system:
        The particle system to evolve (mutated in place).
    lam:
        Neighbor bias :math:`\\lambda`; values above 1 favor compression.
    gamma:
        Homogeneity bias :math:`\\gamma`; values above 1 favor same-color
        neighbors.  ``gamma=1`` recovers the color-blind compression chain
        of [CannonDRR16].
    swaps:
        Whether neighboring particles of different colors may exchange
        positions (Section 2.3).  Swaps accelerate convergence but do not
        affect the stationary distribution; the ablation benchmark
        quantifies this.
    seed:
        Integer seed or ``random.Random`` for reproducibility.

    Attributes
    ----------
    iterations:
        Total steps taken.
    accepted_moves, accepted_swaps:
        Counts of accepted location moves / color swaps.
    """

    def __init__(
        self,
        system: ParticleSystem,
        lam: float,
        gamma: float,
        swaps: bool = True,
        seed: RngLike = None,
    ):
        if lam <= 0:
            raise ValueError(f"lambda must be positive, got {lam}")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.system = system
        self.lam = float(lam)
        self.gamma = float(gamma)
        self.swaps = bool(swaps)
        self.rng = make_rng(seed)
        self.iterations = 0
        self.accepted_moves = 0
        self.accepted_swaps = 0
        self._positions: List[Node] = list(system.colors)
        self._lam_pow = _power_table(self.lam, 5)
        self._gam_pow = _power_table(self.gamma, 5)
        self._gam_pow_swap = _power_table(self.gamma, 10)
        self._log_lam = math.log(self.lam)
        self._log_gam = math.log(self.gamma)
        # Leftover uniforms from a chunked run(); consumed before any new
        # draw so that interleaving run() and step() stays on one stream.
        self._buffer: List[float] = []
        self._buffer_pos = 0
        # Chunked drawing is only safe when the chain owns a plain
        # random.Random.  Subclasses (e.g. the replay stream used by the
        # coupling diagnostics) rely on draw-by-draw consumption, so they
        # take the reference single-step path.
        self._batch_rng = type(self.rng) is _random.Random
        # Observability hooks (see instrument()).  Disabled by default;
        # run() pays exactly one boolean check when uninstrumented, and
        # the hooks never touch the RNG stream, so instrumented and
        # uninstrumented trajectories are bit-identical (asserted by the
        # regression test in tests/test_obs.py).
        self._obs_metrics: Optional["MetricsRegistry"] = None
        self._obs_trace: Optional["TraceRecorder"] = None
        self._obs_logger: Optional["JsonLogger"] = None
        self._obs_active = False

    # ------------------------------------------------------------------

    def _uniform(self) -> float:
        """Next uniform draw, honoring any chunk left over from run().

        The batched fast path may have drawn ahead of what it consumed;
        serving those leftovers first keeps a mixed run()/step() usage on
        the exact stream a pure step() loop would have seen.
        """
        pos = self._buffer_pos
        if pos < len(self._buffer):
            self._buffer_pos = pos + 1
            return self._buffer[pos]
        return self.rng.random()

    def step(self) -> bool:
        """Execute one iteration of Algorithm 1.

        Returns whether the configuration changed.  This is the
        reference single-step path; :meth:`run` batches the same logic
        (and the test suite asserts both produce identical trajectories
        for the same seed).
        """
        system = self.system
        colors = system.colors
        positions = self._positions
        random = self._uniform
        self.iterations += 1

        idx = int(random() * len(positions))
        src = positions[idx]
        ci = colors[src]
        d = int(random() * 6)
        dx, dy = NEIGHBOR_OFFSETS[d]
        x, y = src
        dst = (x + dx, y + dy)
        dst_color = colors.get(dst)
        if dst_color is not None and (not self.swaps or dst_color == ci):
            return False  # occupied target and no swap possible: no-op

        ring_offsets = RING_OFFSETS[d]
        ring_colors = []
        mask = 0
        bit = 1
        for rdx, rdy in ring_offsets:
            c = colors.get((x + rdx, y + rdy))
            ring_colors.append(c)
            if c is not None:
                mask |= bit
            bit <<= 1

        if dst_color is None:
            # --- Expansion move (Algorithm 1, lines 3-8) ---
            e_src = E_SRC[mask]
            if e_src == 5:
                return False
            if not MOVE_OK[mask]:
                return False
            e_dst = E_DST[mask]
            ei_src = 0
            for i in SRC_RING_INDICES:
                if ring_colors[i] == ci:
                    ei_src += 1
            ei_dst = 0
            for i in DST_RING_INDICES:
                if ring_colors[i] == ci:
                    ei_dst += 1
            ratio = (
                self._lam_pow[e_dst - e_src + 5]
                * self._gam_pow[ei_dst - ei_src + 5]
            )
            if ratio != ratio:  # inf * 0 under extreme biases
                log_ratio = (
                    (e_dst - e_src) * self._log_lam
                    + (ei_dst - ei_src) * self._log_gam
                )
                ratio = math.inf if log_ratio > 0.0 else math.exp(log_ratio)
            if ratio < 1.0 and random() >= ratio:
                return False
            # Accept: move the particle and update counters locally.
            del colors[src]
            colors[dst] = ci
            positions[idx] = dst
            system.edge_total += e_dst - e_src
            system.hetero_total += (e_dst - ei_dst) - (e_src - ei_src)
            self.accepted_moves += 1
            return True

        # --- Swap move (Algorithm 1, lines 9-10) ---
        cj = dst_color
        expo = 0
        for i in DST_RING_INDICES:
            c = ring_colors[i]
            if c == ci:
                expo += 1  # |N_i(l') \ {P}|
            elif c == cj:
                expo -= 1  # |N_j(l')|
        for i in SRC_RING_INDICES:
            c = ring_colors[i]
            if c == ci:
                expo -= 1  # |N_i(l)|
            elif c == cj:
                expo += 1  # |N_j(l) \ {Q}|
        ratio = self._gam_pow_swap[expo + 10]
        if ratio < 1.0 and random() >= ratio:
            return False
        colors[src] = cj
        colors[dst] = ci
        system.hetero_total -= expo
        self.accepted_swaps += 1
        return True

    def instrument(
        self,
        obs: Optional["Instrumentation"] = None,
        *,
        metrics: Optional["MetricsRegistry"] = None,
        trace: Optional["TraceRecorder"] = None,
        logger: Optional["JsonLogger"] = None,
    ) -> "SeparationChain":
        """Attach observability hooks; returns ``self`` for chaining.

        Accepts either an :class:`repro.obs.Instrumentation` bundle or
        the individual instruments.  Hooks fire once per :meth:`run`
        call (never per step), record wall-time, throughput, and
        counter deltas, and do not consume randomness — trajectories
        stay bit-identical to uninstrumented runs.  Passing nothing
        detaches all hooks.
        """
        if obs is not None:
            metrics = metrics or obs.metrics
            trace = trace or obs.trace
            logger = logger or obs.logger
        self._obs_metrics = metrics
        self._obs_trace = trace
        self._obs_logger = logger
        self._obs_active = (
            metrics is not None or trace is not None or logger is not None
        )
        return self

    def run(self, steps: int) -> "SeparationChain":
        """Execute ``steps`` iterations; returns ``self`` for chaining.

        When the chain owns a plain ``random.Random`` this uses a batched
        fast path: the step logic is inlined (no per-step method call or
        attribute traffic) and the particle-index/direction/q uniforms
        are drawn in chunks via :func:`repro.util.rng.uniform_chunk`
        instead of three ``random()`` calls per step.  Consumption order
        is strictly sequential and unused draws are carried over in a
        buffer, so the trajectory is identical to calling :meth:`step`
        ``steps`` times with the same seed — including across mixed
        ``run()``/``step()`` call sequences.

        With :meth:`instrument` attached, the run is additionally timed
        and reported (metrics counters/gauges/histogram, one trace span,
        one debug log event) — all outside the step loop, so the fast
        path and the RNG stream are untouched.
        """
        if not self._obs_active:
            return self._run_steps(steps)
        trace = self._obs_trace
        trace_start = trace.now() if trace is not None else 0.0
        moves_before = self.accepted_moves
        swaps_before = self.accepted_swaps
        wall_start = time.perf_counter()
        self._run_steps(steps)
        elapsed = time.perf_counter() - wall_start
        self._record_run(steps, elapsed, moves_before, swaps_before, trace_start)
        return self

    def _record_run(
        self,
        steps: int,
        elapsed: float,
        moves_before: int,
        swaps_before: int,
        trace_start: float,
    ) -> None:
        """Publish one run()'s worth of observability data (cold path)."""
        delta_moves = self.accepted_moves - moves_before
        delta_swaps = self.accepted_swaps - swaps_before
        metrics = self._obs_metrics
        if metrics is not None:
            metrics.counter("chain.steps").inc(steps)
            metrics.counter("chain.moves_accepted").inc(delta_moves)
            metrics.counter("chain.swaps_accepted").inc(delta_swaps)
            metrics.histogram("chain.run_seconds").observe(elapsed)
            if elapsed > 0.0:
                metrics.gauge("chain.steps_per_sec").set(steps / elapsed)
            metrics.gauge("chain.perimeter").set(self.system.perimeter())
            metrics.gauge("chain.hetero_edges").set(self.system.hetero_total)
            metrics.gauge("chain.edge_total").set(self.system.edge_total)
            if self.iterations:
                metrics.gauge("chain.acceptance_rate").set(
                    (self.accepted_moves + self.accepted_swaps) / self.iterations
                )
        trace = self._obs_trace
        if trace is not None:
            trace.complete(
                "chain.run",
                trace_start,
                steps=steps,
                accepted_moves=delta_moves,
                accepted_swaps=delta_swaps,
            )
        logger = self._obs_logger
        if logger is not None:
            logger.debug(
                "chain.run",
                steps=steps,
                seconds=elapsed,
                accepted_moves=delta_moves,
                accepted_swaps=delta_swaps,
                iterations=self.iterations,
            )

    def _run_steps(self, steps: int) -> "SeparationChain":
        """The uninstrumented run loop (reference + batched fast path)."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        if not self._batch_rng:
            step = self.step
            for _ in range(steps):
                step()
            return self
        if steps == 0:
            return self

        # --- Batched fast path (inlined step(); see tests for identity) ---
        system = self.system
        colors = system.colors
        colors_get = colors.get
        positions = self._positions
        n_particles = len(positions)
        swaps_enabled = self.swaps
        lam_pow = self._lam_pow
        gam_pow = self._gam_pow
        gam_pow_swap = self._gam_pow_swap
        log_lam = self._log_lam
        log_gam = self._log_gam
        move_ok = MOVE_OK
        e_src_table = E_SRC
        e_dst_table = E_DST
        ring_tables = RING_OFFSETS
        offsets = NEIGHBOR_OFFSETS
        src_indices = SRC_RING_INDICES
        dst_indices = DST_RING_INDICES
        rng = self.rng
        buffer = self._buffer
        pos = self._buffer_pos
        size = len(buffer)
        edge_total = system.edge_total
        hetero_total = system.hetero_total
        accepted_moves = 0
        accepted_swaps = 0

        for remaining in range(steps, 0, -1):
            if size - pos < 3:
                # Refill with at most the worst-case demand of the rest
                # of this run (3 draws/step) so over-draw stays bounded;
                # leftovers persist in self._buffer for the next call.
                need = 3 * remaining - (size - pos)
                buffer = buffer[pos:] + uniform_chunk(
                    rng, need if need < _RNG_CHUNK else _RNG_CHUNK
                )
                pos = 0
                size = len(buffer)

            idx = int(buffer[pos] * n_particles)
            pos += 1
            src = positions[idx]
            ci = colors[src]
            d = int(buffer[pos] * 6)
            pos += 1
            dx, dy = offsets[d]
            x, y = src
            dst = (x + dx, y + dy)
            dst_color = colors_get(dst)
            if dst_color is not None and (not swaps_enabled or dst_color == ci):
                continue  # occupied target and no swap possible: no-op

            ring_offsets = ring_tables[d]
            ring_colors = []
            mask = 0
            bit = 1
            for rdx, rdy in ring_offsets:
                c = colors_get((x + rdx, y + rdy))
                ring_colors.append(c)
                if c is not None:
                    mask |= bit
                bit <<= 1

            if dst_color is None:
                # --- Expansion move (Algorithm 1, lines 3-8) ---
                e_src = e_src_table[mask]
                if e_src == 5:
                    continue
                if not move_ok[mask]:
                    continue
                e_dst = e_dst_table[mask]
                ei_src = 0
                for i in src_indices:
                    if ring_colors[i] == ci:
                        ei_src += 1
                ei_dst = 0
                for i in dst_indices:
                    if ring_colors[i] == ci:
                        ei_dst += 1
                ratio = (
                    lam_pow[e_dst - e_src + 5] * gam_pow[ei_dst - ei_src + 5]
                )
                if ratio != ratio:  # inf * 0 under extreme biases
                    log_ratio = (
                        (e_dst - e_src) * log_lam + (ei_dst - ei_src) * log_gam
                    )
                    ratio = math.inf if log_ratio > 0.0 else math.exp(log_ratio)
                if ratio < 1.0:
                    q = buffer[pos]
                    pos += 1
                    if q >= ratio:
                        continue
                # Accept: move the particle and update counters locally.
                del colors[src]
                colors[dst] = ci
                positions[idx] = dst
                edge_total += e_dst - e_src
                hetero_total += (e_dst - ei_dst) - (e_src - ei_src)
                accepted_moves += 1
                continue

            # --- Swap move (Algorithm 1, lines 9-10) ---
            cj = dst_color
            expo = 0
            for i in dst_indices:
                c = ring_colors[i]
                if c == ci:
                    expo += 1  # |N_i(l') \ {P}|
                elif c == cj:
                    expo -= 1  # |N_j(l')|
            for i in src_indices:
                c = ring_colors[i]
                if c == ci:
                    expo -= 1  # |N_i(l)|
                elif c == cj:
                    expo += 1  # |N_j(l) \ {Q}|
            ratio = gam_pow_swap[expo + 10]
            if ratio < 1.0:
                q = buffer[pos]
                pos += 1
                if q >= ratio:
                    continue
            colors[src] = cj
            colors[dst] = ci
            hetero_total -= expo
            accepted_swaps += 1

        system.edge_total = edge_total
        system.hetero_total = hetero_total
        self.iterations += steps
        self.accepted_moves += accepted_moves
        self.accepted_swaps += accepted_swaps
        self._buffer = buffer
        self._buffer_pos = pos
        return self

    # ------------------------------------------------------------------
    # Exact per-proposal probabilities (used by repro.markov.exact)
    # ------------------------------------------------------------------

    def move_acceptance_probability(self, src: Node, dst: Node) -> float:
        """Probability a proposed move ``src -> dst`` is accepted.

        Zero when the move is disallowed by condition (i) or Properties
        4/5.  This mirrors :meth:`step` exactly but without mutating
        state; the exact-transition-matrix builder relies on it.
        """
        colors = self.system.colors
        if src not in colors or dst in colors:
            return 0.0
        details = evaluate_move(colors, src, dst, self.lam, self.gamma)
        return details[0]

    def swap_acceptance_probability(self, u: Node, v: Node) -> float:
        """Probability a proposed swap of ``u`` and ``v`` is accepted."""
        if not self.swaps:
            return 0.0
        colors = self.system.colors
        if u not in colors or v not in colors or colors[u] == colors[v]:
            return 0.0
        return evaluate_swap(colors, u, v, self.gamma)[0]

    def set_parameters(
        self, lam: Optional[float] = None, gamma: Optional[float] = None
    ) -> None:
        """Change the bias parameters mid-run (for annealing schedules).

        Rebuilds the internal power tables; the chain then targets the
        stationary distribution of the new parameters.
        """
        if lam is not None:
            if lam <= 0:
                raise ValueError(f"lambda must be positive, got {lam}")
            self.lam = float(lam)
            self._lam_pow = _power_table(self.lam, 5)
            self._log_lam = math.log(self.lam)
        if gamma is not None:
            if gamma <= 0:
                raise ValueError(f"gamma must be positive, got {gamma}")
            self.gamma = float(gamma)
            self._gam_pow = _power_table(self.gamma, 5)
            self._gam_pow_swap = _power_table(self.gamma, 10)
            self._log_gam = math.log(self.gamma)

    def refresh_positions(self) -> None:
        """Re-sync the internal particle list with the system state.

        Call after mutating ``self.system`` outside the chain (the chain
        otherwise assumes exclusive ownership while running).
        """
        self._positions = list(self.system.colors)

    def acceptance_rate(self) -> float:
        """Fraction of iterations that changed the configuration.

        Returns ``float("nan")`` before any iteration: a chain that has
        not run yet is *not* the same as one that ran and froze, and a
        silent ``0.0`` made the two indistinguishable to monitoring.
        Callers rendering the value should show NaN as ``n/a``.
        """
        if self.iterations == 0:
            return float("nan")
        return (self.accepted_moves + self.accepted_swaps) / self.iterations

    def __repr__(self) -> str:
        return (
            f"SeparationChain(n={self.system.n}, lam={self.lam}, "
            f"gamma={self.gamma}, swaps={self.swaps}, "
            f"iterations={self.iterations})"
        )


# ----------------------------------------------------------------------
# Pure move evaluation (shared with the exact-chain and distributed layers)
# ----------------------------------------------------------------------


def evaluate_move(
    colors: Dict[Node, int],
    src: Node,
    dst: Node,
    lam: float,
    gamma: float,
) -> Tuple[float, int, int]:
    """Acceptance probability and (Δe, Δe_i) of a move ``src -> dst``.

    Requires ``src`` occupied, ``dst`` an empty neighbor.  Returns
    ``(probability, delta_edges, delta_same_color_edges)`` where the
    probability already includes conditions (i) and (ii) — it is zero for
    invalid moves.
    """
    ci = colors[src]
    d = direction_between(src, dst)
    x, y = src
    ring_colors = []
    mask = 0
    bit = 1
    for rdx, rdy in RING_OFFSETS[d]:
        c = colors.get((x + rdx, y + rdy))
        ring_colors.append(c)
        if c is not None:
            mask |= bit
        bit <<= 1
    e_src = E_SRC[mask]
    if e_src == 5 or not MOVE_OK[mask]:
        return 0.0, 0, 0
    e_dst = E_DST[mask]
    ei_src = sum(1 for i in SRC_RING_INDICES if ring_colors[i] == ci)
    ei_dst = sum(1 for i in DST_RING_INDICES if ring_colors[i] == ci)
    ratio = bias_ratio(lam, gamma, e_dst - e_src, ei_dst - ei_src)
    return min(1.0, ratio), e_dst - e_src, ei_dst - ei_src


def evaluate_swap(
    colors: Dict[Node, int],
    u: Node,
    v: Node,
    gamma: float,
) -> Tuple[float, int]:
    """Acceptance probability and Δa of swapping particles at ``u, v``.

    Requires both nodes occupied by different colors.  Returns
    ``(probability, delta_homogeneous_edges)``.  The exponent is symmetric
    in ``u`` and ``v``, so either endpoint initiating yields the same
    probability (used by the 1/(3n) factor in Lemma 9's proof).
    """
    ci = colors[u]
    cj = colors[v]
    if ci == cj:
        raise ValueError("swap requires particles of different colors")
    d = direction_between(u, v)
    x, y = u
    ring_colors = []
    for rdx, rdy in RING_OFFSETS[d]:
        ring_colors.append(colors.get((x + rdx, y + rdy)))
    expo = 0
    for i in DST_RING_INDICES:
        c = ring_colors[i]
        if c == ci:
            expo += 1
        elif c == cj:
            expo -= 1
    for i in SRC_RING_INDICES:
        c = ring_colors[i]
        if c == ci:
            expo -= 1
        elif c == cj:
            expo += 1
    return min(1.0, _clamped_power(gamma, expo)), expo


def stationary_log_weight(
    system: ParticleSystem, lam: float, gamma: float
) -> float:
    """Log of the unnormalized stationary weight (Lemma 9 form)."""
    p = system.perimeter()
    return -p * math.log(lam * gamma) - system.hetero_total * math.log(gamma)
