"""Markov chain :math:`\\mathcal{M}` for separation and integration.

This is Algorithm 1 of the paper.  Each step:

1. choose a particle :math:`P` uniformly at random (color :math:`c_i`,
   location :math:`\\ell`);
2. choose a neighboring location :math:`\\ell'` and :math:`q \\in (0,1)`
   uniformly at random;
3. if :math:`\\ell'` is unoccupied, move :math:`P` there provided
   (i) :math:`P` does not have five neighbors, (ii) Property 4 or 5 holds,
   and (iii) :math:`q < \\lambda^{e'-e} \\gamma^{e_i'-e_i}`;
4. if :math:`\\ell'` holds a particle :math:`Q` of another color, swap the
   two provided :math:`q < \\gamma^{\\Delta a}` where :math:`\\Delta a` is
   the change in homogeneous-edge count.

All quantities are strictly local (the eight nodes surrounding the edge
:math:`(\\ell, \\ell')`), which is what allows the chain to be realized by
the fully distributed algorithm in :mod:`repro.distributed`.

Performance notes: the step loop avoids attribute lookups and function
calls by caching the color map, precomputing the edge-ring offsets per
direction, table-driving the Property 4/5 check over the 256 ring
occupancy bitmasks, and table-driving the bias powers
:math:`\\lambda^{\\Delta e} \\gamma^{\\Delta e_i}`.

Two interchangeable kernels execute the batched ``run()`` loop (the
``backend`` constructor knob selects one; see ``docs/performance.md``):

* ``"dict"`` — the historical hash-map kernel: the configuration lives
  in ``ParticleSystem.colors`` and every step hashes ~9 coordinate
  tuples against it;
* ``"grid"`` — a flat-arena kernel: the configuration is embedded in a
  padded bounded list indexed by ``node_id = (y - oy) * W + (x - ox)``
  (``0`` = empty, ``c + 1`` = color ``c``), ring neighborhoods become
  precomputed *integer deltas*, and the hot loop does pure integer
  indexing — no tuple construction, no hashing.  The arena regrows
  (amortized, margin doubling) when the blob nears its border, and the
  canonical ``ParticleSystem.colors`` dict is lazily re-synced — with
  the exact insertion order the dict kernel would have produced — at
  every run boundary.

Both kernels consume the *same* ``random.Random`` stream in the same
order, so trajectories are bit-identical for the same seed (regression
tested in ``tests/test_core_grid_kernel.py``).  ``"auto"`` (the
default) picks the grid kernel for runs long enough to amortize the
arena build/sync and falls back to the dict kernel otherwise.
"""

from __future__ import annotations

import math
import random as _random
import time
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Instrumentation, JsonLogger, MetricsRegistry, TraceRecorder

from repro.core.moves import (
    DST_RING_INDICES,
    SRC_RING_INDICES,
    move_allowed,
)
from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node, direction_between
from repro.system.configuration import ParticleSystem
from repro.util.rng import RngLike, make_rng, uniform_chunk

# ----------------------------------------------------------------------
# Precomputed tables
# ----------------------------------------------------------------------


def _build_ring_offsets() -> Tuple[Tuple[Tuple[int, int], ...], ...]:
    """For each move direction d, offsets of the 8 edge-ring nodes.

    Offsets are relative to the source node; the ring index convention is
    that of :func:`repro.lattice.triangular.edge_ring` (positions 0 and 4
    are the common neighbors).
    """
    tables = []
    for d in range(6):
        vdx, vdy = NEIGHBOR_OFFSETS[d]
        ring = []
        # Position 0: common neighbor on the counterclockwise side.
        ring.append(NEIGHBOR_OFFSETS[(d + 1) % 6])
        # Positions 1-3: exclusive neighbors of the destination.
        for step in (1, 0, 5):
            dx, dy = NEIGHBOR_OFFSETS[(d + step) % 6]
            ring.append((vdx + dx, vdy + dy))
        # Position 4: common neighbor on the clockwise side.
        ring.append(NEIGHBOR_OFFSETS[(d + 5) % 6])
        # Positions 5-7: exclusive neighbors of the source.
        for step in (4, 3, 2):
            ring.append(NEIGHBOR_OFFSETS[(d + step) % 6])
        tables.append(tuple(ring))
    return tuple(tables)


RING_OFFSETS = _build_ring_offsets()

#: MOVE_OK[mask] — whether Property 4 or 5 holds for the ring occupancy
#: bitmask (bit i set iff ring position i occupied).
MOVE_OK: Tuple[bool, ...] = tuple(
    move_allowed([bool(mask & (1 << i)) for i in range(8)])
    for mask in range(256)
)

_SRC_MASK = sum(1 << i for i in SRC_RING_INDICES)
_DST_MASK = sum(1 << i for i in DST_RING_INDICES)

#: Number of occupied source-side / destination-side neighbors per mask.
E_SRC: Tuple[int, ...] = tuple(bin(mask & _SRC_MASK).count("1") for mask in range(256))
E_DST: Tuple[int, ...] = tuple(bin(mask & _DST_MASK).count("1") for mask in range(256))

#: Sentinel marking a ring mask whose move proposal is always rejected
#: (source has five neighbors, or Properties 4/5 fail).
_MOVE_REJECT = 99

#: Collapsed move table for the grid kernel: ``Δe = e' - e`` per ring
#: mask, or ``_MOVE_REJECT`` when the move is disallowed.  Folds the
#: three dict-kernel lookups (``E_SRC``/``MOVE_OK``/``E_DST``) and two
#: branches into one lookup and one compare in the hot loop.
MOVE_DELTA: Tuple[int, ...] = tuple(
    (E_DST[mask] - E_SRC[mask])
    if (E_SRC[mask] != 5 and MOVE_OK[mask])
    else _MOVE_REJECT
    for mask in range(256)
)


#: Uniform draws per refill of the batched run() fast path.
_RNG_CHUNK = 4096

#: Scalar kernel backends (shared ``random.Random`` regime; the grid and
#: dict kernels produce bit-identical trajectories for a given seed).
KERNEL_BACKENDS = ("auto", "grid", "dict")

#: All backends understood by :class:`SeparationChain`: the scalar
#: kernels plus the replica-batched NumPy kernel.  ``"batch"`` is a
#: distinct RNG regime (per-replica PCG64 streams; see
#: :mod:`repro.core.batch_kernel`), so it is deliberately *not* part of
#: :data:`KERNEL_BACKENDS` — code that relies on bit-identical
#: trajectories across backends iterates the scalar tuple only.
CHAIN_BACKENDS = KERNEL_BACKENDS + ("batch",)

#: Initial empty margin (cells) around the bounding box of the
#: configuration when the flat arena is (re)built.  Must be >= 3 so
#: that every particle starts outside the 2-cell danger band.
_GRID_MARGIN = 8

#: Under ``backend="auto"``, runs shorter than this take the dict
#: kernel: the O(n + arena) grid build/sync would not amortize.
_GRID_MIN_STEPS = 256


def _clamped_power(base: float, exponent: int) -> float:
    """``base ** exponent`` with overflow clamped to ``math.inf``.

    ``float.__pow__`` raises ``OverflowError`` for results above the
    float range (e.g. ``1e40 ** 10`` while building the swap table for
    the large-γ limit of Theorem 14) but silently underflows to ``0.0``
    below it; clamping the overflow side to ``inf`` makes both
    directions total, so extreme-but-valid biases construct fine.
    """
    try:
        return base ** exponent
    except OverflowError:
        return math.inf


@lru_cache(maxsize=None)
def _power_table(base: float, max_abs_exponent: int) -> Tuple[float, ...]:
    """``table[k + max_abs_exponent] == base ** k`` for |k| <= max.

    Entries overflowing the float range clamp to ``math.inf`` (and
    underflow naturally to ``0.0``) instead of raising at construction.

    Memoized on ``(base, max_abs_exponent)``: sweeps construct
    thousands of chains over a handful of distinct biases, and
    rebuilding identical tables per chain was pure waste.  The cache
    needs no invalidation — tables are immutable tuples, and a given
    key always maps to the same values.  Entries are tiny (11 or 21
    floats), so the cache is unbounded.
    """
    return tuple(
        _clamped_power(base, k)
        for k in range(-max_abs_exponent, max_abs_exponent + 1)
    )


def bias_ratio(lam: float, gamma: float, delta_e: int, delta_ei: int) -> float:
    """:math:`\\lambda^{\\Delta e} \\gamma^{\\Delta e_i}`, overflow-safe.

    Resolves the indeterminate ``inf * 0`` corner (one bias extremely
    large, the other extremely small) in log space, which is where the
    product is well defined.
    """
    ratio = _clamped_power(lam, delta_e) * _clamped_power(gamma, delta_ei)
    if ratio != ratio:  # nan from inf * 0: resolve via logarithms
        log_ratio = delta_e * math.log(lam) + delta_ei * math.log(gamma)
        if log_ratio > 0.0:
            return math.inf
        return math.exp(log_ratio)
    return ratio


class SeparationChain:
    """Sampler for the separation/integration chain :math:`\\mathcal{M}`.

    Parameters
    ----------
    system:
        The particle system to evolve (mutated in place).
    lam:
        Neighbor bias :math:`\\lambda`; values above 1 favor compression.
    gamma:
        Homogeneity bias :math:`\\gamma`; values above 1 favor same-color
        neighbors.  ``gamma=1`` recovers the color-blind compression chain
        of [CannonDRR16].
    swaps:
        Whether neighboring particles of different colors may exchange
        positions (Section 2.3).  Swaps accelerate convergence but do not
        affect the stationary distribution; the ablation benchmark
        quantifies this.
    seed:
        Integer seed or ``random.Random`` for reproducibility.
    backend:
        Step-kernel selection: ``"grid"`` forces the flat-arena integer
        kernel, ``"dict"`` forces the historical hash-map kernel, and
        ``"auto"`` (default) uses the grid kernel for batched runs long
        enough to amortize the arena build/sync.  Both kernels consume
        the RNG stream identically, so the choice never changes a
        trajectory — only its speed.  The grid kernel engages on the
        batched ``run()`` path only; ``step()`` and subclassed-RNG
        chains always use the reference dict path.

    Attributes
    ----------
    iterations:
        Total steps taken.
    accepted_moves, accepted_swaps:
        Counts of accepted location moves / color swaps.
    """

    def __init__(
        self,
        system: ParticleSystem,
        lam: float,
        gamma: float,
        swaps: bool = True,
        seed: RngLike = None,
        backend: str = "auto",
    ):
        if lam <= 0:
            raise ValueError(f"lambda must be positive, got {lam}")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        if backend not in CHAIN_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {backend!r}; "
                f"expected one of {CHAIN_BACKENDS}"
            )
        self.system = system
        self.lam = float(lam)
        self.gamma = float(gamma)
        self.swaps = bool(swaps)
        self.rng = make_rng(seed)
        self.iterations = 0
        self.accepted_moves = 0
        self.accepted_swaps = 0
        self._positions: List[Node] = list(system.colors)
        self._lam_pow = _power_table(self.lam, 5)
        self._gam_pow = _power_table(self.gamma, 5)
        self._gam_pow_swap = _power_table(self.gamma, 10)
        self._log_lam = math.log(self.lam)
        self._log_gam = math.log(self.gamma)
        # Leftover uniforms from a chunked run(); consumed before any new
        # draw so that interleaving run() and step() stays on one stream.
        self._buffer: List[float] = []
        self._buffer_pos = 0
        # Chunked drawing is only safe when the chain owns a plain
        # random.Random.  Subclasses (e.g. the replay stream used by the
        # coupling diagnostics) rely on draw-by-draw consumption, so they
        # take the reference single-step path.
        self._batch_rng = type(self.rng) is _random.Random
        # Flat-grid kernel state (built lazily on first grid run; see
        # _grid_build).  The arena embeds the configuration in a padded
        # bounded list (0 = empty, c + 1 = color c); _grid_valid tracks
        # whether it still mirrors system.colors.
        self.backend = backend
        self._grid_enabled = backend not in ("dict", "batch") and self._batch_rng
        self._grid_force = backend == "grid"
        # Replica-batched NumPy kernel (backend="batch"): a persistent
        # single-replica BatchKernel owns the hot-loop state; the dict is
        # re-synced after every run().  Distinct RNG regime — see
        # repro.core.batch_kernel.  Built lazily on first batch run.
        self._batch_kernel = None
        self._batch_valid = False
        self._grid_margin = _GRID_MARGIN
        self._grid_valid = False
        self._grid_regrows = 0
        self._arena: List[int] = []
        self._gdanger = bytearray()
        self._gpos: List[int] = []
        self._gW = 0
        self._gH = 0
        self._gox = 0
        self._goy = 0
        self._gmove: Tuple[int, ...] = ()
        self._gring: Tuple[Tuple[int, ...], ...] = ()
        self._gring_swap: Tuple[Tuple[int, ...], ...] = ()
        self._gswap_contrib: List[List[List[int]]] = []
        self._grid_rank: List[int] = []
        self._grid_last: List[int] = []
        # Observability hooks (see instrument()).  Disabled by default;
        # run() pays exactly one boolean check when uninstrumented, and
        # the hooks never touch the RNG stream, so instrumented and
        # uninstrumented trajectories are bit-identical (asserted by the
        # regression test in tests/test_obs.py).
        self._obs_metrics: Optional["MetricsRegistry"] = None
        self._obs_trace: Optional["TraceRecorder"] = None
        self._obs_logger: Optional["JsonLogger"] = None
        self._obs_diag = None
        self._obs_active = False
        # Mid-run durability hook (see set_state_hook): called at
        # segment boundaries once at least _state_every iterations have
        # passed since the last emission.  Never touches the RNG
        # stream; the only side effect inside the chain is an early
        # dict write-back at emission points (order-identical between
        # runs sharing the same cadence).
        self._state_hook = None
        self._state_every = 0
        self._state_last = 0

    # ------------------------------------------------------------------

    def _uniform(self) -> float:
        """Next uniform draw, honoring any chunk left over from run().

        The batched fast path may have drawn ahead of what it consumed;
        serving those leftovers first keeps a mixed run()/step() usage on
        the exact stream a pure step() loop would have seen.
        """
        pos = self._buffer_pos
        if pos < len(self._buffer):
            self._buffer_pos = pos + 1
            return self._buffer[pos]
        return self.rng.random()

    def step(self) -> bool:
        """Execute one iteration of Algorithm 1.

        Returns whether the configuration changed.  This is the
        reference single-step path; :meth:`run` batches the same logic
        (and the test suite asserts both produce identical trajectories
        for the same seed).
        """
        system = self.system
        colors = system.colors
        positions = self._positions
        random = self._uniform
        self.iterations += 1
        # step() mutates the canonical dict directly, so any flat arena
        # built by a previous grid run — or a live batch kernel — no
        # longer mirrors it.
        self._grid_valid = False
        self._batch_valid = False

        idx = int(random() * len(positions))
        src = positions[idx]
        ci = colors[src]
        d = int(random() * 6)
        dx, dy = NEIGHBOR_OFFSETS[d]
        x, y = src
        dst = (x + dx, y + dy)
        dst_color = colors.get(dst)
        if dst_color is not None and (not self.swaps or dst_color == ci):
            return False  # occupied target and no swap possible: no-op

        ring_offsets = RING_OFFSETS[d]
        ring_colors = []
        mask = 0
        bit = 1
        for rdx, rdy in ring_offsets:
            c = colors.get((x + rdx, y + rdy))
            ring_colors.append(c)
            if c is not None:
                mask |= bit
            bit <<= 1

        if dst_color is None:
            # --- Expansion move (Algorithm 1, lines 3-8) ---
            e_src = E_SRC[mask]
            if e_src == 5:
                return False
            if not MOVE_OK[mask]:
                return False
            e_dst = E_DST[mask]
            ei_src = 0
            for i in SRC_RING_INDICES:
                if ring_colors[i] == ci:
                    ei_src += 1
            ei_dst = 0
            for i in DST_RING_INDICES:
                if ring_colors[i] == ci:
                    ei_dst += 1
            ratio = (
                self._lam_pow[e_dst - e_src + 5]
                * self._gam_pow[ei_dst - ei_src + 5]
            )
            if ratio != ratio:  # inf * 0 under extreme biases
                log_ratio = (
                    (e_dst - e_src) * self._log_lam
                    + (ei_dst - ei_src) * self._log_gam
                )
                ratio = math.inf if log_ratio > 0.0 else math.exp(log_ratio)
            if ratio < 1.0 and random() >= ratio:
                return False
            # Accept: move the particle and update counters locally.
            del colors[src]
            colors[dst] = ci
            positions[idx] = dst
            system.edge_total += e_dst - e_src
            system.hetero_total += (e_dst - ei_dst) - (e_src - ei_src)
            self.accepted_moves += 1
            return True

        # --- Swap move (Algorithm 1, lines 9-10) ---
        cj = dst_color
        expo = 0
        for i in DST_RING_INDICES:
            c = ring_colors[i]
            if c == ci:
                expo += 1  # |N_i(l') \ {P}|
            elif c == cj:
                expo -= 1  # |N_j(l')|
        for i in SRC_RING_INDICES:
            c = ring_colors[i]
            if c == ci:
                expo -= 1  # |N_i(l)|
            elif c == cj:
                expo += 1  # |N_j(l) \ {Q}|
        ratio = self._gam_pow_swap[expo + 10]
        if ratio < 1.0 and random() >= ratio:
            return False
        colors[src] = cj
        colors[dst] = ci
        system.hetero_total -= expo
        self.accepted_swaps += 1
        return True

    def instrument(
        self,
        obs: Optional["Instrumentation"] = None,
        *,
        metrics: Optional["MetricsRegistry"] = None,
        trace: Optional["TraceRecorder"] = None,
        logger: Optional["JsonLogger"] = None,
        diagnostics=None,
    ) -> "SeparationChain":
        """Attach observability hooks; returns ``self`` for chaining.

        Accepts either an :class:`repro.obs.Instrumentation` bundle or
        the individual instruments.  Hooks fire once per :meth:`run`
        call (never per step), record wall-time, throughput, and
        counter deltas, and do not consume randomness — trajectories
        stay bit-identical to uninstrumented runs.  Passing nothing
        detaches all hooks.

        ``diagnostics`` attaches a streaming convergence monitor (see
        :class:`repro.obs.convergence.ChainDiagnostics`): :meth:`run`
        then samples the chain's incremental observables every
        ``diagnostics.config.stride`` iterations.  Sampling segments
        the run at stride boundaries with a refill horizon that
        reproduces the unsegmented draw-ahead exactly (scalar kernels)
        or hooks the batch kernel's round loop (batch backend) — in
        both cases trajectories *and the final RNG state* stay
        bit-identical (regression tested).  A diagnostics object whose
        sinks are unset inherits the chain's metrics/logger/trace.
        """
        if obs is not None:
            metrics = metrics or obs.metrics
            trace = trace or obs.trace
            logger = logger or obs.logger
        self._obs_metrics = metrics
        self._obs_trace = trace
        self._obs_logger = logger
        if diagnostics is not None:
            if diagnostics.metrics is None:
                diagnostics.metrics = metrics
            if diagnostics.logger is None:
                diagnostics.logger = logger
            if diagnostics.trace is None:
                diagnostics.trace = trace
        self._obs_diag = diagnostics
        if self._batch_kernel is not None:
            self._batch_kernel.observer = diagnostics
        self._obs_active = (
            metrics is not None
            or trace is not None
            or logger is not None
            or diagnostics is not None
        )
        return self

    def run(self, steps: int) -> "SeparationChain":
        """Execute ``steps`` iterations; returns ``self`` for chaining.

        When the chain owns a plain ``random.Random`` this uses a batched
        fast path: the step logic is inlined (no per-step method call or
        attribute traffic) and the particle-index/direction/q uniforms
        are drawn in chunks via :func:`repro.util.rng.uniform_chunk`
        instead of three ``random()`` calls per step.  Consumption order
        is strictly sequential and unused draws are carried over in a
        buffer, so the trajectory is identical to calling :meth:`step`
        ``steps`` times with the same seed — including across mixed
        ``run()``/``step()`` call sequences.

        With :meth:`instrument` attached, the run is additionally timed
        and reported (metrics counters/gauges/histogram, one trace span,
        one debug log event) — all outside the step loop, so the fast
        path and the RNG stream are untouched.
        """
        if not self._obs_active:
            self._run_steps(steps)
            if self._state_hook is not None:
                self._maybe_state_hook()
            return self
        trace = self._obs_trace
        trace_start = trace.now() if trace is not None else 0.0
        moves_before = self.accepted_moves
        swaps_before = self.accepted_swaps
        wall_start = time.perf_counter()
        if self._obs_diag is not None:
            self._run_diagnosed(steps)
        else:
            self._run_steps(steps)
        elapsed = time.perf_counter() - wall_start
        self._record_run(steps, elapsed, moves_before, swaps_before, trace_start)
        if self._state_hook is not None:
            self._maybe_state_hook()
        return self

    def _record_run(
        self,
        steps: int,
        elapsed: float,
        moves_before: int,
        swaps_before: int,
        trace_start: float,
    ) -> None:
        """Publish one run()'s worth of observability data (cold path)."""
        delta_moves = self.accepted_moves - moves_before
        delta_swaps = self.accepted_swaps - swaps_before
        metrics = self._obs_metrics
        if metrics is not None:
            metrics.counter("chain.steps").inc(steps)
            metrics.counter("chain.moves_accepted").inc(delta_moves)
            metrics.counter("chain.swaps_accepted").inc(delta_swaps)
            metrics.histogram("chain.run_seconds").observe(elapsed)
            if elapsed > 0.0:
                metrics.gauge("chain.steps_per_sec").set(steps / elapsed)
            metrics.gauge("chain.perimeter").set(self.system.perimeter())
            metrics.gauge("chain.hetero_edges").set(self.system.hetero_total)
            metrics.gauge("chain.edge_total").set(self.system.edge_total)
            if self.iterations:
                metrics.gauge("chain.acceptance_rate").set(
                    (self.accepted_moves + self.accepted_swaps) / self.iterations
                )
        trace = self._obs_trace
        if trace is not None:
            trace.complete(
                "chain.run",
                trace_start,
                steps=steps,
                accepted_moves=delta_moves,
                accepted_swaps=delta_swaps,
            )
        logger = self._obs_logger
        if logger is not None:
            logger.debug(
                "chain.run",
                steps=steps,
                seconds=elapsed,
                accepted_moves=delta_moves,
                accepted_swaps=delta_swaps,
                iterations=self.iterations,
            )

    def _run_steps(self, steps: int) -> "SeparationChain":
        """The uninstrumented run loop (reference + batched fast paths).

        Dispatches between the flat-grid kernel and the dict kernel
        according to the ``backend`` knob; both consume the RNG stream
        identically, so the dispatch never affects the trajectory.
        """
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        if self.backend == "batch":
            return self._run_steps_batch(steps)
        if not self._batch_rng:
            step = self.step
            for _ in range(steps):
                step()
            return self
        if steps == 0:
            return self
        if self._state_hook is not None and self._state_every > 0:
            return self._run_steps_hooked(steps)
        if self._grid_enabled and (
            self._grid_force or steps >= _GRID_MIN_STEPS
        ):
            return self._run_steps_grid(steps)
        return self._run_steps_dict(steps)

    def _run_steps_hooked(self, steps: int) -> "SeparationChain":
        """Run ``steps`` iterations, firing the state hook on cadence.

        A monolithic ``run()`` would only reach the hook at its outer
        boundary — useless for a million-step cell that needs mid-run
        durability (and blind to drain requests).  This segments the
        run at ``_state_every`` boundaries with the same discipline as
        :meth:`_run_diagnosed`: the kernel choice is made once from the
        total step count, each segment passes the outer remaining count
        as its refill ``horizon``, and the grid kernel's dict
        write-back happens at emission points with absolute last-move
        indices — so the trajectory, the RNG stream, and the final
        dict insertion order are all bit-identical to an unsegmented
        call.
        """
        use_grid = self._grid_enabled and (
            self._grid_force or steps >= _GRID_MIN_STEPS
        )
        remaining = steps
        while remaining > 0:
            due = self._state_every - (self.iterations - self._state_last)
            seg = min(remaining, max(due, 1))
            if use_grid:
                self._run_steps_grid(
                    seg,
                    horizon=remaining,
                    sync=seg == remaining,
                    sync_base=steps - remaining,
                )
            else:
                self._run_steps_dict(seg, horizon=remaining)
            remaining -= seg
            if remaining > 0:
                self._maybe_state_hook()
        return self

    def _run_diagnosed(self, steps: int) -> "SeparationChain":
        """Run ``steps`` iterations with convergence sampling attached.

        Segments the run at the diagnostics stride so samples land on
        exact iteration boundaries, while keeping the trajectory — and
        the final RNG state — bit-identical to an unsegmented run:

        * The kernel choice (grid vs dict) is made **once** from the
          total step count, because per-segment dispatch would hand
          short tail segments to the dict kernel and change the final
          colors-dict insertion order.
        * Each segment passes the outer remaining step count as its
          refill ``horizon``, so the draw-ahead buffer evolves exactly
          as in one big call (the refill trigger depends only on
          buffer state, which then matches step for step).
        * The batch backend is not segmented at all — chunking its
          run() would shift proposal-stream refills — and relies on
          the kernel's round-level observer hook instead, so its
          samples land on round (not stride) boundaries.
        """
        diag = self._obs_diag
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        if self.backend == "batch":
            return self._run_steps_batch(steps)
        if not self._batch_rng:
            step = self.step
            done = 0
            while done < steps:
                seg = min(steps - done, diag.steps_until_tick(self.iterations))
                for _ in range(seg):
                    step()
                done += seg
                diag.observe_chain(self)
            return self
        use_grid = self._grid_enabled and (
            self._grid_force or steps >= _GRID_MIN_STEPS
        )
        remaining = steps
        while remaining > 0:
            seg = min(remaining, diag.steps_until_tick(self.iterations))
            if use_grid:
                # Deferred sync: only the final segment pays the dict
                # write-back; `sync_base` keeps last-move indices on
                # the whole-run step axis (see _run_steps_grid).
                self._run_steps_grid(
                    seg,
                    horizon=remaining,
                    sync=seg == remaining,
                    sync_base=steps - remaining,
                )
            else:
                self._run_steps_dict(seg, horizon=remaining)
            remaining -= seg
            diag.observe_chain(self)
            if self._state_hook is not None:
                self._maybe_state_hook()
        return self

    def run_until(self, max_steps: int, stop) -> str:
        """Run until ``stop`` is satisfied or ``max_steps`` exhaust.

        ``stop`` is a :class:`repro.obs.convergence.StopCondition`;
        attached convergence diagnostics (``instrument(diagnostics=…)``)
        supply the verdicts it evaluates.  Returns the stop reason:
        ``"converged"`` when the diagnostics reached the target,
        ``"max_iterations"`` when the condition's hard cap fired first,
        or ``"budget"`` when ``max_steps`` ran out.

        The scalar kernels keep the exact segmentation discipline of
        :meth:`_run_diagnosed` — kernel choice made once, refill
        ``horizon`` equal to the outer remaining count, dict write-back
        deferred between stop checks — so an adaptive trajectory is a
        bit-exact *prefix* of the fixed-budget trajectory on the same
        RNG stream.  Stop conditions are evaluated on the diagnostics'
        verdict cadence (``config.verdict_every`` samples), never more
        often, because a full verdict walks every estimator.

        The batch backend is chunked at verdict-cadence boundaries
        instead; chunking shifts the proposal streams' refill points,
        so batch adaptive runs are statistically (not bit-wise)
        equivalent to fixed-budget batch runs — the same caveat that
        already separates the batch kernel from the scalar kernels.
        """
        from repro.obs.convergence import STOP_BUDGET, STOP_MAX_ITERATIONS

        diag = self._obs_diag
        if diag is None:
            raise RuntimeError(
                "run_until requires convergence diagnostics; attach one "
                "via instrument(diagnostics=...)"
            )
        if max_steps < 0:
            raise ValueError(
                f"max_steps must be non-negative, got {max_steps}"
            )
        # ``min_iterations``/``max_iterations`` count absolute chain
        # iterations (a resumed chain keeps its count), so translate the
        # hard cap into this call's frame before segmenting.
        budget_end = self.iterations + max_steps
        cap_end = budget_end
        if stop.max_iterations and stop.max_iterations < budget_end:
            cap_end = max(self.iterations, stop.max_iterations)
        cap = cap_end - self.iterations
        capped_reason = (
            STOP_MAX_ITERATIONS if cap_end < budget_end else STOP_BUDGET
        )
        verdict_every = diag.config.verdict_every

        if self.backend == "batch":
            check_every = diag.config.stride * verdict_every
            remaining = cap
            while remaining > 0:
                seg = min(remaining, check_every)
                self.run(seg)  # round-level observer samples inside
                remaining -= seg
                if remaining and self.iterations < stop.min_iterations:
                    continue
                reason = stop.satisfied(diag.summary(), self.iterations)
                if reason is not None:
                    return reason
            return capped_reason

        if not self._batch_rng:
            remaining = cap
            step = self.step
            while remaining > 0:
                seg = min(
                    remaining, diag.steps_until_tick(self.iterations)
                )
                for _ in range(seg):
                    step()
                remaining -= seg
                diag.observe_chain(self)
                if self._stop_check_due(diag, verdict_every, remaining):
                    reason = stop.satisfied(diag.summary(), self.iterations)
                    if reason is not None:
                        return reason
                if self._state_hook is not None:
                    self._maybe_state_hook()
            return capped_reason

        use_grid = self._grid_enabled and (
            self._grid_force or cap >= _GRID_MIN_STEPS
        )
        remaining = cap
        since_sync = 0
        while remaining > 0:
            to_tick = diag.steps_until_tick(self.iterations)
            seg = min(remaining, to_tick)
            final = seg == remaining
            # Predict whether this segment ends on a stop check: checks
            # happen on the verdict cadence, and a diagnostics sample
            # only lands when the segment reaches the stride boundary.
            will_check = final or (
                seg == to_tick
                and (diag.samples + 1) % verdict_every == 0
                and self.iterations + seg >= stop.min_iterations
            )
            if use_grid:
                # Deferred sync between checks (as in _run_diagnosed);
                # any segment that might return must write the dict
                # back, with `sync_base` keeping last-move indices on
                # the span since the previous sync.
                self._run_steps_grid(
                    seg,
                    horizon=remaining,
                    sync=will_check,
                    sync_base=since_sync,
                )
                since_sync = 0 if will_check else since_sync + seg
            else:
                self._run_steps_dict(seg, horizon=remaining)
            remaining -= seg
            diag.observe_chain(self)
            if will_check and not final:
                reason = stop.satisfied(diag.summary(), self.iterations)
                if reason is not None:
                    return reason
            if self._state_hook is not None and self._maybe_state_hook():
                # The emission synced the dict early; restart the
                # deferred-sync span so later write-backs sort their
                # last-move indices against this new baseline.
                since_sync = 0
        if cap > 0:
            reason = stop.satisfied(diag.summary(), self.iterations)
            if reason is not None:
                return reason
        return capped_reason

    @staticmethod
    def _stop_check_due(diag, verdict_every: int, remaining: int) -> bool:
        """Whether a stop condition should be evaluated after a sample."""
        return remaining == 0 or diag.samples % verdict_every == 0

    def _run_steps_dict(
        self, steps: int, horizon: Optional[int] = None
    ) -> "SeparationChain":
        """The batched dict fast path (inlined step(); tests pin identity).

        ``horizon`` widens the worst-case refill demand to a longer
        enclosing run: passing the outer remaining step count makes a
        sequence of segmented calls draw ahead exactly as one
        ``run(horizon)`` would, so segmentation (used by the
        convergence diagnostics) leaves the final RNG state
        bit-identical too.
        """
        extra = 0 if horizon is None else horizon - steps
        self._grid_valid = False  # about to mutate the dict directly
        self._batch_valid = False
        system = self.system
        colors = system.colors
        colors_get = colors.get
        positions = self._positions
        n_particles = len(positions)
        swaps_enabled = self.swaps
        lam_pow = self._lam_pow
        gam_pow = self._gam_pow
        gam_pow_swap = self._gam_pow_swap
        log_lam = self._log_lam
        log_gam = self._log_gam
        move_ok = MOVE_OK
        e_src_table = E_SRC
        e_dst_table = E_DST
        ring_tables = RING_OFFSETS
        offsets = NEIGHBOR_OFFSETS
        src_indices = SRC_RING_INDICES
        dst_indices = DST_RING_INDICES
        rng = self.rng
        buffer = self._buffer
        pos = self._buffer_pos
        size = len(buffer)
        edge_total = system.edge_total
        hetero_total = system.hetero_total
        accepted_moves = 0
        accepted_swaps = 0

        for remaining in range(steps, 0, -1):
            if size - pos < 3:
                # Refill with at most the worst-case demand of the rest
                # of this run (3 draws/step) so over-draw stays bounded;
                # leftovers persist in self._buffer for the next call.
                # The consumed prefix is dropped in place (O(leftover),
                # at most 2 elements here) instead of slicing the buffer
                # into a fresh list, so no O(buffered) copy ever happens.
                need = 3 * (remaining + extra) - (size - pos)
                if pos:
                    del buffer[:pos]
                    pos = 0
                buffer.extend(
                    uniform_chunk(
                        rng, need if need < _RNG_CHUNK else _RNG_CHUNK
                    )
                )
                size = len(buffer)

            idx = int(buffer[pos] * n_particles)
            pos += 1
            src = positions[idx]
            ci = colors[src]
            d = int(buffer[pos] * 6)
            pos += 1
            dx, dy = offsets[d]
            x, y = src
            dst = (x + dx, y + dy)
            dst_color = colors_get(dst)
            if dst_color is not None and (not swaps_enabled or dst_color == ci):
                continue  # occupied target and no swap possible: no-op

            ring_offsets = ring_tables[d]
            ring_colors = []
            mask = 0
            bit = 1
            for rdx, rdy in ring_offsets:
                c = colors_get((x + rdx, y + rdy))
                ring_colors.append(c)
                if c is not None:
                    mask |= bit
                bit <<= 1

            if dst_color is None:
                # --- Expansion move (Algorithm 1, lines 3-8) ---
                e_src = e_src_table[mask]
                if e_src == 5:
                    continue
                if not move_ok[mask]:
                    continue
                e_dst = e_dst_table[mask]
                ei_src = 0
                for i in src_indices:
                    if ring_colors[i] == ci:
                        ei_src += 1
                ei_dst = 0
                for i in dst_indices:
                    if ring_colors[i] == ci:
                        ei_dst += 1
                ratio = (
                    lam_pow[e_dst - e_src + 5] * gam_pow[ei_dst - ei_src + 5]
                )
                if ratio != ratio:  # inf * 0 under extreme biases
                    log_ratio = (
                        (e_dst - e_src) * log_lam + (ei_dst - ei_src) * log_gam
                    )
                    ratio = math.inf if log_ratio > 0.0 else math.exp(log_ratio)
                if ratio < 1.0:
                    q = buffer[pos]
                    pos += 1
                    if q >= ratio:
                        continue
                # Accept: move the particle and update counters locally.
                del colors[src]
                colors[dst] = ci
                positions[idx] = dst
                edge_total += e_dst - e_src
                hetero_total += (e_dst - ei_dst) - (e_src - ei_src)
                accepted_moves += 1
                continue

            # --- Swap move (Algorithm 1, lines 9-10) ---
            cj = dst_color
            expo = 0
            for i in dst_indices:
                c = ring_colors[i]
                if c == ci:
                    expo += 1  # |N_i(l') \ {P}|
                elif c == cj:
                    expo -= 1  # |N_j(l')|
            for i in src_indices:
                c = ring_colors[i]
                if c == ci:
                    expo -= 1  # |N_i(l)|
                elif c == cj:
                    expo += 1  # |N_j(l) \ {Q}|
            ratio = gam_pow_swap[expo + 10]
            if ratio < 1.0:
                q = buffer[pos]
                pos += 1
                if q >= ratio:
                    continue
            colors[src] = cj
            colors[dst] = ci
            hetero_total -= expo
            accepted_swaps += 1

        system.edge_total = edge_total
        system.hetero_total = hetero_total
        self.iterations += steps
        self.accepted_moves += accepted_moves
        self.accepted_swaps += accepted_swaps
        self._buffer = buffer
        self._buffer_pos = pos
        return self

    # ------------------------------------------------------------------
    # Flat-grid kernel (integer-indexed arena backend)
    # ------------------------------------------------------------------

    def _run_steps_batch(self, steps: int) -> "SeparationChain":
        """Advance via the replica-batched NumPy kernel (R = 1).

        The kernel persists across run() calls so its proposal streams
        continue uninterrupted; any external mutation of ``system``
        (``step()``, ``refresh_positions()``) invalidates it, and the
        next run rebuilds from the current dict state with a fresh
        child seed drawn from the chain's ``random.Random`` stream.

        This is a **different RNG regime** from the dict/grid kernels:
        trajectories are statistically, not bit-wise, equivalent (see
        :mod:`repro.core.batch_kernel` and the statistical-equivalence
        suite).
        """
        if steps == 0:
            return self
        from repro.core.batch_kernel import BatchKernel

        kernel = self._batch_kernel
        if kernel is None or not self._batch_valid:
            kernel = BatchKernel(
                self.system,
                self.lam,
                self.gamma,
                replicas=1,
                seed=self.rng,
                swaps=self.swaps,
            )
            self._batch_kernel = kernel
            self._batch_valid = True
        # Round-level convergence sampling (None detaches); the hook
        # reads counters only, so the proposal streams are untouched.
        kernel.observer = self._obs_diag
        iters0 = int(kernel.iters[0])
        moves0 = int(kernel.acc_moves[0])
        swaps0 = int(kernel.acc_swaps[0])
        kernel.run(steps)
        self.iterations += int(kernel.iters[0]) - iters0
        self.accepted_moves += int(kernel.acc_moves[0]) - moves0
        self.accepted_swaps += int(kernel.acc_swaps[0]) - swaps0
        self._batch_sync()
        return self

    def _batch_sync(self) -> None:
        """Write the batch kernel's replica 0 back into ``system``.

        Counters come from the kernel's incremental arrays (cross-checked
        against from-scratch recomputation by the fuzz suite), so the
        sync is O(n) with no edge scan.
        """
        kernel = self._batch_kernel
        arena = kernel.arena
        colors = self.system.colors
        colors.clear()
        positions = kernel.positions(0)
        gp = kernel.gpos[: kernel.n]
        for node, gid in zip(positions, gp):
            colors[node] = int(arena[gid]) - 1
        self.system.edge_total = int(kernel.edge[0])
        self.system.hetero_total = int(kernel.het[0])
        self._positions = positions
        self._grid_valid = False  # arena (if any) no longer mirrors the dict

    def _grid_alloc(self, nodes: List[Node], values: List[int]) -> None:
        """(Re)build the arena around ``nodes`` with the current margin.

        ``values[i]`` is the arena value (color + 1) of ``nodes[i]``;
        ``self._gpos`` is rebuilt in the same order, so particle slot
        indices survive reallocation.  A parallel ``danger`` bytearray
        flags the 2-cell band along the border: ring reads reach at most
        2 cells from a particle, so as long as every particle stays out
        of the band all integer indexing is in bounds (and never wraps a
        row, because x-offsets are bounded by the same 2 < margin).
        """
        pad = self._grid_margin
        xs = [x for x, _ in nodes]
        ys = [y for _, y in nodes]
        ox = min(xs) - pad
        oy = min(ys) - pad
        width = max(xs) - min(xs) + 1 + 2 * pad
        height = max(ys) - min(ys) + 1 + 2 * pad
        arena = [0] * (width * height)
        danger = bytearray(width * height)
        for gy in (0, 1, height - 2, height - 1):
            base = gy * width
            for gx in range(width):
                danger[base + gx] = 1
        for gy in range(height):
            base = gy * width
            danger[base] = danger[base + 1] = 1
            danger[base + width - 2] = danger[base + width - 1] = 1
        gpos = []
        for (x, y), value in zip(nodes, values):
            node_id = (y - oy) * width + (x - ox)
            arena[node_id] = value
            gpos.append(node_id)
        self._arena = arena
        self._gdanger = danger
        self._gpos = gpos
        self._gW = width
        self._gH = height
        self._gox = ox
        self._goy = oy
        self._gmove = tuple(dy * width + dx for dx, dy in NEIGHBOR_OFFSETS)
        self._gring = tuple(
            tuple(rdy * width + rdx for rdx, rdy in RING_OFFSETS[d])
            for d in range(6)
        )
        # Swap proposals only read the six *exclusive* ring positions
        # (the two common neighbors cancel in the exponent), so give
        # them a dedicated 6-tuple to unpack.
        self._gring_swap = tuple(
            (r[1], r[2], r[3], r[5], r[6], r[7]) for r in self._gring
        )
        # Per-(ci, cj) swap-exponent contribution of one ring value v:
        # +1 if v is ci, -1 if v is cj, 0 otherwise (arena encoding:
        # 0 = empty, c + 1 = color c).  Replaces twelve comparisons per
        # swap proposal with six table reads.
        k = self.system.num_colors + 1
        table = [[[0] * k for _ in range(k)] for _ in range(k)]
        for civ in range(1, k):
            for cjv in range(1, k):
                if civ != cjv:
                    table[civ][cjv][civ] = 1
                    table[civ][cjv][cjv] = -1
        self._gswap_contrib = table

    def _grid_build(self) -> None:
        """Embed the current configuration into a fresh flat arena.

        Also records each particle slot's rank in the *dict iteration
        order* (``self._grid_rank``): the sync-back uses it to
        reconstruct the exact insertion order the dict kernel would
        have produced, so downstream consumers of dict order (e.g.
        ``refresh_positions`` or order-preserving serialization) cannot
        tell the kernels apart.
        """
        colors = self.system.colors
        positions = self._positions
        self._grid_alloc(
            positions, [colors[node] + 1 for node in positions]
        )
        rank_of = {node: rank for rank, node in enumerate(colors)}
        self._grid_rank = [rank_of[node] for node in positions]
        self._grid_last = [0] * len(positions)
        self._grid_valid = True

    def _grid_regrow(self) -> None:
        """Double the margin and re-embed after a border-band landing.

        Called from the hot loop when an accepted move enters the
        danger band.  Margin doubling keeps the total regrow work
        amortized: each regrow at least doubles the number of moves a
        particle needs to reach the new band.
        """
        width = self._gW
        ox = self._gox
        oy = self._goy
        arena = self._arena
        nodes = []
        values = []
        for node_id in self._gpos:
            nodes.append((node_id % width + ox, node_id // width + oy))
            values.append(arena[node_id])
        self._grid_margin *= 2
        self._grid_regrows += 1
        self._grid_alloc(nodes, values)

    def _grid_sync(self) -> None:
        """Write the arena state back into ``ParticleSystem.colors``.

        Reproduces the dict kernel's insertion order exactly: a dict
        move is ``del colors[src]; colors[dst] = c`` — the particle is
        re-inserted at the *end* — so the final order is the particles
        untouched this run (in their pre-run dict order) followed by
        the moved ones in order of their last accepted move.  Swaps
        assign existing keys and never reorder.  ``self._positions`` is
        refreshed alongside, and the new order becomes the rank
        baseline for the next grid run.
        """
        gpos = self._gpos
        arena = self._arena
        width = self._gW
        ox = self._gox
        oy = self._goy
        last = self._grid_last
        rank = self._grid_rank
        order = sorted(
            range(len(gpos)), key=lambda i: (last[i], rank[i])
        )
        colors = self.system.colors
        colors.clear()
        positions = self._positions
        for new_rank, i in enumerate(order):
            node_id = gpos[i]
            node = (node_id % width + ox, node_id // width + oy)
            colors[node] = arena[node_id] - 1
            positions[i] = node
            rank[i] = new_rank
            last[i] = 0

    def _run_steps_grid(
        self,
        steps: int,
        horizon: Optional[int] = None,
        sync: bool = True,
        sync_base: int = 0,
    ) -> "SeparationChain":
        """The flat-grid batched run loop (bit-identical to the dict path).

        Pure integer indexing: particle slots hold arena ids, moves add
        per-direction deltas, and the 8-node edge ring is read through
        precomputed integer offsets — no tuple construction, no
        hashing.  RNG consumption (index, direction, and q only when
        the bias ratio is below 1) mirrors the dict kernel draw for
        draw.  The canonical dict is re-synced on exit.  ``horizon``
        has the same segmented-refill semantics as in
        :meth:`_run_steps_dict`.

        ``sync=False`` defers the dict write-back: segmented callers
        (the convergence diagnostics) sync only once, on the final
        segment, because the between-segment observers read counters
        rather than colors.  ``sync_base`` then offsets the recorded
        last-move step indices by the steps already executed in the
        enclosing run, so the deferred sync sorts by *absolute* step
        of last move — reproducing the exact insertion order a single
        unsegmented call would have produced.
        """
        extra = 0 if horizon is None else horizon - steps
        last_base = sync_base + 1
        if not self._grid_valid:
            self._grid_build()
        system = self.system
        arena = self._arena
        danger = self._gdanger
        gpos = self._gpos
        move_deltas = self._gmove
        ring_deltas = self._gring
        swap_rings = self._gring_swap
        swap_contrib = self._gswap_contrib
        last_moved = self._grid_last
        n_particles = len(gpos)
        int_ = int  # local alias: the hot loop calls it 2-3x per step
        no_swaps = not self.swaps
        lam_pow = self._lam_pow
        gam_pow = self._gam_pow
        gam_pow_swap = self._gam_pow_swap
        log_lam = self._log_lam
        log_gam = self._log_gam
        move_delta = MOVE_DELTA
        reject = _MOVE_REJECT
        rng = self.rng
        buffer = self._buffer
        pos = self._buffer_pos
        # `limit` is the last buffer index from which a full step's worst
        # case (3 draws) can be served; hoisting it saves a subtraction
        # on every iteration of the hot loop.
        limit = len(buffer) - 3
        edge_total = system.edge_total
        hetero_total = system.hetero_total
        accepted_moves = 0
        accepted_swaps = 0

        for remaining in range(steps, 0, -1):
            if pos > limit:
                # Same consumed-prefix refill as the dict kernel; the
                # carried buffer keeps mixed kernel/step() sequences on
                # one sequentially-consumed stream.
                need = 3 * (remaining + extra) - (len(buffer) - pos)
                if pos:
                    del buffer[:pos]
                    pos = 0
                buffer.extend(
                    uniform_chunk(
                        rng, need if need < _RNG_CHUNK else _RNG_CHUNK
                    )
                )
                limit = len(buffer) - 3

            idx = int_(buffer[pos] * n_particles)
            src = gpos[idx]
            civ = arena[src]
            d = int_(buffer[pos + 1] * 6)
            pos += 2
            dst = src + move_deltas[d]
            dstv = arena[dst]
            if dstv:
                # Same-color first: it is the single most common outcome
                # in well-mixed configurations, so it short-circuits.
                if dstv == civ or no_swaps:
                    continue  # occupied target, no swap possible: no-op

                # --- Swap move (Algorithm 1, lines 9-10) ---
                # The two common neighbors (ring 0 and 4) contribute to
                # both endpoint counts and cancel in the exponent, so
                # only the six exclusive ring positions are read.
                r1, r2, r3, r5, r6, r7 = swap_rings[d]
                contrib = swap_contrib[civ][dstv]
                expo = (
                    contrib[arena[src + r1]]
                    + contrib[arena[src + r2]]
                    + contrib[arena[src + r3]]
                    - contrib[arena[src + r5]]
                    - contrib[arena[src + r6]]
                    - contrib[arena[src + r7]]
                )
                ratio = gam_pow_swap[expo + 10]
                if ratio < 1.0:
                    q = buffer[pos]
                    pos += 1
                    if q >= ratio:
                        continue
                arena[src] = dstv
                arena[dst] = civ
                hetero_total -= expo
                accepted_swaps += 1
                continue

            # --- Expansion move (Algorithm 1, lines 3-8) ---
            r0, r1, r2, r3, r4, r5, r6, r7 = ring_deltas[d]
            v0 = arena[src + r0]
            v1 = arena[src + r1]
            v2 = arena[src + r2]
            v3 = arena[src + r3]
            v4 = arena[src + r4]
            v5 = arena[src + r5]
            v6 = arena[src + r6]
            v7 = arena[src + r7]
            de = move_delta[
                (v0 > 0)
                | (v1 > 0) << 1
                | (v2 > 0) << 2
                | (v3 > 0) << 3
                | (v4 > 0) << 4
                | (v5 > 0) << 5
                | (v6 > 0) << 6
                | (v7 > 0) << 7
            ]
            if de == reject:
                continue
            common = (v0 == civ) + (v4 == civ)
            ei_src = common + (v5 == civ) + (v6 == civ) + (v7 == civ)
            ei_dst = common + (v1 == civ) + (v2 == civ) + (v3 == civ)
            dei = ei_dst - ei_src
            ratio = lam_pow[de + 5] * gam_pow[dei + 5]
            if ratio != ratio:  # inf * 0 under extreme biases
                log_ratio = de * log_lam + dei * log_gam
                ratio = math.inf if log_ratio > 0.0 else math.exp(log_ratio)
            if ratio < 1.0:
                q = buffer[pos]
                pos += 1
                if q >= ratio:
                    continue
            # Accept: move the particle and update counters locally.
            arena[src] = 0
            arena[dst] = civ
            gpos[idx] = dst
            last_moved[idx] = last_base + steps - remaining
            edge_total += de
            hetero_total += de - dei
            accepted_moves += 1
            if danger[dst]:
                # The blob reached the border band: regrow (margin
                # doubles, everything re-embeds) and reload locals.
                self._grid_regrow()
                arena = self._arena
                danger = self._gdanger
                gpos = self._gpos
                move_deltas = self._gmove
                ring_deltas = self._gring
                swap_rings = self._gring_swap
                swap_contrib = self._gswap_contrib

        system.edge_total = edge_total
        system.hetero_total = hetero_total
        self.iterations += steps
        self.accepted_moves += accepted_moves
        self.accepted_swaps += accepted_swaps
        self._buffer = buffer
        self._buffer_pos = pos
        if sync:
            self._grid_sync()
        return self

    # ------------------------------------------------------------------
    # Exact per-proposal probabilities (used by repro.markov.exact)
    # ------------------------------------------------------------------

    def move_acceptance_probability(self, src: Node, dst: Node) -> float:
        """Probability a proposed move ``src -> dst`` is accepted.

        Zero when the move is disallowed by condition (i) or Properties
        4/5.  This mirrors :meth:`step` exactly but without mutating
        state; the exact-transition-matrix builder relies on it.
        """
        colors = self.system.colors
        if src not in colors or dst in colors:
            return 0.0
        details = evaluate_move(colors, src, dst, self.lam, self.gamma)
        return details[0]

    def swap_acceptance_probability(self, u: Node, v: Node) -> float:
        """Probability a proposed swap of ``u`` and ``v`` is accepted."""
        if not self.swaps:
            return 0.0
        colors = self.system.colors
        if u not in colors or v not in colors or colors[u] == colors[v]:
            return 0.0
        return evaluate_swap(colors, u, v, self.gamma)[0]

    def set_parameters(
        self, lam: Optional[float] = None, gamma: Optional[float] = None
    ) -> None:
        """Change the bias parameters mid-run (for annealing schedules).

        Rebuilds the internal power tables; the chain then targets the
        stationary distribution of the new parameters.
        """
        if lam is not None:
            if lam <= 0:
                raise ValueError(f"lambda must be positive, got {lam}")
            self.lam = float(lam)
            self._lam_pow = _power_table(self.lam, 5)
            self._log_lam = math.log(self.lam)
        if gamma is not None:
            if gamma <= 0:
                raise ValueError(f"gamma must be positive, got {gamma}")
            self.gamma = float(gamma)
            self._gam_pow = _power_table(self.gamma, 5)
            self._gam_pow_swap = _power_table(self.gamma, 10)
            self._log_gam = math.log(self.gamma)
        if self._batch_kernel is not None:
            self._batch_kernel.set_parameters(self.lam, self.gamma)

    def refresh_positions(self) -> None:
        """Re-sync the internal particle list with the system state.

        Call after mutating ``self.system`` outside the chain (the chain
        otherwise assumes exclusive ownership while running).  Any flat
        arena built by a previous grid run is invalidated alongside: the
        external mutation may have moved, added, or removed particles the
        arena still reflects.
        """
        self._positions = list(self.system.colors)
        self._grid_valid = False
        self._batch_valid = False

    # ------------------------------------------------------------------
    # Mid-run durability: state snapshots (crash-consistent resume)
    # ------------------------------------------------------------------

    def set_state_hook(self, hook, every: int = 0) -> None:
        """Attach a mid-run state-snapshot callback.

        ``hook(chain)`` fires at segment boundaries (diagnostics-stride
        ticks, stop-check points, and ``run()`` call boundaries) once at
        least ``every`` iterations have passed since the last emission.
        At every emission point the canonical colors dict has been
        written back, so ``hook`` may call :meth:`export_state` and
        serialize ``chain.system`` directly.

        The hook never consumes randomness: trajectories, counters, and
        the final RNG state are bit-identical between two runs with the
        *same* cadence (one interrupted and restored, one not).  A run
        with a different ``every`` — or none — may produce a different
        final dict *insertion order* (the emission syncs the grid
        kernel's write-back early), though never different occupancy,
        counters, or RNG state.

        Snapshots are supported on the scalar kernels with a stdlib
        ``random.Random`` stream only; the batch backend snapshots at
        the kernel level instead (see ``BatchKernel.export_state``).
        Passing ``hook=None`` detaches.
        """
        if hook is not None and every < 1:
            raise ValueError(
                f"state-hook interval must be positive, got {every}"
            )
        self._state_hook = hook
        self._state_every = int(every) if hook is not None else 0
        self._state_last = self.iterations

    def _maybe_state_hook(self) -> bool:
        """Fire the state hook if due; True when an emission happened."""
        if self.iterations - self._state_last < self._state_every:
            return False
        if not self._batch_rng or self.backend == "batch":
            return False
        if self._grid_valid:
            self._grid_sync()
        self._state_last = self.iterations
        self._state_hook(self)
        return True

    def export_state(self) -> Dict[str, object]:
        """JSON-able mid-run chain state (everything but the system).

        Captures the counters, the full ``random.Random`` generator
        state, the unconsumed tail of the draw-ahead buffer, and the
        particle *slot order* (``self._positions``).  The slot order
        matters: particle selection indexes the slot list, and moves
        update slots in place while the colors dict is reordered by
        last-accepted-move, so mid-run the two permutations differ —
        rebuilding slots from dict order would silently change which
        particle each RNG draw selects.  The configuration itself is
        *not* included — the caller serializes ``chain.system`` (synced
        here) alongside, via whichever codec it uses for checkpoints.  Restoring the pair into a fresh chain
        via :meth:`restore_state` and replaying the remaining schedule
        reproduces the uninterrupted run bit for bit.
        """
        if not self._batch_rng:
            raise RuntimeError(
                "state export requires a plain random.Random stream"
            )
        if self.backend == "batch":
            raise RuntimeError(
                "the batch backend snapshots at the kernel level; "
                "use BatchKernel.export_state"
            )
        if self._grid_valid:
            self._grid_sync()
        version, internal, gauss = self.rng.getstate()
        return {
            "kind": "chain",
            "lam": self.lam,
            "gamma": self.gamma,
            "swaps": self.swaps,
            "iterations": self.iterations,
            "accepted_moves": self.accepted_moves,
            "accepted_swaps": self.accepted_swaps,
            "rng_state": [version, list(internal), gauss],
            "buffer": list(self._buffer[self._buffer_pos:]),
            "positions": [list(node) for node in self._positions],
        }

    def restore_state(self, payload: Dict[str, object]) -> None:
        """Restore counters/RNG/buffer from :meth:`export_state` output.

        The caller must have loaded the matching configuration into
        ``self.system`` *first*; the slot order is taken from the
        payload and validated against the dict's key set.  Raises
        ``ValueError`` when the payload does not match this chain's
        parameters or system.
        """
        if payload.get("kind") != "chain":
            raise ValueError(
                f"expected a chain state payload, got {payload.get('kind')!r}"
            )
        if (
            float(payload["lam"]) != self.lam
            or float(payload["gamma"]) != self.gamma
            or bool(payload["swaps"]) != self.swaps
        ):
            raise ValueError(
                "chain state parameters do not match this chain"
            )
        version, internal, gauss = payload["rng_state"]
        self.rng.setstate(
            (
                int(version),
                tuple(int(v) for v in internal),
                None if gauss is None else float(gauss),
            )
        )
        self.iterations = int(payload["iterations"])
        self.accepted_moves = int(payload["accepted_moves"])
        self.accepted_swaps = int(payload["accepted_swaps"])
        self._buffer = [float(v) for v in payload["buffer"]]
        self._buffer_pos = 0
        positions = [tuple(node) for node in payload["positions"]]
        if set(positions) != set(self.system.colors) or len(positions) != len(
            self.system.colors
        ):
            raise ValueError(
                "chain state slot order does not match the loaded system"
            )
        self._positions = positions
        self._grid_valid = False
        self._batch_valid = False
        self._state_last = self.iterations

    def acceptance_rate(self) -> float:
        """Fraction of iterations that changed the configuration.

        Returns ``float("nan")`` before any iteration: a chain that has
        not run yet is *not* the same as one that ran and froze, and a
        silent ``0.0`` made the two indistinguishable to monitoring.
        Callers rendering the value should show NaN as ``n/a``.
        """
        if self.iterations == 0:
            return float("nan")
        return (self.accepted_moves + self.accepted_swaps) / self.iterations

    def __repr__(self) -> str:
        return (
            f"SeparationChain(n={self.system.n}, lam={self.lam}, "
            f"gamma={self.gamma}, swaps={self.swaps}, "
            f"iterations={self.iterations})"
        )


# ----------------------------------------------------------------------
# Pure move evaluation (shared with the exact-chain and distributed layers)
# ----------------------------------------------------------------------


def evaluate_move(
    colors: Dict[Node, int],
    src: Node,
    dst: Node,
    lam: float,
    gamma: float,
) -> Tuple[float, int, int]:
    """Acceptance probability and (Δe, Δe_i) of a move ``src -> dst``.

    Requires ``src`` occupied, ``dst`` an empty neighbor.  Returns
    ``(probability, delta_edges, delta_same_color_edges)`` where the
    probability already includes conditions (i) and (ii) — it is zero for
    invalid moves.
    """
    ci = colors[src]
    d = direction_between(src, dst)
    x, y = src
    ring_colors = []
    mask = 0
    bit = 1
    for rdx, rdy in RING_OFFSETS[d]:
        c = colors.get((x + rdx, y + rdy))
        ring_colors.append(c)
        if c is not None:
            mask |= bit
        bit <<= 1
    e_src = E_SRC[mask]
    if e_src == 5 or not MOVE_OK[mask]:
        return 0.0, 0, 0
    e_dst = E_DST[mask]
    ei_src = sum(1 for i in SRC_RING_INDICES if ring_colors[i] == ci)
    ei_dst = sum(1 for i in DST_RING_INDICES if ring_colors[i] == ci)
    ratio = bias_ratio(lam, gamma, e_dst - e_src, ei_dst - ei_src)
    return min(1.0, ratio), e_dst - e_src, ei_dst - ei_src


def evaluate_swap(
    colors: Dict[Node, int],
    u: Node,
    v: Node,
    gamma: float,
) -> Tuple[float, int]:
    """Acceptance probability and Δa of swapping particles at ``u, v``.

    Requires both nodes occupied by different colors.  Returns
    ``(probability, delta_homogeneous_edges)``.  The exponent is symmetric
    in ``u`` and ``v``, so either endpoint initiating yields the same
    probability (used by the 1/(3n) factor in Lemma 9's proof).
    """
    ci = colors[u]
    cj = colors[v]
    if ci == cj:
        raise ValueError("swap requires particles of different colors")
    d = direction_between(u, v)
    x, y = u
    ring_colors = []
    for rdx, rdy in RING_OFFSETS[d]:
        ring_colors.append(colors.get((x + rdx, y + rdy)))
    expo = 0
    for i in DST_RING_INDICES:
        c = ring_colors[i]
        if c == ci:
            expo += 1
        elif c == cj:
            expo -= 1
    for i in SRC_RING_INDICES:
        c = ring_colors[i]
        if c == ci:
            expo -= 1
        elif c == cj:
            expo += 1
    return min(1.0, _clamped_power(gamma, expo)), expo


def stationary_log_weight(
    system: ParticleSystem, lam: float, gamma: float
) -> float:
    """Log of the unnormalized stationary weight (Lemma 9 form)."""
    p = system.perimeter()
    return -p * math.log(lam * gamma) - system.hetero_total * math.log(gamma)
