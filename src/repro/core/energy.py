"""The stochastic approach as a reusable framework: local energy functions.

Section 5 of the paper: "This approach can potentially be applied to any
objective described by a global energy function (where the desirable
configurations have low energy values), provided changes in energy due
to particle movements can be calculated with only local information."

This module makes that recipe a first-class abstraction.  A
:class:`LocalEnergy` assigns a global energy :math:`E(\\sigma)` to
configurations and — crucially — computes the energy *change* of a move
or swap from the 8-node edge ring alone.  The generic
:class:`EnergyChain` then runs Metropolis dynamics targeting
:math:`\\pi(\\sigma) \\propto e^{-E(\\sigma)}` under the same Properties
4/5 movement rules, so any such energy yields a valid local distributed
algorithm with known stationary distribution.

The paper's own objectives are provided as instances:

* :class:`SeparationEnergy` —
  :math:`E = p(\\sigma)\\ln(\\lambda\\gamma) + h(\\sigma)\\ln\\gamma`
  (Lemma 9's exponent), recovering Algorithm 1 exactly;
* :class:`CompressionEnergy` — the homogeneous special case;
* :class:`InteractionEnergy` — arbitrary per-color-pair couplings, the
  Potts-style generalization with a full affinity matrix.

Energies must be *edge-local*: expressible as a sum over configuration
edges of a weight depending only on the endpoint colors, plus a perimeter
term.  That is exactly the family for which the ring suffices.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.core.separation_chain import (
    DST_RING_INDICES,
    E_DST,
    E_SRC,
    MOVE_OK,
    RING_OFFSETS,
    SRC_RING_INDICES,
)
from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node
from repro.system.configuration import ParticleSystem
from repro.util.rng import RngLike, make_rng


class LocalEnergy:
    """An edge-local energy function.

    Parameters
    ----------
    edge_cost:
        ``edge_cost[ci][cj]`` — contribution of an edge whose endpoints
        have colors ``ci`` and ``cj``.  Must be symmetric.  *Lower* cost
        means the edge is favored.
    perimeter_cost:
        Contribution per unit of perimeter.  Positive values favor
        compression (since for hole-free configurations
        :math:`p = 3n - 3 - e`, a positive perimeter cost is a negative
        cost on edges overall).
    """

    def __init__(
        self, edge_cost: Sequence[Sequence[float]], perimeter_cost: float
    ):
        size = len(edge_cost)
        for row in edge_cost:
            if len(row) != size:
                raise ValueError("edge_cost must be a square matrix")
        for i in range(size):
            for j in range(size):
                if not math.isclose(edge_cost[i][j], edge_cost[j][i]):
                    raise ValueError(
                        f"edge_cost must be symmetric; differs at ({i},{j})"
                    )
        self.edge_cost: List[List[float]] = [list(row) for row in edge_cost]
        self.perimeter_cost = float(perimeter_cost)
        self.num_colors = size

    # ------------------------------------------------------------------

    def total(self, system: ParticleSystem) -> float:
        """Global energy :math:`E(\\sigma)` (hole-free configurations).

        Sum of edge costs over configuration edges plus the perimeter
        term, computed from scratch in O(n).
        """
        colors = system.colors
        energy = self.perimeter_cost * system.perimeter()
        for (x, y), ci in colors.items():
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr_color = colors.get((x + dx, y + dy))
                if nbr_color is not None:
                    energy += 0.5 * self.edge_cost[ci][nbr_color]
        return energy

    def move_delta(
        self,
        ci: int,
        ring_colors: Sequence[int],
    ) -> float:
        """ΔE of moving a color-``ci`` particle across the edge ring.

        ``ring_colors[i]`` is the color at ring position ``i`` (``None``
        if empty), with the edge-ring index convention.  Uses the
        identity Δp = -Δe for hole-free moves.
        """
        delta = 0.0
        edge_delta = 0
        cost = self.edge_cost[ci]
        for i in DST_RING_INDICES:
            c = ring_colors[i]
            if c is not None:
                delta += cost[c]
                edge_delta += 1
        for i in SRC_RING_INDICES:
            c = ring_colors[i]
            if c is not None:
                delta -= cost[c]
                edge_delta -= 1
        return delta - self.perimeter_cost * edge_delta

    def swap_delta(self, ci: int, cj: int, ring_colors: Sequence[int]) -> float:
        """ΔE of swapping colors ``ci`` (at the source) and ``cj`` (at the
        target) across the edge ring.  The connecting edge itself is
        unchanged (its endpoint colors merely trade places)."""
        cost_i = self.edge_cost[ci]
        cost_j = self.edge_cost[cj]
        delta = 0.0
        for i in SRC_RING_INDICES:
            c = ring_colors[i]
            if c is not None:
                delta += cost_j[c] - cost_i[c]
        for i in DST_RING_INDICES:
            c = ring_colors[i]
            if c is not None:
                delta += cost_i[c] - cost_j[c]
        return delta


class SeparationEnergy(LocalEnergy):
    """Lemma 9's energy: :math:`p\\ln(\\lambda\\gamma) + h\\ln\\gamma`.

    Homogeneous edges cost 0 and heterogeneous edges cost
    :math:`\\ln\\gamma`; the perimeter costs :math:`\\ln(\\lambda\\gamma)`
    per unit.  The resulting Metropolis chain is exactly Algorithm 1.
    """

    def __init__(self, lam: float, gamma: float, num_colors: int = 2):
        if lam <= 0 or gamma <= 0:
            raise ValueError(
                f"lambda and gamma must be positive, got {lam}, {gamma}"
            )
        log_gamma = math.log(gamma)
        edge_cost = [
            [0.0 if i == j else log_gamma for j in range(num_colors)]
            for i in range(num_colors)
        ]
        super().__init__(edge_cost, perimeter_cost=math.log(lam * gamma))
        self.lam = lam
        self.gamma = gamma


class CompressionEnergy(SeparationEnergy):
    """The homogeneous compression energy: :math:`p \\ln \\lambda`."""

    def __init__(self, lam: float):
        super().__init__(lam=lam, gamma=1.0, num_colors=2)


class InteractionEnergy(LocalEnergy):
    """General pairwise color affinities (the Potts-matrix extension).

    ``affinity[i][j] > 1`` makes color-``i``/color-``j`` contacts
    favorable (cost :math:`-\\ln a_{ij}` per edge); ``< 1`` penalizes
    them.  ``lam`` sets the overall compression drive.  With
    ``affinity = [[γ, 1], [1, γ]]`` this reduces to
    :class:`SeparationEnergy` up to an additive constant per edge.
    """

    def __init__(self, lam: float, affinity: Sequence[Sequence[float]]):
        if lam <= 0:
            raise ValueError(f"lambda must be positive, got {lam}")
        for row in affinity:
            for value in row:
                if value <= 0:
                    raise ValueError("affinities must be positive")
        edge_cost = [
            [-math.log(value) for value in row] for row in affinity
        ]
        super().__init__(edge_cost, perimeter_cost=math.log(lam))
        self.lam = lam
        self.affinity = [list(row) for row in affinity]


class EnergyChain:
    """Metropolis dynamics for any :class:`LocalEnergy`.

    Follows Algorithm 1's structure — uniform particle, uniform
    direction, Properties 4/5 and the five-neighbor rule for moves —
    with acceptance probability :math:`\\min(1, e^{-\\Delta E})`.  The
    stationary distribution is :math:`\\pi \\propto e^{-E}` over
    connected hole-free configurations by the same detailed-balance
    argument as Lemma 9.
    """

    def __init__(
        self,
        system: ParticleSystem,
        energy: LocalEnergy,
        swaps: bool = True,
        seed: RngLike = None,
    ):
        if energy.num_colors < system.num_colors:
            raise ValueError(
                f"energy supports {energy.num_colors} colors but the "
                f"system has {system.num_colors}"
            )
        self.system = system
        self.energy = energy
        self.swaps = bool(swaps)
        self.rng = make_rng(seed)
        self.iterations = 0
        self.accepted_moves = 0
        self.accepted_swaps = 0
        self._positions: List[Node] = list(system.colors)

    def step(self) -> bool:
        """One Metropolis iteration; returns whether the state changed."""
        system = self.system
        colors = system.colors
        positions = self._positions
        random = self.rng.random
        self.iterations += 1

        idx = int(random() * len(positions))
        src = positions[idx]
        ci = colors[src]
        d = int(random() * 6)
        dx, dy = NEIGHBOR_OFFSETS[d]
        x, y = src
        dst = (x + dx, y + dy)
        dst_color = colors.get(dst)
        if dst_color is not None and (not self.swaps or dst_color == ci):
            return False

        ring_colors = []
        mask = 0
        bit = 1
        for rdx, rdy in RING_OFFSETS[d]:
            c = colors.get((x + rdx, y + rdy))
            ring_colors.append(c)
            if c is not None:
                mask |= bit
            bit <<= 1

        if dst_color is None:
            if E_SRC[mask] == 5 or not MOVE_OK[mask]:
                return False
            delta = self.energy.move_delta(ci, ring_colors)
            if delta > 0 and random() >= math.exp(-delta):
                return False
            del colors[src]
            colors[dst] = ci
            positions[idx] = dst
            e_src, e_dst = E_SRC[mask], E_DST[mask]
            system.edge_total += e_dst - e_src
            hetero_src = sum(
                1
                for i in SRC_RING_INDICES
                if ring_colors[i] is not None and ring_colors[i] != ci
            )
            hetero_dst = sum(
                1
                for i in DST_RING_INDICES
                if ring_colors[i] is not None and ring_colors[i] != ci
            )
            system.hetero_total += hetero_dst - hetero_src
            self.accepted_moves += 1
            return True

        cj = dst_color
        delta = self.energy.swap_delta(ci, cj, ring_colors)
        if delta > 0 and random() >= math.exp(-delta):
            return False
        colors[src] = cj
        colors[dst] = ci
        hetero_delta = 0
        for i in SRC_RING_INDICES:
            c = ring_colors[i]
            if c is not None:
                hetero_delta += (c != cj) - (c != ci)
        for i in DST_RING_INDICES:
            c = ring_colors[i]
            if c is not None:
                hetero_delta += (c != ci) - (c != cj)
        system.hetero_total += hetero_delta
        self.accepted_swaps += 1
        return True

    def run(self, steps: int) -> "EnergyChain":
        """Execute ``steps`` iterations."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()
        return self

    def acceptance_rate(self) -> float:
        """Fraction of iterations that changed the configuration."""
        if self.iterations == 0:
            return 0.0
        return (self.accepted_moves + self.accepted_swaps) / self.iterations

    def log_stationary_weight(self, system: ParticleSystem = None) -> float:
        """:math:`-E(\\sigma)` for the current (or given) configuration."""
        return -self.energy.total(system or self.system)
