"""Initial-configuration generators.

All generators return a :class:`~repro.system.configuration.ParticleSystem`
that is connected (and, unless documented otherwise, hole-free), since the
chain requires a connected start (Lemma 6).  Color assignment strategies
cover the experimental settings of the paper: well-mixed random colorings
(the "arbitrary initial configuration" of Figure 2), fully separated
half-and-half colorings (to probe integration from the opposite extreme),
and alternating colorings (maximally heterogeneous).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.lattice.geometry import hexagon, line, parallelogram
from repro.lattice.holes import fill_holes
from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node
from repro.system.configuration import ParticleSystem
from repro.util.rng import RngLike, make_rng


def _color_sequence(
    n: int,
    counts: Optional[Sequence[int]],
    num_colors: int,
    rng,
    shuffle: bool,
) -> List[int]:
    """Build a color list with exact per-color counts (balanced by default)."""
    if counts is None:
        base = n // num_colors
        counts = [base] * num_colors
        for i in range(n - base * num_colors):
            counts[i] += 1
    if sum(counts) != n:
        raise ValueError(f"color counts {counts} do not sum to n={n}")
    colors: List[int] = []
    for color, count in enumerate(counts):
        colors.extend([color] * count)
    if shuffle:
        rng.shuffle(colors)
    return colors


def hexagon_system(
    n: int,
    counts: Optional[Sequence[int]] = None,
    num_colors: int = 2,
    seed: RngLike = None,
    shuffle: bool = True,
) -> ParticleSystem:
    """Compact (near-minimum-perimeter) system with randomly mixed colors."""
    rng = make_rng(seed)
    nodes = hexagon(n)
    colors = _color_sequence(n, counts, num_colors, rng, shuffle)
    return ParticleSystem.from_nodes(nodes, colors, num_colors=num_colors)


def line_system(
    n: int,
    counts: Optional[Sequence[int]] = None,
    num_colors: int = 2,
    seed: RngLike = None,
    shuffle: bool = True,
) -> ParticleSystem:
    """Maximum-perimeter (straight line) system; the irreducibility pivot."""
    rng = make_rng(seed)
    nodes = line(n)
    colors = _color_sequence(n, counts, num_colors, rng, shuffle)
    return ParticleSystem.from_nodes(nodes, colors, num_colors=num_colors)


def separated_system(
    n: int,
    num_colors: int = 2,
    rows: Optional[int] = None,
) -> ParticleSystem:
    """A fully separated configuration: contiguous monochromatic bands.

    Particles fill a near-square parallelogram row by row; each color
    occupies a contiguous block of rows, so the system starts
    (β, δ)-separated for small β and δ.  Used to probe integration
    dynamics (Theorem 16 regime) from a separated start.
    """
    if n < num_colors:
        raise ValueError(f"need at least one particle per color, got n={n}")
    cols = max(1, int(round(n ** 0.5)))
    if rows is None:
        rows = (n + cols - 1) // cols
    nodes = parallelogram(rows, cols)[:n]
    base = n // num_colors
    counts = [base] * num_colors
    for i in range(n - base * num_colors):
        counts[i] += 1
    colors: List[int] = []
    for color, count in enumerate(counts):
        colors.extend([color] * count)
    return ParticleSystem.from_nodes(nodes, colors, num_colors=num_colors)


def checkerboard_system(n: int, num_colors: int = 2) -> ParticleSystem:
    """Maximally heterogeneous start: colors alternate along filling order."""
    nodes = hexagon(n)
    colors = [i % num_colors for i in range(n)]
    return ParticleSystem.from_nodes(nodes, colors, num_colors=num_colors)


def annulus_system(
    outer_radius: int,
    inner_radius: int = 1,
    num_colors: int = 2,
    seed: RngLike = None,
) -> ParticleSystem:
    """A ring-shaped system enclosing a hole (for burn-in studies).

    The chain must *eliminate* initial holes before the stationary
    analysis applies (Lemma 6); this initializer produces the canonical
    holed starting point: all nodes with hop distance in
    ``[inner_radius+1 .. outer_radius]`` from the origin, enclosing a
    hole of ``hexagon_size(inner_radius)`` empty nodes.  Colors are
    assigned in balanced random fashion.
    """
    if inner_radius < 0 or outer_radius <= inner_radius:
        raise ValueError(
            f"need 0 <= inner_radius < outer_radius, got "
            f"{inner_radius}, {outer_radius}"
        )
    from repro.lattice.geometry import ring as lattice_ring

    rng = make_rng(seed)
    nodes: List = []
    for radius in range(inner_radius + 1, outer_radius + 1):
        nodes.extend(lattice_ring((0, 0), radius))
    colors = _color_sequence(len(nodes), None, num_colors, rng, True)
    return ParticleSystem.from_nodes(nodes, colors, num_colors=num_colors)


def random_blob_system(
    n: int,
    counts: Optional[Sequence[int]] = None,
    num_colors: int = 2,
    seed: RngLike = None,
) -> ParticleSystem:
    """Random connected hole-free blob grown by biased site addition.

    Grows a connected cluster one node at a time, choosing uniformly among
    empty nodes adjacent to the current cluster (an Eden-model growth),
    then fills any holes.  Produces the "arbitrary initial configuration"
    style of Figure 2: irregular, moderately spread out.

    Because hole filling can add nodes, the blob is grown to ``n`` and
    then trimmed back to exactly ``n`` by removing removable boundary
    nodes; the result always has exactly ``n`` particles, is connected,
    and hole-free.
    """
    rng = make_rng(seed)
    occupied = {(0, 0)}
    frontier = set(NEIGHBOR_OFFSETS)
    while len(occupied) < n:
        node = rng.choice(sorted(frontier))
        occupied.add(node)
        frontier.discard(node)
        x, y = node
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            if nbr not in occupied:
                frontier.add(nbr)
    occupied = fill_holes(occupied)
    _trim_to_size(occupied, n)
    nodes = sorted(occupied)
    colors = _color_sequence(n, counts, num_colors, rng, True)
    return ParticleSystem.from_nodes(nodes, colors, num_colors=num_colors)


def _trim_to_size(occupied: set, n: int) -> None:
    """Remove boundary nodes until ``len(occupied) == n``.

    Only removes nodes whose removal keeps the set connected and hole-free
    (checked directly, since this runs once at setup time).
    """
    from repro.lattice.connectivity import is_connected
    from repro.lattice.holes import has_holes

    while len(occupied) > n:
        for node in sorted(occupied, reverse=True):
            candidate = set(occupied)
            candidate.discard(node)
            if is_connected(candidate) and not has_holes(candidate):
                occupied.discard(node)
                break
        else:  # pragma: no cover - a connected set always has a removable leaf
            raise RuntimeError("could not trim blob while preserving invariants")
