"""Measurement functions over particle systems.

Free functions (rather than methods) so they can be applied uniformly to
:class:`~repro.system.configuration.ParticleSystem` instances, recorded
snapshots, and enumerated small configurations.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List

from repro.lattice.triangular import NEIGHBOR_OFFSETS
from repro.system.configuration import ParticleSystem


def edge_count(system: ParticleSystem) -> int:
    """:math:`e(\\sigma)` — occupied-occupied lattice edges."""
    return system.edge_total


def heterogeneous_edge_count(system: ParticleSystem) -> int:
    """:math:`h(\\sigma)` — edges whose endpoints have different colors."""
    return system.hetero_total


def homogeneous_edge_count(system: ParticleSystem) -> int:
    """:math:`a(\\sigma) = e(\\sigma) - h(\\sigma)`."""
    return system.edge_total - system.hetero_total


def color_counts(system: ParticleSystem) -> List[int]:
    """Number of particles of each color."""
    counts = [0] * system.num_colors
    for color in system.colors.values():
        counts[color] += 1
    return counts


def log_weight(system: ParticleSystem, lam: float, gamma: float) -> float:
    """Log of the unnormalized stationary weight of Lemma 9.

    :math:`\\ln\\bigl((\\lambda\\gamma)^{-p(\\sigma)}\\gamma^{-h(\\sigma)}\\bigr)
    = -p(\\sigma)\\ln(\\lambda\\gamma) - h(\\sigma)\\ln\\gamma`.

    Valid for connected hole-free configurations (uses the fast perimeter
    identity).  Working in log space avoids overflow for large systems.
    """
    if lam <= 0 or gamma <= 0:
        raise ValueError(f"lambda and gamma must be positive, got {lam}, {gamma}")
    p = system.perimeter()
    h = system.hetero_total
    return -p * math.log(lam * gamma) - h * math.log(gamma)


def log_weight_edge_form(system: ParticleSystem, lam: float, gamma: float) -> float:
    """Log weight in the equivalent edge form :math:`\\lambda^e \\gamma^a`.

    Appendix A.2 shows :math:`\\lambda^{e}\\gamma^{a}` and
    :math:`(\\lambda\\gamma)^{-p}\\gamma^{-h}` define the same distribution
    (they differ by the configuration-independent factor
    :math:`(\\lambda\\gamma)^{3n-3}`); the tests verify that identity.
    """
    if lam <= 0 or gamma <= 0:
        raise ValueError(f"lambda and gamma must be positive, got {lam}, {gamma}")
    e = system.edge_total
    a = system.edge_total - system.hetero_total
    return e * math.log(lam) + a * math.log(gamma)


def monochromatic_cluster_sizes(system: ParticleSystem) -> Dict[int, List[int]]:
    """Sizes of maximal same-color connected clusters, per color.

    A crude but fast separation signal: a separated system has one giant
    cluster per color; an integrated system has many small ones.
    """
    colors = system.colors
    seen = set()
    result: Dict[int, List[int]] = {c: [] for c in range(system.num_colors)}
    for start, color in colors.items():
        if start in seen:
            continue
        seen.add(start)
        size = 1
        queue = deque([start])
        while queue:
            x, y = queue.popleft()
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr = (x + dx, y + dy)
                if nbr not in seen and colors.get(nbr) == color:
                    seen.add(nbr)
                    size += 1
                    queue.append(nbr)
        result[color].append(size)
    for sizes in result.values():
        sizes.sort(reverse=True)
    return result


def largest_cluster_fraction(system: ParticleSystem) -> float:
    """Fraction of particles in the largest monochromatic cluster.

    Approaches ``max(color fraction)`` for separated systems and is small
    for integrated ones; a scalar order parameter for phase diagrams.
    """
    sizes = monochromatic_cluster_sizes(system)
    largest = max((s[0] for s in sizes.values() if s), default=0)
    return largest / system.n


def mean_same_color_neighbor_fraction(system: ParticleSystem) -> float:
    """Average over particles of (same-color neighbors) / (neighbors).

    Particles with no neighbors contribute nothing.  This is the local
    order parameter used by Schelling-model studies; ~0.5 for a balanced
    integrated system, near 1 for a separated one.
    """
    colors = system.colors
    total = 0.0
    counted = 0
    for (x, y), color in colors.items():
        nbrs = 0
        same = 0
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr_color = colors.get((x + dx, y + dy))
            if nbr_color is not None:
                nbrs += 1
                if nbr_color == color:
                    same += 1
        if nbrs:
            total += same / nbrs
            counted += 1
    return total / counted if counted else 0.0
