"""Measurement functions over particle systems.

Free functions (rather than methods) so they can be applied uniformly to
:class:`~repro.system.configuration.ParticleSystem` instances, recorded
snapshots, and enumerated small configurations.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List

from repro.lattice.triangular import NEIGHBOR_OFFSETS
from repro.system.configuration import ParticleSystem

#: When the ``REPRO_DEBUG_OBSERVABLES`` environment variable is set (to
#: anything but ``"0"``), every counter-backed observable read is
#: cross-checked against a from-scratch recomputation and raises
#: ``RuntimeError`` on mismatch.  Read once at import (the same pattern
#: as ``REPRO_DEBUG_PERIMETER`` in :mod:`repro.system.configuration`);
#: tests toggle the module attribute directly.
_OBSERVABLES_DEBUG = os.environ.get("REPRO_DEBUG_OBSERVABLES", "") not in ("", "0")


def edge_count_scratch(system: ParticleSystem) -> int:
    """:math:`e(\\sigma)` recomputed from scratch (O(n) neighbor scan).

    Reference implementation for the incremental ``edge_total`` counter;
    the debug cross-check and the measurement benchmarks use it, and it
    is the honest "from-scratch measurement" baseline that the O(1)
    counter path is compared against.
    """
    colors = system.colors
    half_edges = 0
    for x, y in colors:
        for dx, dy in NEIGHBOR_OFFSETS:
            if (x + dx, y + dy) in colors:
                half_edges += 1
    return half_edges // 2


def heterogeneous_edge_count_scratch(system: ParticleSystem) -> int:
    """:math:`h(\\sigma)` recomputed from scratch (O(n) neighbor scan)."""
    colors = system.colors
    half_edges = 0
    for (x, y), color in colors.items():
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr_color = colors.get((x + dx, y + dy))
            if nbr_color is not None and nbr_color != color:
                half_edges += 1
    return half_edges // 2


def _check_counter(name: str, counter: int, scratch: int) -> None:
    if counter != scratch:
        raise RuntimeError(
            f"incremental {name} counter {counter} != from-scratch value "
            f"{scratch}; an update path desynchronized the counters "
            "(REPRO_DEBUG_OBSERVABLES cross-check)"
        )


def edge_count(system: ParticleSystem) -> int:
    """:math:`e(\\sigma)` — occupied-occupied lattice edges.

    Reads the O(1) incremental counter; with ``REPRO_DEBUG_OBSERVABLES``
    set, cross-checks it against :func:`edge_count_scratch`.
    """
    if _OBSERVABLES_DEBUG:
        _check_counter("edge", system.edge_total, edge_count_scratch(system))
    return system.edge_total


def heterogeneous_edge_count(system: ParticleSystem) -> int:
    """:math:`h(\\sigma)` — edges whose endpoints have different colors.

    Reads the O(1) incremental counter; with ``REPRO_DEBUG_OBSERVABLES``
    set, cross-checks it against
    :func:`heterogeneous_edge_count_scratch`.
    """
    if _OBSERVABLES_DEBUG:
        _check_counter(
            "hetero-edge",
            system.hetero_total,
            heterogeneous_edge_count_scratch(system),
        )
    return system.hetero_total


def homogeneous_edge_count(system: ParticleSystem) -> int:
    """:math:`a(\\sigma) = e(\\sigma) - h(\\sigma)`."""
    return system.edge_total - system.hetero_total


def color_counts(system: ParticleSystem) -> List[int]:
    """Number of particles of each color."""
    counts = [0] * system.num_colors
    for color in system.colors.values():
        counts[color] += 1
    return counts


def log_weight(system: ParticleSystem, lam: float, gamma: float) -> float:
    """Log of the unnormalized stationary weight of Lemma 9.

    :math:`\\ln\\bigl((\\lambda\\gamma)^{-p(\\sigma)}\\gamma^{-h(\\sigma)}\\bigr)
    = -p(\\sigma)\\ln(\\lambda\\gamma) - h(\\sigma)\\ln\\gamma`.

    Valid for connected hole-free configurations (uses the fast perimeter
    identity).  Working in log space avoids overflow for large systems.
    """
    if lam <= 0 or gamma <= 0:
        raise ValueError(f"lambda and gamma must be positive, got {lam}, {gamma}")
    p = system.perimeter()
    h = system.hetero_total
    return -p * math.log(lam * gamma) - h * math.log(gamma)


def log_weight_edge_form(system: ParticleSystem, lam: float, gamma: float) -> float:
    """Log weight in the equivalent edge form :math:`\\lambda^e \\gamma^a`.

    Appendix A.2 shows :math:`\\lambda^{e}\\gamma^{a}` and
    :math:`(\\lambda\\gamma)^{-p}\\gamma^{-h}` define the same distribution
    (they differ by the configuration-independent factor
    :math:`(\\lambda\\gamma)^{3n-3}`); the tests verify that identity.
    """
    if lam <= 0 or gamma <= 0:
        raise ValueError(f"lambda and gamma must be positive, got {lam}, {gamma}")
    e = system.edge_total
    a = system.edge_total - system.hetero_total
    return e * math.log(lam) + a * math.log(gamma)


def monochromatic_cluster_sizes(system: ParticleSystem) -> Dict[int, List[int]]:
    """Sizes of maximal same-color connected clusters, per color.

    A crude but fast separation signal: a separated system has one giant
    cluster per color; an integrated system has many small ones.

    Single-pass traversal: unvisited nodes live in one ``remaining``
    dict (a copy of ``colors``) that doubles as the visited set *and*
    the color lookup — each neighbor probe is one ``dict.get`` instead
    of the former separate visited-set test plus color fetch — and the
    frontier is a LIFO list (order does not matter for component
    sizes).  Output is identical to the previous BFS implementation:
    clusters are discovered in the same ``colors`` iteration order and
    each color's sizes are sorted descending.
    """
    colors = system.colors
    remaining = dict(colors)
    result: Dict[int, List[int]] = {c: [] for c in range(system.num_colors)}
    offsets = NEIGHBOR_OFFSETS
    for start, color in colors.items():
        if start not in remaining:
            continue
        del remaining[start]
        size = 1
        stack = [start]
        while stack:
            x, y = stack.pop()
            for dx, dy in offsets:
                nbr = (x + dx, y + dy)
                if remaining.get(nbr) == color:
                    del remaining[nbr]
                    size += 1
                    stack.append(nbr)
        result[color].append(size)
    for sizes in result.values():
        sizes.sort(reverse=True)
    return result


def largest_cluster_fraction(system: ParticleSystem) -> float:
    """Fraction of particles in the largest monochromatic cluster.

    Approaches ``max(color fraction)`` for separated systems and is small
    for integrated ones; a scalar order parameter for phase diagrams.
    """
    sizes = monochromatic_cluster_sizes(system)
    largest = max((s[0] for s in sizes.values() if s), default=0)
    return largest / system.n


def mean_same_color_neighbor_fraction(system: ParticleSystem) -> float:
    """Average over particles of (same-color neighbors) / (neighbors).

    Particles with no neighbors contribute nothing.  This is the local
    order parameter used by Schelling-model studies; ~0.5 for a balanced
    integrated system, near 1 for a separated one.
    """
    colors = system.colors
    total = 0.0
    counted = 0
    for (x, y), color in colors.items():
        nbrs = 0
        same = 0
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr_color = colors.get((x + dx, y + dy))
            if nbr_color is not None:
                nbrs += 1
                if nbr_color == color:
                    same += 1
        if nbrs:
            total += same / nbrs
            counted += 1
    return total / counted if counted else 0.0
