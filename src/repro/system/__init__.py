"""Heterogeneous amoebot particle systems.

State representation for systems of colored particles on the triangular
lattice: occupancy-with-color maps, incrementally maintained observables
(edge and heterogeneous-edge counts, hence perimeter via the hole-free
identity), initial-configuration generators, and measurement functions.
"""

from repro.system.particle import Particle, color_name
from repro.system.configuration import ParticleSystem
from repro.system.initializers import (
    annulus_system,
    hexagon_system,
    line_system,
    random_blob_system,
    separated_system,
    checkerboard_system,
)
from repro.system.observables import (
    edge_count,
    heterogeneous_edge_count,
    homogeneous_edge_count,
    log_weight,
    monochromatic_cluster_sizes,
    color_counts,
)

__all__ = [
    "Particle",
    "color_name",
    "ParticleSystem",
    "annulus_system",
    "hexagon_system",
    "line_system",
    "random_blob_system",
    "separated_system",
    "checkerboard_system",
    "edge_count",
    "heterogeneous_edge_count",
    "homogeneous_edge_count",
    "log_weight",
    "monochromatic_cluster_sizes",
    "color_counts",
]
