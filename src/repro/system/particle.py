"""Particle identity and color conventions.

Throughout the library a *color* is a small non-negative integer
(``0 .. k-1``); the bichromatic systems of the paper use colors 0 and 1.
The hot simulation loops store bare color integers in the occupancy map
for speed; the :class:`Particle` record is the richer identity object used
by the distributed-execution layer, where particles carry local memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.lattice.triangular import Node

#: Human-readable names for the first few colors, used in renders and logs.
_COLOR_NAMES: Tuple[str, ...] = ("blue", "red", "green", "yellow", "purple", "orange")


def color_name(color: int) -> str:
    """Readable label for a color index (falls back to ``color-<i>``)."""
    if color < 0:
        raise ValueError(f"color must be non-negative, got {color}")
    if color < len(_COLOR_NAMES):
        return _COLOR_NAMES[color]
    return f"color-{color}"


@dataclass
class Particle:
    """A single amoebot particle.

    Attributes mirror the amoebot model of Section 2.1: particles are
    anonymous (``pid`` exists only for bookkeeping outside the algorithm
    and is never read by the local rule), have an immutable ``color``
    visible to neighbors, occupy a ``head`` node and, while expanded, a
    ``tail`` node, and carry a constant-size local ``memory`` dictionary
    that neighbors may read.
    """

    pid: int
    color: int
    head: Node
    tail: Optional[Node] = None
    memory: Dict[str, object] = field(default_factory=dict)

    @property
    def is_expanded(self) -> bool:
        """Whether the particle currently occupies two adjacent nodes."""
        return self.tail is not None

    @property
    def is_contracted(self) -> bool:
        """Whether the particle occupies a single node."""
        return self.tail is None

    def expand(self, node: Node) -> None:
        """Expand the head into ``node``, keeping the old node as tail."""
        if self.is_expanded:
            raise RuntimeError(f"particle {self.pid} is already expanded")
        self.tail = self.head
        self.head = node

    def contract_to_head(self) -> None:
        """Complete a move: give up the tail node."""
        if self.is_contracted:
            raise RuntimeError(f"particle {self.pid} is not expanded")
        self.tail = None

    def contract_to_tail(self) -> None:
        """Abort a move: retreat to the original node."""
        if self.is_contracted:
            raise RuntimeError(f"particle {self.pid} is not expanded")
        self.head = self.tail
        self.tail = None

    def occupied_nodes(self) -> Tuple[Node, ...]:
        """The one or two nodes this particle currently occupies."""
        if self.tail is None:
            return (self.head,)
        return (self.head, self.tail)
