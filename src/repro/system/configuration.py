"""Mutable particle-system configuration state.

:class:`ParticleSystem` is the canonical state object shared by the
centralized Markov chains, the distributed runner, and the analysis
layers.  It stores a map from occupied lattice nodes to particle colors
and *incrementally* maintains the two global quantities appearing in the
stationary distribution of Lemma 9:

* ``edge_total`` — :math:`e(\\sigma)`, the number of lattice edges with
  both endpoints occupied, which for connected hole-free configurations
  determines the perimeter via :math:`p = 3n - 3 - e`;
* ``hetero_total`` — :math:`h(\\sigma)`, the number of heterogeneous
  edges (endpoints of different colors).

Incremental maintenance is what makes multi-million-step simulations
feasible; :meth:`recompute_counters` recomputes both from scratch and the
test suite cross-validates the incremental values against it after random
move sequences.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.lattice.boundary import perimeter as walk_perimeter
from repro.lattice.boundary import perimeter_from_edges
from repro.lattice.connectivity import is_connected
from repro.lattice.holes import has_holes
from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node, canonical_form

Coloring = Mapping[Node, int]

#: Debug cross-check of the O(1) perimeter identity against the exact
#: boundary walk (see :meth:`ParticleSystem.perimeter`).  Read once at
#: import from the ``REPRO_DEBUG_PERIMETER`` environment variable;
#: tests may monkeypatch the module attribute directly.
_PERIMETER_DEBUG = os.environ.get("REPRO_DEBUG_PERIMETER", "") not in ("", "0")


class ParticleSystem:
    """A system of ``n`` colored contracted particles on :math:`G_\\Delta`.

    Parameters
    ----------
    colors:
        Mapping from occupied node to color index (``0 .. num_colors-1``).
    num_colors:
        Number of color classes ``k``; inferred as ``max(color)+1`` when
        omitted (at least 2, so homogeneous systems still model the
        bichromatic state space).
    """

    __slots__ = ("colors", "num_colors", "edge_total", "hetero_total")

    def __init__(self, colors: Coloring, num_colors: Optional[int] = None):
        self.colors: Dict[Node, int] = dict(colors)
        if not self.colors:
            raise ValueError("a particle system must contain at least one particle")
        observed = max(self.colors.values()) + 1
        if num_colors is None:
            num_colors = max(observed, 2)
        if observed > num_colors:
            raise ValueError(
                f"colors use {observed} classes but num_colors={num_colors}"
            )
        if min(self.colors.values()) < 0:
            raise ValueError("colors must be non-negative integers")
        self.num_colors = num_colors
        self.edge_total = 0
        self.hetero_total = 0
        self.recompute_counters()

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of particles in the system."""
        return len(self.colors)

    def occupied(self) -> Iterable[Node]:
        """View of the occupied nodes."""
        return self.colors.keys()

    def color_at(self, node: Node) -> int:
        """Color of the particle at ``node`` (KeyError if unoccupied)."""
        return self.colors[node]

    def is_occupied(self, node: Node) -> bool:
        """Whether ``node`` holds a particle."""
        return node in self.colors

    def neighbor_counts(
        self, node: Node, ignore: Sequence[Node] = ()
    ) -> Tuple[int, List[int]]:
        """Total and per-color counts of occupied neighbors of ``node``.

        ``ignore`` lists nodes treated as unoccupied — Algorithm 1 needs
        neighborhoods of a location *excluding* the moving particle's own
        nodes (the sets :math:`N_i(\\ell \\cup \\ell')` exclude particles
        occupying :math:`\\ell` and :math:`\\ell'`).
        """
        x, y = node
        total = 0
        per_color = [0] * self.num_colors
        colors = self.colors
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            if nbr in colors and nbr not in ignore:
                total += 1
                per_color[colors[nbr]] += 1
        return total, per_color

    def occupied_neighbors(self, node: Node) -> List[Node]:
        """Occupied lattice neighbors of ``node``."""
        x, y = node
        colors = self.colors
        result = []
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            if nbr in colors:
                result.append(nbr)
        return result

    # ------------------------------------------------------------------
    # Mutation (incremental counter maintenance)
    # ------------------------------------------------------------------

    def move_particle(self, src: Node, dst: Node) -> None:
        """Move the particle at ``src`` to the unoccupied node ``dst``.

        Updates ``edge_total`` and ``hetero_total`` in O(1).  Validity of
        the move under the chain's locality properties is the caller's
        responsibility; this method only requires ``src`` occupied and
        ``dst`` empty.
        """
        colors = self.colors
        if dst in colors:
            raise ValueError(f"destination {dst} is occupied")
        color = colors.pop(src)
        x, y = src
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            nbr_color = colors.get(nbr)
            if nbr_color is not None:
                self.edge_total -= 1
                if nbr_color != color:
                    self.hetero_total -= 1
        x, y = dst
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr = (x + dx, y + dy)
            nbr_color = colors.get(nbr)
            if nbr_color is not None:
                self.edge_total += 1
                if nbr_color != color:
                    self.hetero_total += 1
        colors[dst] = color

    def swap_particles(self, u: Node, v: Node) -> None:
        """Exchange the colors of the particles at adjacent nodes ``u, v``.

        A no-op when both particles share a color.  Updates
        ``hetero_total`` in O(1); ``edge_total`` is untouched because swap
        moves do not change the occupied set.
        """
        colors = self.colors
        cu = colors[u]
        cv = colors[v]
        if cu == cv:
            return
        for node, old_color, new_color in ((u, cu, cv), (v, cv, cu)):
            x, y = node
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr = (x + dx, y + dy)
                if nbr == u or nbr == v:
                    continue  # the (u, v) edge stays heterogeneous
                nbr_color = colors.get(nbr)
                if nbr_color is None:
                    continue
                if nbr_color != old_color:
                    self.hetero_total -= 1
                if nbr_color != new_color:
                    self.hetero_total += 1
        colors[u] = cv
        colors[v] = cu

    # ------------------------------------------------------------------
    # Derived quantities and validation
    # ------------------------------------------------------------------

    def recompute_counters(self) -> None:
        """Recompute ``edge_total`` / ``hetero_total`` from scratch (O(n))."""
        edges = 0
        hetero = 0
        colors = self.colors
        for (x, y), color in colors.items():
            for dx, dy in NEIGHBOR_OFFSETS:
                nbr = (x + dx, y + dy)
                nbr_color = colors.get(nbr)
                if nbr_color is not None:
                    edges += 1
                    if nbr_color != color:
                        hetero += 1
        self.edge_total = edges // 2
        self.hetero_total = hetero // 2

    def perimeter(self, exact: bool = False) -> int:
        """Perimeter :math:`p(\\sigma)`.

        With ``exact=False`` (default) uses the O(1) identity
        :math:`p = 3n - 3 - e`, which is exact **only for connected,
        hole-free configurations** (the chain's reachable state space —
        Property 4/5 moves preserve both invariants).  When the occupied
        set encloses holes the identity *overcounts*: missing interior
        edges around each hole inflate ``3n - 3 - e`` relative to the
        outer perimeter (e.g. a 6-node ring around one empty center has
        outer perimeter 6 but ``3·6 - 3 - 6 = 9``).  With ``exact=True``
        the outer
        boundary walk is traced instead, which is correct regardless of
        holes — use it whenever the configuration was built or mutated
        outside the chain.

        Setting the ``REPRO_DEBUG_PERIMETER`` environment variable to a
        non-empty value (other than ``0``) turns on a debug
        cross-check: every default-path call also runs the boundary
        walk and raises ``AssertionError`` on mismatch, catching silent
        miscounts from holed configurations at their source.  The check
        is O(perimeter) per call, so it is opt-in.
        """
        if exact:
            return walk_perimeter(set(self.colors))
        fast = perimeter_from_edges(self.n, self.edge_total)
        if _PERIMETER_DEBUG:
            walked = walk_perimeter(set(self.colors))
            if fast != walked:
                raise AssertionError(
                    f"perimeter identity 3n-3-e = {fast} disagrees with "
                    f"the boundary walk = {walked}: the configuration "
                    "is holed or disconnected, so the O(1) identity "
                    "does not apply — call perimeter(exact=True)"
                )
        return fast

    def homogeneous_edges(self) -> int:
        """Number of homogeneous edges :math:`a(\\sigma) = e - h`."""
        return self.edge_total - self.hetero_total

    def is_connected(self) -> bool:
        """Whether the occupied set is connected."""
        return is_connected(self.colors.keys())

    def has_holes(self) -> bool:
        """Whether the occupied set encloses any hole."""
        return has_holes(set(self.colors))

    def validate(self) -> None:
        """Assert the incremental counters match a from-scratch recount."""
        edge_before = self.edge_total
        hetero_before = self.hetero_total
        self.recompute_counters()
        if (edge_before, hetero_before) != (self.edge_total, self.hetero_total):
            raise AssertionError(
                "incremental counters diverged: "
                f"edges {edge_before} vs {self.edge_total}, "
                f"hetero {hetero_before} vs {self.hetero_total}"
            )

    # ------------------------------------------------------------------
    # Copies, keys, constructors
    # ------------------------------------------------------------------

    def copy(self) -> "ParticleSystem":
        """Independent deep copy of the system state."""
        clone = ParticleSystem.__new__(ParticleSystem)
        clone.colors = dict(self.colors)
        clone.num_colors = self.num_colors
        clone.edge_total = self.edge_total
        clone.hetero_total = self.hetero_total
        return clone

    def canonical_key(self) -> Tuple[Tuple[Node, int], ...]:
        """Translation-invariant hashable key of the colored configuration.

        Two systems have equal keys iff one is a translation of the other
        with matching colors — the configuration equivalence of Section
        2.2 extended to colors.
        """
        nodes = list(self.colors)
        canonical = canonical_form(nodes)
        if not canonical:
            return ()
        # Recover the translation applied by canonical_form.
        min_x = min(x for x, _ in nodes)
        min_y = min(y for x, y in nodes if x == min_x)
        shift = (min_x, min_y)
        return tuple(
            sorted(
                ((x - shift[0], y - shift[1]), color)
                for (x, y), color in self.colors.items()
            )
        )

    @classmethod
    def from_nodes(
        cls,
        nodes: Sequence[Node],
        colors: Sequence[int],
        num_colors: Optional[int] = None,
    ) -> "ParticleSystem":
        """Build a system from parallel node and color sequences."""
        if len(nodes) != len(colors):
            raise ValueError(
                f"got {len(nodes)} nodes but {len(colors)} colors"
            )
        mapping = dict(zip(nodes, colors))
        if len(mapping) != len(nodes):
            raise ValueError("duplicate nodes in configuration")
        return cls(mapping, num_colors=num_colors)

    def __repr__(self) -> str:
        return (
            f"ParticleSystem(n={self.n}, k={self.num_colors}, "
            f"edges={self.edge_total}, hetero={self.hetero_total})"
        )
