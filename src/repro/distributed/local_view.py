"""Strictly local read access for activated particles.

The amoebot model (Section 2.1) allows an activated particle to read the
occupancy and public memory of the nodes adjacent to the node(s) it
occupies.  During a move evaluation the particle is (conceptually)
expanded over :math:`\\ell` and :math:`\\ell'`, so its readable set is the
union of both neighborhoods — exactly the eight-node edge ring plus the
two nodes themselves.  Neighbor particles additionally publish their own
per-color neighbor counts in memory, which is what makes the swap-move
exponent computable by one endpoint (footnote semantics of Section 2.3).

:class:`LocalView` wraps the global color map but *enforces* these rules:
any read outside the allowed set raises :class:`LocalityViolation`.  The
agent code in :mod:`repro.distributed.agent` is written exclusively
against this interface, so passing the test suite demonstrates the
algorithm really is local.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node, neighbors


class LocalityViolation(RuntimeError):
    """An agent attempted to read state outside its local neighborhood."""


class LocalView:
    """Read access for a particle at ``location`` evaluating ``target``.

    ``target`` is the neighboring node chosen in the activation (possibly
    occupied).  Readable occupancy: ``location``, ``target``, and every
    node adjacent to either.  Readable *published counts* (simulating
    reads of a neighbor's memory): any readable occupied node.
    """

    def __init__(
        self,
        colors: Dict[Node, int],
        location: Node,
        target: Node,
    ):
        if location not in colors:
            raise ValueError(f"no particle at {location}")
        if target not in neighbors(location):
            raise ValueError(f"{target} is not adjacent to {location}")
        self._colors = colors
        self.location = location
        self.target = target
        allowed: Set[Node] = {location, target}
        allowed.update(neighbors(location))
        allowed.update(neighbors(target))
        self._allowed = allowed

    def _check(self, node: Node) -> None:
        if node not in self._allowed:
            raise LocalityViolation(
                f"read of {node} outside the neighborhood of "
                f"{self.location}-{self.target}"
            )

    def is_occupied(self, node: Node) -> bool:
        """Occupancy of a node in the readable set."""
        self._check(node)
        return node in self._colors

    def color_of(self, node: Node) -> Optional[int]:
        """Color of the particle at ``node`` (None if empty)."""
        self._check(node)
        return self._colors.get(node)

    def my_color(self) -> int:
        """Color of the activated particle itself."""
        return self._colors[self.location]

    def occupied_neighbors(self, node: Node) -> List[Node]:
        """Occupied nodes adjacent to ``node`` — allowed only for the
        particle's own nodes (``location``/``target``), whose full
        neighborhoods are readable."""
        if node not in (self.location, self.target):
            raise LocalityViolation(
                f"neighborhood scan of {node} is only allowed for the "
                "particle's own nodes"
            )
        x, y = node
        return [
            (x + dx, y + dy)
            for dx, dy in NEIGHBOR_OFFSETS
            if (x + dx, y + dy) in self._colors
        ]

    def published_neighbor_counts(self, node: Node) -> Tuple[int, Dict[int, int]]:
        """Per-color neighbor counts published by the particle at ``node``.

        Models reading a neighbor's constant-size memory, where each
        particle keeps its current neighbor census.  Allowed for any
        readable occupied node.  Returns ``(total, {color: count})``.
        """
        self._check(node)
        if node not in self._colors:
            raise LocalityViolation(f"no particle at {node} to read memory from")
        x, y = node
        total = 0
        per_color: Dict[int, int] = {}
        for dx, dy in NEIGHBOR_OFFSETS:
            nbr_color = self._colors.get((x + dx, y + dy))
            if nbr_color is not None:
                total += 1
                per_color[nbr_color] = per_color.get(nbr_color, 0) + 1
        return total, per_color
