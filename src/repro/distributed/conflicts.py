"""Conflict resolution for concurrent activations.

Section 2.1: "Conflicts involving simultaneous particle expansions into
the same unoccupied node are assumed to be resolved arbitrarily such that
at most one particle moves to some unoccupied node at any given time."

The concurrent runner computes a round of decisions against a common
snapshot; this module serializes them, dropping every action invalidated
by an earlier one in the (arbitrary) serialization order — both direct
expansion conflicts and indirect invalidations (an earlier move changed a
neighborhood so a later move would now violate Properties 4/5 or target
an occupied node).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.moves import move_allowed_between
from repro.distributed.agent import Action, MoveAction, NoAction, SwapAction
from repro.lattice.triangular import Node


def resolve_expansion_conflicts(
    colors: Dict[Node, int],
    proposed: Sequence[Tuple[int, Action]],
) -> Tuple[List[Tuple[int, Action]], List[Tuple[int, Action, str]]]:
    """Serialize a round of snapshot-based decisions.

    ``proposed`` holds ``(particle_index, action)`` pairs in the chosen
    serialization order; ``colors`` is the live color map, *mutated* as
    accepted actions are applied.  Returns ``(applied, dropped)`` where
    each dropped entry carries the invalidation reason.

    Note the revalidation here checks *feasibility* (target emptiness,
    Properties 4/5, occupancy of swap partners); it does not re-draw the
    Metropolis filter, which the particle already passed against its
    snapshot — the arbitrary-resolution rule of the model permits any
    such policy.
    """
    applied: List[Tuple[int, Action]] = []
    dropped: List[Tuple[int, Action, str]] = []
    for index, action in proposed:
        if isinstance(action, NoAction):
            continue
        if isinstance(action, MoveAction):
            reason = _move_invalid_reason(colors, action)
            if reason is None:
                color = colors.pop(action.src)
                colors[action.dst] = color
                applied.append((index, action))
            else:
                dropped.append((index, action, reason))
        elif isinstance(action, SwapAction):
            reason = _swap_invalid_reason(colors, action)
            if reason is None:
                colors[action.a], colors[action.b] = (
                    colors[action.b],
                    colors[action.a],
                )
                applied.append((index, action))
            else:
                dropped.append((index, action, reason))
        else:  # pragma: no cover - exhaustive over Action variants
            raise TypeError(f"unknown action type: {action!r}")
    return applied, dropped


def _move_invalid_reason(colors: Dict[Node, int], action: MoveAction):
    if action.src not in colors:
        return "source vacated by an earlier action"
    if action.dst in colors:
        return "destination occupied by an earlier action"
    occupied_neighbors = 0
    x, y = action.src
    from repro.lattice.triangular import NEIGHBOR_OFFSETS

    for dx, dy in NEIGHBOR_OFFSETS:
        if (x + dx, y + dy) in colors:
            occupied_neighbors += 1
    if occupied_neighbors == 5:
        return "source now has five neighbors"
    if not move_allowed_between(colors, action.src, action.dst):
        return "Properties 4/5 no longer hold"
    return None


def _swap_invalid_reason(colors: Dict[Node, int], action: SwapAction):
    if action.a not in colors or action.b not in colors:
        return "swap partner vacated by an earlier action"
    if colors[action.a] == colors[action.b]:
        return "swap partners now share a color"
    return None
