"""Asynchronous activation schedulers.

The amoebot model assumes the standard asynchronous model: particles are
activated one atomic action at a time, in an order produced by the
environment.  The schedulers here generate that order:

* :class:`UniformScheduler` — each activation picks a particle uniformly
  at random; this is exactly the distribution of Step 1 of Algorithm 1,
  so the distributed runner under this scheduler *is* the chain
  :math:`\\mathcal{M}`.
* :class:`PoissonScheduler` — every particle carries an independent
  rate-1 Poisson clock and activates when it rings.  Activation order is
  again uniform (exponential races are memoryless), but the scheduler
  also exposes continuous activation *times*, the physically natural
  model for independent hardware.
* :class:`RoundRobinScheduler` — adversarial-flavored deterministic
  sweeps (optionally reshuffled per round).  Each per-particle kernel
  preserves the stationary distribution, so sweeps converge to the same
  :math:`\\pi` despite not matching the chain step-for-step.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.util.rng import RngLike, make_rng


class UniformScheduler:
    """Uniformly random particle activations (the chain's own schedule)."""

    def __init__(self, num_particles: int, seed: RngLike = None):
        if num_particles < 1:
            raise ValueError(f"num_particles must be positive, got {num_particles}")
        self.num_particles = num_particles
        self._rng = make_rng(seed)

    def next_active(self) -> int:
        """Index of the next particle to activate."""
        return int(self._rng.random() * self.num_particles)


class PoissonScheduler:
    """Independent rate-1 Poisson clocks per particle.

    Maintains a priority queue of next ring times; :meth:`next_active`
    pops the earliest, reschedules that particle, and records the global
    time (readable via :attr:`current_time`).
    """

    def __init__(self, num_particles: int, seed: RngLike = None):
        if num_particles < 1:
            raise ValueError(f"num_particles must be positive, got {num_particles}")
        self.num_particles = num_particles
        self._rng = make_rng(seed)
        self.current_time = 0.0
        self._queue: List[Tuple[float, int]] = [
            (self._exponential(), i) for i in range(num_particles)
        ]
        heapq.heapify(self._queue)

    def _exponential(self) -> float:
        return self._rng.expovariate(1.0)

    def next_active(self) -> int:
        """Pop the earliest clock ring; advance global time."""
        time, index = heapq.heappop(self._queue)
        self.current_time = time
        heapq.heappush(self._queue, (time + self._exponential(), index))
        return index


class RoundRobinScheduler:
    """Deterministic sweeps over all particles.

    With ``reshuffle=True`` the visiting order is re-randomized at the
    start of every round (random-scan-without-replacement); with
    ``reshuffle=False`` the same fixed order repeats forever — the most
    adversarial schedule expressible without inspecting the
    configuration.
    """

    def __init__(
        self,
        num_particles: int,
        reshuffle: bool = True,
        seed: RngLike = None,
    ):
        if num_particles < 1:
            raise ValueError(f"num_particles must be positive, got {num_particles}")
        self.num_particles = num_particles
        self.reshuffle = reshuffle
        self._rng = make_rng(seed)
        self._order = list(range(num_particles))
        if reshuffle:
            self._rng.shuffle(self._order)
        self._cursor = 0
        self.rounds_completed = 0

    def next_active(self) -> int:
        """Next particle in the current sweep, starting a new round at the end."""
        index = self._order[self._cursor]
        self._cursor += 1
        if self._cursor == self.num_particles:
            self._cursor = 0
            self.rounds_completed += 1
            if self.reshuffle:
                self._rng.shuffle(self._order)
        return index


SchedulerLike = object  # any object with next_active() -> int


def make_scheduler(
    kind: str,
    num_particles: int,
    seed: RngLike = None,
    reshuffle: bool = True,
) -> object:
    """Factory by name: ``"uniform"``, ``"poisson"``, or ``"round-robin"``."""
    if kind == "uniform":
        return UniformScheduler(num_particles, seed=seed)
    if kind == "poisson":
        return PoissonScheduler(num_particles, seed=seed)
    if kind == "round-robin":
        return RoundRobinScheduler(num_particles, reshuffle=reshuffle, seed=seed)
    raise ValueError(f"unknown scheduler kind: {kind!r}")


def merge_activation_streams(
    schedulers: List[PoissonScheduler], count: int
) -> List[Tuple[float, int, int]]:
    """Interleave several Poisson schedulers by global time.

    Returns ``count`` triples ``(time, scheduler_index, particle_index)``
    in time order — useful for modeling multi-cluster deployments in the
    examples.
    """
    if not schedulers:
        raise ValueError("need at least one scheduler")
    results: List[Tuple[float, int, int]] = []
    pending: List[Tuple[float, int, int]] = []
    for s_index, scheduler in enumerate(schedulers):
        particle = scheduler.next_active()
        pending.append((scheduler.current_time, s_index, particle))
    heapq.heapify(pending)
    while len(results) < count:
        time, s_index, particle = heapq.heappop(pending)
        results.append((time, s_index, particle))
        scheduler = schedulers[s_index]
        nxt = scheduler.next_active()
        heapq.heappush(pending, (scheduler.current_time, s_index, nxt))
    return results
