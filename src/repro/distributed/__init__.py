"""The distributed algorithm :math:`\\mathcal{A}` and its execution model.

Section 3 of the paper notes that the centralized chain
:math:`\\mathcal{M}` "can be directly translated to a fully distributed,
local, asynchronous algorithm :math:`\\mathcal{A}`" because every
probability and property it evaluates is computable from a particle's
strict neighborhood.  This package makes that translation concrete:

* :mod:`repro.distributed.local_view` — the read interface available to
  an activated particle, with locality *enforced* (reads outside the
  allowed neighborhood raise);
* :mod:`repro.distributed.agent` — the per-particle program, written
  purely against the local view;
* :mod:`repro.distributed.scheduler` — asynchronous activation models
  (uniform sequential, Poisson clocks, round-robin);
* :mod:`repro.distributed.conflicts` — resolution of simultaneous
  expansions into the same node;
* :mod:`repro.distributed.runner` — drivers that execute agents under a
  scheduler and, per the classical serialization argument (Section 2.1),
  reproduce the behavior of the centralized chain.
"""

from repro.distributed.local_view import LocalityViolation, LocalView
from repro.distributed.agent import MoveAction, NoAction, ParticleAgent, SwapAction
from repro.distributed.scheduler import (
    PoissonScheduler,
    RoundRobinScheduler,
    UniformScheduler,
)
from repro.distributed.conflicts import resolve_expansion_conflicts
from repro.distributed.runner import ConcurrentRunner, DistributedRunner
from repro.distributed.amoebot import AmoebotSimulator
from repro.distributed.faults import FaultyRunner, degradation_curve

__all__ = [
    "LocalView",
    "LocalityViolation",
    "ParticleAgent",
    "MoveAction",
    "SwapAction",
    "NoAction",
    "UniformScheduler",
    "PoissonScheduler",
    "RoundRobinScheduler",
    "resolve_expansion_conflicts",
    "DistributedRunner",
    "ConcurrentRunner",
    "AmoebotSimulator",
    "FaultyRunner",
    "degradation_curve",
]
