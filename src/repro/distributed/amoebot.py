"""Faithful amoebot-level execution: explicit expand/contract movement.

The runners in :mod:`repro.distributed.runner` treat a move as one
atomic action, which the standard asynchronous model justifies
(Section 2.1).  This module drops one level lower and simulates the
amoebot mechanics the paper actually describes: a particle first
*expands* into an adjacent empty node (occupying two nodes), then in a
later activation *contracts* to one of them.  Between the two
activations, other particles observe — and must cope with — an expanded
neighbor.

Faithfulness notes:

* A contracted particle activating next to an expanded one cannot move
  into either of its nodes and cannot swap with it (swaps are defined
  between contracted particles); the activation is a no-op, matching
  the model's conflict behavior.
* The Metropolis decision (conditions (i)-(iii) of Algorithm 1) is
  evaluated at *expansion* time from the neighborhood as seen then,
  and the particle commits to contracting forward or back — this is
  exactly how the PODC '16 / shortcut-bridging translations schedule
  the filter, and under the serialization argument the trajectory
  distribution matches the atomic chain.
* While any particle is expanded, the occupied node set temporarily has
  n+1 nodes; invariant checks therefore apply to *quiescent*
  configurations (no expanded particles), which every activation
  sequence reaches whenever each expanded particle is eventually
  reactivated.
* **Locking.**  Two in-flight moves with overlapping neighborhoods can
  jointly violate Properties 4/5 even though each was individually
  valid — naive interleaving disconnects the system (a bug this module
  reproduced before locks were added).  Deployed amoebot algorithms
  guard against it by checking neighbors' movement flags; we do the
  same: a particle only expands if no particle in the union
  neighborhood of the move is currently expanded, and the committed
  decision is re-validated against current occupancy at contraction
  time (contracting back if the world changed underneath it).  The
  test suite verifies invariants hold under heavy interleaving.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.moves import move_allowed
from repro.core.separation_chain import (
    DST_RING_INDICES,
    E_SRC,
    RING_OFFSETS,
    SRC_RING_INDICES,
)
from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node, direction_between
from repro.system.configuration import ParticleSystem
from repro.system.particle import Particle
from repro.util.rng import RngLike, make_rng, spawn_rngs


class AmoebotSimulator:
    """Expand/contract-level simulator of algorithm :math:`\\mathcal{A}`.

    Maintains :class:`~repro.system.particle.Particle` records (head,
    optional tail, memory) over a shared occupancy map.  Each activation
    of a contracted particle performs Steps 1-2 and, for an empty
    target, the *expansion* plus the move decision (recorded in the
    particle's memory); each activation of an expanded particle performs
    the committed *contraction*.  Swap moves execute atomically (they
    involve no expansion — colors are exchanged through memory, per the
    footnote in Section 2.3).
    """

    def __init__(
        self,
        system: ParticleSystem,
        lam: float,
        gamma: float,
        swaps: bool = True,
        seed: RngLike = None,
    ):
        if lam <= 0 or gamma <= 0:
            raise ValueError(
                f"lambda and gamma must be positive, got {lam}, {gamma}"
            )
        self.system = system
        self.lam = lam
        self.gamma = gamma
        self.swaps = swaps
        master = make_rng(seed)
        self.particles: List[Particle] = [
            Particle(pid=i, color=color, head=node)
            for i, (node, color) in enumerate(sorted(system.colors.items()))
        ]
        self._occupant: Dict[Node, int] = {
            p.head: p.pid for p in self.particles
        }
        self._rngs = spawn_rngs(master, len(self.particles))
        self._scheduler_rng = make_rng(master.getrandbits(64))
        self.activations = 0
        self.expansions = 0
        self.contractions_forward = 0
        self.contractions_back = 0
        self.accepted_swaps = 0

    # ------------------------------------------------------------------

    def _is_occupied(self, node: Node) -> bool:
        return node in self._occupant

    def activate(self, pid: Optional[int] = None) -> str:
        """One activation; returns a short label of what happened.

        ``pid`` defaults to a uniformly random particle (the chain's
        schedule); deterministic schedules can pass explicit ids.
        """
        self.activations += 1
        if pid is None:
            pid = int(self._scheduler_rng.random() * len(self.particles))
        particle = self.particles[pid]
        rng = self._rngs[pid]

        if particle.is_expanded:
            return self._contract(particle)
        return self._try_expand_or_swap(particle, rng)

    def _try_expand_or_swap(self, particle: Particle, rng) -> str:
        src = particle.head
        d = int(rng.random() * 6)
        dx, dy = NEIGHBOR_OFFSETS[d]
        dst = (src[0] + dx, src[1] + dy)
        occupant_pid = self._occupant.get(dst)

        if occupant_pid is not None:
            other = self.particles[occupant_pid]
            if (
                not self.swaps
                or other.is_expanded
                or other.color == particle.color
            ):
                return "noop"
            return self._try_swap(particle, other, rng)

        # Evaluate conditions (i)-(iii) from the pre-expansion view,
        # acquiring the neighborhood lock: abort if any particle in the
        # union neighborhood is itself mid-move (expanded).
        x, y = src
        ring_colors = []
        mask = 0
        bit = 1
        for rdx, rdy in RING_OFFSETS[d]:
            node = (x + rdx, y + rdy)
            occupant = self._occupant.get(node)
            if occupant is None:
                ring_colors.append(None)
            else:
                if self.particles[occupant].is_expanded:
                    return "noop"  # neighborhood locked by an in-flight move
                ring_colors.append(self.particles[occupant].color)
                mask |= bit
            bit <<= 1
        if E_SRC[mask] == 5:
            return "noop"
        if not move_allowed([bool(mask & (1 << i)) for i in range(8)]):
            return "noop"
        e_src = E_SRC[mask]
        e_dst = sum(1 for i in DST_RING_INDICES if ring_colors[i] is not None)
        same_src = sum(
            1 for i in SRC_RING_INDICES if ring_colors[i] == particle.color
        )
        same_dst = sum(
            1 for i in DST_RING_INDICES if ring_colors[i] == particle.color
        )
        ratio = (self.lam ** (e_dst - e_src)) * (
            self.gamma ** (same_dst - same_src)
        )
        go_forward = ratio >= 1.0 or rng.random() < ratio

        # Physically expand; the committed decision rides in memory.
        particle.expand(dst)
        self._occupant[dst] = particle.pid
        particle.memory["contract_forward"] = go_forward
        particle.memory["deltas"] = (
            e_dst - e_src,
            (e_dst - same_dst) - (e_src - same_src),
        )
        self.expansions += 1
        return "expanded"

    def _contract(self, particle: Particle) -> str:
        forward = bool(particle.memory.pop("contract_forward", False))
        particle.memory.pop("deltas", None)
        head, tail = particle.head, particle.tail
        if forward and not self._still_valid(particle):
            forward = False  # the world changed: abort the move
        if forward:
            del self._occupant[tail]
            particle.contract_to_head()
            self.system.move_particle(tail, head)
            self.contractions_forward += 1
            return "contracted-forward"
        del self._occupant[head]
        particle.contract_to_tail()
        self.contractions_back += 1
        return "contracted-back"

    def _still_valid(self, particle: Particle) -> bool:
        """Re-check conditions (i)-(ii) against current occupancy.

        The particle occupies both ``tail`` (origin) and ``head``
        (target); validity is evaluated for the move tail -> head with
        the particle's own nodes excluded, exactly as at expansion time.
        """
        tail, head = particle.tail, particle.head
        d = direction_between(tail, head)
        x, y = tail
        mask = 0
        bit = 1
        for rdx, rdy in RING_OFFSETS[d]:
            if (x + rdx, y + rdy) in self._occupant:
                mask |= bit
            bit <<= 1
        if E_SRC[mask] == 5:
            return False
        return move_allowed([bool(mask & (1 << i)) for i in range(8)])

    def _try_swap(self, particle: Particle, other: Particle, rng) -> str:
        src, dst = particle.head, other.head
        d = direction_between(src, dst)
        x, y = src
        expo = 0
        ci, cj = particle.color, other.color
        ring_colors = []
        for rdx, rdy in RING_OFFSETS[d]:
            occupant = self._occupant.get((x + rdx, y + rdy))
            ring_colors.append(
                None if occupant is None else self.particles[occupant].color
            )
        for i in DST_RING_INDICES:
            c = ring_colors[i]
            if c == ci:
                expo += 1
            elif c == cj:
                expo -= 1
        for i in SRC_RING_INDICES:
            c = ring_colors[i]
            if c == ci:
                expo -= 1
            elif c == cj:
                expo += 1
        ratio = self.gamma**expo
        if ratio < 1.0 and rng.random() >= ratio:
            return "noop"
        particle.color, other.color = other.color, particle.color
        self.system.swap_particles(src, dst)
        self.accepted_swaps += 1
        return "swapped"

    # ------------------------------------------------------------------

    def run(self, activations: int) -> "AmoebotSimulator":
        """Execute a number of activations."""
        if activations < 0:
            raise ValueError(
                f"activations must be non-negative, got {activations}"
            )
        for _ in range(activations):
            self.activate()
        return self

    def settle(self) -> int:
        """Activate every expanded particle so the system is quiescent.

        Returns the number of contractions performed.  After settling,
        the occupancy map has exactly n nodes and the usual invariants
        (connectivity, hole-freedom) are checkable.
        """
        settled = 0
        for particle in self.particles:
            if particle.is_expanded:
                self.activate(particle.pid)
                settled += 1
        return settled

    def is_quiescent(self) -> bool:
        """Whether no particle is currently expanded."""
        return all(p.is_contracted for p in self.particles)

    def expanded_count(self) -> int:
        """Number of currently expanded particles."""
        return sum(1 for p in self.particles if p.is_expanded)
