"""Drivers executing the distributed algorithm :math:`\\mathcal{A}`.

:class:`DistributedRunner` performs one atomic activation at a time, in
scheduler order, with each decision computed by the strictly local
:class:`~repro.distributed.agent.ParticleAgent`.  Under the uniform
scheduler this realizes the chain :math:`\\mathcal{M}` exactly (the test
suite compares empirical distributions against the exact stationary
distribution).

:class:`ConcurrentRunner` models genuinely concurrent rounds: a random
subset of particles decide against the round-start snapshot, and the
decisions are serialized with conflict resolution — demonstrating the
classical equivalence argument quoted in Section 2.1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.distributed.agent import (
    MoveAction,
    NoAction,
    ParticleAgent,
    SwapAction,
)
from repro.distributed.conflicts import resolve_expansion_conflicts
from repro.distributed.local_view import LocalView
from repro.distributed.scheduler import UniformScheduler
from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node
from repro.system.configuration import ParticleSystem
from repro.util.rng import RngLike, make_rng, spawn_rngs


class DistributedRunner:
    """Sequential-atomic-action executor for algorithm :math:`\\mathcal{A}`.

    Parameters
    ----------
    system:
        Particle system to evolve (mutated in place).
    lam, gamma, swaps:
        Algorithm parameters, as in the centralized chain.
    scheduler:
        Any object with ``next_active() -> int`` producing particle
        indices; defaults to a :class:`UniformScheduler`, which makes the
        runner distributionally identical to :math:`\\mathcal{M}`.
    seed:
        Seeds both the per-particle randomness and the default scheduler.

    Notes
    -----
    Swap moves are realized as color-attribute exchanges (the footnote in
    Section 2.3), so particle *devices* keep their lattice position and
    the index-to-node map stays stable across swaps.
    """

    def __init__(
        self,
        system: ParticleSystem,
        lam: float,
        gamma: float,
        swaps: bool = True,
        scheduler: Optional[object] = None,
        seed: RngLike = None,
    ):
        self.system = system
        self.agent = ParticleAgent(lam=lam, gamma=gamma, swaps=swaps)
        self._positions: List[Node] = list(system.colors)
        master = make_rng(seed)
        self._particle_rngs = spawn_rngs(master, len(self._positions))
        self._direction_rng = make_rng(master.getrandbits(64))
        self.scheduler = scheduler or UniformScheduler(
            len(self._positions), seed=master.getrandbits(64)
        )
        self.iterations = 0
        self.accepted_moves = 0
        self.accepted_swaps = 0
        self.rejections: Dict[str, int] = {}

    def step(self) -> bool:
        """One atomic activation; returns whether the configuration changed."""
        self.iterations += 1
        index = self.scheduler.next_active()
        location = self._positions[index]
        rng = self._particle_rngs[index]
        d = int(rng.random() * 6)
        dx, dy = NEIGHBOR_OFFSETS[d]
        target = (location[0] + dx, location[1] + dy)
        view = LocalView(self.system.colors, location, target)
        action = self.agent.decide(view, rng)
        return self._apply(index, action)

    def _apply(self, index: int, action) -> bool:
        if isinstance(action, MoveAction):
            self.system.move_particle(action.src, action.dst)
            self._positions[index] = action.dst
            self.accepted_moves += 1
            return True
        if isinstance(action, SwapAction):
            self.system.swap_particles(action.a, action.b)
            self.accepted_swaps += 1
            return True
        if isinstance(action, NoAction):
            self.rejections[action.reason] = (
                self.rejections.get(action.reason, 0) + 1
            )
            return False
        raise TypeError(f"unknown action type: {action!r}")

    def run(self, steps: int) -> "DistributedRunner":
        """Execute ``steps`` activations."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()
        return self

    def acceptance_rate(self) -> float:
        """Fraction of activations that changed the configuration."""
        if self.iterations == 0:
            return 0.0
        return (self.accepted_moves + self.accepted_swaps) / self.iterations


class ConcurrentRunner:
    """Round-based concurrent executor with explicit conflict resolution.

    Each round activates a random subset of particles (``round_size``);
    all of them decide against the round-start snapshot, then the
    decisions are applied in random serialization order via
    :func:`~repro.distributed.conflicts.resolve_expansion_conflicts`.
    Dropped actions are tallied in :attr:`conflicts_dropped` — measuring
    how rarely concurrency actually conflicts at moderate densities.
    """

    def __init__(
        self,
        system: ParticleSystem,
        lam: float,
        gamma: float,
        round_size: int,
        swaps: bool = True,
        seed: RngLike = None,
    ):
        if round_size < 1:
            raise ValueError(f"round_size must be positive, got {round_size}")
        self.system = system
        self.agent = ParticleAgent(lam=lam, gamma=gamma, swaps=swaps)
        self._positions: List[Node] = list(system.colors)
        master = make_rng(seed)
        self._particle_rngs = spawn_rngs(master, len(self._positions))
        self._rng = make_rng(master.getrandbits(64))
        self.round_size = min(round_size, len(self._positions))
        self.rounds = 0
        self.applied_actions = 0
        self.conflicts_dropped = 0

    def round(self) -> int:
        """Execute one concurrent round; returns the number of applied actions."""
        self.rounds += 1
        chosen = self._rng.sample(range(len(self._positions)), self.round_size)
        snapshot = dict(self.system.colors)
        proposed = []
        for index in chosen:
            location = self._positions[index]
            rng = self._particle_rngs[index]
            d = int(rng.random() * 6)
            dx, dy = NEIGHBOR_OFFSETS[d]
            target = (location[0] + dx, location[1] + dy)
            view = LocalView(snapshot, location, target)
            proposed.append((index, self.agent.decide(view, rng)))
        self._rng.shuffle(proposed)

        # Serialize against a scratch copy, then replay onto the real
        # system so the incremental counters stay correct.
        scratch = dict(self.system.colors)
        applied, dropped = resolve_expansion_conflicts(scratch, proposed)
        for index, action in applied:
            if isinstance(action, MoveAction):
                self.system.move_particle(action.src, action.dst)
                self._positions[index] = action.dst
            else:
                self.system.swap_particles(action.a, action.b)
        self.applied_actions += len(applied)
        self.conflicts_dropped += len(dropped)
        return len(applied)

    def run(self, rounds: int) -> "ConcurrentRunner":
        """Execute ``rounds`` concurrent rounds."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.round()
        return self
