"""Failure injection: crash-stop particles.

Real programmable-matter deployments lose devices.  The amoebot model
has no failure story in the paper, but the stochastic approach degrades
gracefully in an analyzable way: a *crash-stop* particle simply stops
activating.  It still occupies its node, still counts in neighbors'
censuses, and can still be read — it just never moves or initiates a
swap (and, in this model, never accepts being swapped, since swap moves
require writing to the partner's memory).

Mechanically, crashing particles freezes part of the configuration; the
chain restricted to live particles is still a valid Markov chain on the
reachable sub-space, so invariants (connectivity, hole-freedom) are
untouched.  What degrades is the *objective*: frozen wrongly-placed
particles leave permanent defects in the separated pattern.  The
robustness tests and example quantify that degradation as a function of
the crash fraction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.core.separation_chain import (
    DST_RING_INDICES,
    E_DST,
    E_SRC,
    MOVE_OK,
    RING_OFFSETS,
    SRC_RING_INDICES,
)
from repro.lattice.triangular import NEIGHBOR_OFFSETS, Node
from repro.system.configuration import ParticleSystem
from repro.util.rng import RngLike, make_rng


class FaultyRunner:
    """Separation dynamics with a crash-stop particle set.

    Crashed particles are chosen up front (``crash_fraction`` of the
    system, or an explicit node list) or injected later with
    :meth:`crash_nodes`.  Live-particle behavior is exactly Algorithm 1;
    proposals selecting a crashed particle, targeting a crashed swap
    partner, or moving where the rules forbid are no-ops.
    """

    def __init__(
        self,
        system: ParticleSystem,
        lam: float,
        gamma: float,
        crash_fraction: float = 0.0,
        crashed_nodes: Optional[Sequence[Node]] = None,
        swaps: bool = True,
        seed: RngLike = None,
    ):
        if lam <= 0 or gamma <= 0:
            raise ValueError(
                f"lambda and gamma must be positive, got {lam}, {gamma}"
            )
        if not 0.0 <= crash_fraction < 1.0:
            raise ValueError(
                f"crash_fraction must be in [0, 1), got {crash_fraction}"
            )
        self.system = system
        self.lam = lam
        self.gamma = gamma
        self.swaps = swaps
        self.rng = make_rng(seed)
        self._positions: List[Node] = list(system.colors)
        self._crashed: Set[Node] = set()
        if crashed_nodes is not None:
            self.crash_nodes(crashed_nodes)
        elif crash_fraction > 0.0:
            count = int(round(crash_fraction * system.n))
            chosen = self.rng.sample(sorted(system.colors), count)
            self.crash_nodes(chosen)
        self.iterations = 0
        self.accepted_moves = 0
        self.accepted_swaps = 0
        self.crashed_activations = 0

    # ------------------------------------------------------------------

    def crash_nodes(self, nodes: Sequence[Node]) -> None:
        """Mark the particles at ``nodes`` as crashed (idempotent)."""
        for node in nodes:
            if node not in self.system.colors:
                raise ValueError(f"no particle at {node} to crash")
            self._crashed.add(node)

    @property
    def crashed_count(self) -> int:
        """Number of crashed particles."""
        return len(self._crashed)

    def live_fraction(self) -> float:
        """Fraction of particles still responding."""
        return 1.0 - len(self._crashed) / self.system.n

    # ------------------------------------------------------------------

    def step(self) -> bool:
        """One activation; crashed selections are wasted activations."""
        system = self.system
        colors = system.colors
        positions = self._positions
        random = self.rng.random
        self.iterations += 1

        idx = int(random() * len(positions))
        src = positions[idx]
        if src in self._crashed:
            self.crashed_activations += 1
            return False
        ci = colors[src]
        d = int(random() * 6)
        dx, dy = NEIGHBOR_OFFSETS[d]
        x, y = src
        dst = (x + dx, y + dy)
        dst_color = colors.get(dst)
        if dst_color is not None:
            if (
                not self.swaps
                or dst_color == ci
                or dst in self._crashed  # crashed partners cannot swap
            ):
                return False

        ring_colors = []
        mask = 0
        bit = 1
        for rdx, rdy in RING_OFFSETS[d]:
            c = colors.get((x + rdx, y + rdy))
            ring_colors.append(c)
            if c is not None:
                mask |= bit
            bit <<= 1

        if dst_color is None:
            e_src = E_SRC[mask]
            if e_src == 5 or not MOVE_OK[mask]:
                return False
            e_dst = E_DST[mask]
            same_src = sum(
                1 for i in SRC_RING_INDICES if ring_colors[i] == ci
            )
            same_dst = sum(
                1 for i in DST_RING_INDICES if ring_colors[i] == ci
            )
            ratio = (self.lam ** (e_dst - e_src)) * (
                self.gamma ** (same_dst - same_src)
            )
            if ratio < 1.0 and random() >= ratio:
                return False
            del colors[src]
            colors[dst] = ci
            positions[idx] = dst
            system.edge_total += e_dst - e_src
            system.hetero_total += (e_dst - same_dst) - (e_src - same_src)
            self.accepted_moves += 1
            return True

        cj = dst_color
        expo = 0
        for i in DST_RING_INDICES:
            c = ring_colors[i]
            if c == ci:
                expo += 1
            elif c == cj:
                expo -= 1
        for i in SRC_RING_INDICES:
            c = ring_colors[i]
            if c == ci:
                expo -= 1
            elif c == cj:
                expo += 1
        ratio = self.gamma**expo
        if ratio < 1.0 and random() >= ratio:
            return False
        colors[src] = cj
        colors[dst] = ci
        system.hetero_total -= expo
        self.accepted_swaps += 1
        return True

    def run(self, steps: int) -> "FaultyRunner":
        """Execute ``steps`` activations."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()
        return self


def degradation_curve(
    n: int,
    crash_fractions: Sequence[float],
    lam: float = 4.0,
    gamma: float = 4.0,
    iterations: int = 300_000,
    seed: int = 0,
) -> List[dict]:
    """Endpoint separation quality versus crash fraction.

    Returns one row per crash fraction with the heterogeneous-edge
    density and demixing index after ``iterations`` steps from matched
    starts — the robustness profile of the algorithm.
    """
    from repro.analysis.interfaces import demixing_index
    from repro.system.initializers import random_blob_system

    rows = []
    for fraction in crash_fractions:
        system = random_blob_system(n, seed=seed)
        runner = FaultyRunner(
            system,
            lam=lam,
            gamma=gamma,
            crash_fraction=fraction,
            seed=seed,
        )
        runner.run(iterations)
        rows.append(
            {
                "crash_fraction": fraction,
                "hetero_density": (
                    system.hetero_total / system.edge_total
                    if system.edge_total
                    else 0.0
                ),
                "demixing_index": demixing_index(system),
                "crashed": runner.crashed_count,
            }
        )
    return rows
