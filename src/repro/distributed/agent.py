"""The per-particle local program of algorithm :math:`\\mathcal{A}`.

Each activation executes the body of Algorithm 1 using *only* the
:class:`~repro.distributed.local_view.LocalView` interface — the code
below never touches global state, which (together with the locality
enforcement in the view) demonstrates the paper's claim that every
probability and property check in :math:`\\mathcal{M}` is strictly local.

The decision logic intentionally re-derives the neighbor counts from the
view rather than calling the optimized centralized helpers; the test
suite then asserts the two implementations agree move-for-move.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Union

from repro.core.moves import property_4_reference, property_5_reference
from repro.distributed.local_view import LocalView
from repro.lattice.triangular import Node, neighbors
from repro.util.rng import random_unit


@dataclass(frozen=True)
class MoveAction:
    """Accepted relocation of the activated particle."""

    src: Node
    dst: Node


@dataclass(frozen=True)
class SwapAction:
    """Accepted color exchange between two adjacent particles."""

    a: Node
    b: Node


@dataclass(frozen=True)
class NoAction:
    """Rejected or inapplicable activation, with the reason recorded."""

    reason: str


Action = Union[MoveAction, SwapAction, NoAction]


class ParticleAgent:
    """The local algorithm run independently by every particle.

    Stateless apart from the bias parameters (which in a deployment
    would be broadcast environmental inputs, per the paper's framing of
    λ and γ as "external, environmental influences").
    """

    def __init__(self, lam: float, gamma: float, swaps: bool = True):
        if lam <= 0 or gamma <= 0:
            raise ValueError(
                f"lambda and gamma must be positive, got {lam}, {gamma}"
            )
        self.lam = lam
        self.gamma = gamma
        self.swaps = swaps

    def decide(self, view: LocalView, rng: random.Random) -> Action:
        """Execute one activation against a local view.

        The caller has already drawn the uniformly random neighboring
        location (``view.target``); this method draws ``q`` and evaluates
        conditions (i)-(iii) or the swap filter.
        """
        if view.is_occupied(view.target):
            return self._decide_swap(view, rng)
        return self._decide_move(view, rng)

    # ------------------------------------------------------------------

    def _decide_move(self, view: LocalView, rng: random.Random) -> Action:
        src = view.location
        dst = view.target
        my_color = view.my_color()

        src_neighbors = view.occupied_neighbors(src)
        e_src = len(src_neighbors)  # dst is empty, so no exclusion needed
        if e_src == 5:
            return NoAction("condition (i): particle has five neighbors")

        # Properties 4/5 over the readable union neighborhood.
        readable_occupied = {
            node
            for node in set(neighbors(src)) | set(neighbors(dst))
            if view.is_occupied(node)
        }
        readable_occupied.add(src)
        if not (
            property_4_reference(readable_occupied, src, dst)
            or property_5_reference(readable_occupied, src, dst)
        ):
            return NoAction("condition (ii): Properties 4 and 5 both fail")

        dst_neighbors = [n for n in view.occupied_neighbors(dst) if n != src]
        e_dst = len(dst_neighbors)
        e_src_same = sum(
            1 for n in src_neighbors if view.color_of(n) == my_color
        )
        e_dst_same = sum(
            1 for n in dst_neighbors if view.color_of(n) == my_color
        )
        ratio = (
            self.lam ** (e_dst - e_src)
            * self.gamma ** (e_dst_same - e_src_same)
        )
        q = random_unit(rng)
        if q < ratio:
            return MoveAction(src=src, dst=dst)
        return NoAction("condition (iii): Metropolis filter rejected")

    # ------------------------------------------------------------------

    def _decide_swap(self, view: LocalView, rng: random.Random) -> Action:
        if not self.swaps:
            return NoAction("swap moves disabled")
        src = view.location
        dst = view.target
        my_color = view.my_color()
        other_color = view.color_of(dst)
        if other_color == my_color:
            return NoAction("neighbor has the same color: swap is a no-op")

        # Own side: direct neighborhood scan.
        src_neighbors = view.occupied_neighbors(src)
        own_same = sum(1 for n in src_neighbors if view.color_of(n) == my_color)
        own_other = sum(
            1
            for n in src_neighbors
            if n != dst and view.color_of(n) == other_color
        )
        # Neighbor side: read Q's published neighbor census from its memory.
        _, published = view.published_neighbor_counts(dst)
        their_same = published.get(my_color, 0) - 1  # exclude P itself
        their_other = published.get(other_color, 0)

        exponent = (their_same - own_same) + (own_other - their_other)
        q = random_unit(rng)
        if q < self.gamma**exponent:
            return SwapAction(a=src, b=dst)
        return NoAction("swap filter rejected")
