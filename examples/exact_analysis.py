#!/usr/bin/env python
"""Exact small-system tour: the paper's math, computed to the last digit.

For systems small enough to enumerate every configuration, everything
the paper proves asymptotically can be computed exactly: the state
space, the stationary distribution of Lemma 9, detailed balance,
spectral gaps, and the probability of (β, δ)-separation as a function
of γ.  This example walks through all of it on n = 4 and n = 5.

Usage::

    python examples/exact_analysis.py
"""

import numpy as np

from repro.markov.enumerate_configs import count_animals
from repro.markov.exact import ExactChainAnalysis
from repro.markov.spectral import bottleneck_ratio, spectral_summary


def state_space_tour() -> None:
    print("=== state spaces ===")
    print("connected node sets per size (OEIS A001334):")
    print(" ", [count_animals(n) for n in range(1, 8)])
    analysis = ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=3.0)
    print(
        f"n=4 with 2+2 colors: {len(analysis.states)} configurations "
        "(44 shapes x 6 colorings)"
    )


def stationary_tour() -> None:
    print("\n=== Lemma 9, exactly ===")
    analysis = ExactChainAnalysis(5, [3, 2], lam=2.0, gamma=3.0)
    print(f"states: {len(analysis.states)}")
    print(f"detailed balance max error: {analysis.detailed_balance_error():.2e}")
    pi_eig = analysis.stationary_by_eigenvector()
    print(
        "closed form vs eigenvector max difference: "
        f"{np.abs(pi_eig - analysis.pi).max():.2e}"
    )
    perimeters = np.array([s.perimeter() for s in analysis.states])
    heteros = np.array([float(s.hetero_total) for s in analysis.states])
    print(f"E[perimeter] = {analysis.pi @ perimeters:.4f}")
    print(f"E[hetero edges] = {analysis.pi @ heteros:.4f}")


def separation_curve() -> None:
    print("\n=== P(separated) as a function of gamma (n=4, beta=0.75, delta=0.2) ===")
    for gamma in (0.5, 1.0, 2.0, 4.0, 8.0, 16.0):
        analysis = ExactChainAnalysis(4, [2, 2], lam=2.0, gamma=gamma)
        probability = analysis.separation_probability(0.75, 0.2)
        bar = "#" * int(40 * probability)
        print(f"  gamma={gamma:>5.1f}  {probability:.4f}  {bar}")


def spectral_tour() -> None:
    print("\n=== spectra and bottlenecks ===")
    for gamma in (1.0, 4.0, 8.0):
        analysis = ExactChainAnalysis(4, [2, 2], lam=3.0, gamma=gamma)
        summary = spectral_summary(analysis)
        phi = bottleneck_ratio(analysis, in_cut=lambda s: s.hetero_total <= 1)
        print(
            f"  gamma={gamma:>4.1f}  gap={summary.spectral_gap:.5f}  "
            f"t_rel={summary.relaxation_time:7.1f}  "
            f"2*phi(sorted cut)={2 * phi:.5f}"
        )
    print(
        "  (the gap closes as gamma grows: separated states form wells"
        " separated by the low-conductance sorted cut)"
    )


def main() -> None:
    state_space_tour()
    stationary_tour()
    separation_curve()
    spectral_tour()


if __name__ == "__main__":
    main()
