#!/usr/bin/env python
"""Regenerate Figure 2: a 100-particle system separating over time.

Reproduces the paper's five-snapshot run (λ = γ = 4, 50 + 50 colors) at
a configurable scale of the original 68.25M iterations and prints each
snapshot with its quantitative observables.

Usage::

    python examples/figure2_evolution.py [scale]

``scale`` defaults to 0.02 (final checkpoint ≈ 1.4M iterations, about a
minute); use 1.0 to run the paper's full counts.
"""

import sys

from repro.experiments.figure2 import run_figure2


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    result = run_figure2(
        n=100, lam=4.0, gamma=4.0, scale=scale, seed=2018, keep_snapshots=True
    )

    for checkpoint, snapshot, row, phase in zip(
        result.checkpoints, result.snapshots, result.rows, result.phases
    ):
        print(f"\n===== {checkpoint:,} iterations — {phase} =====")
        print(
            f"perimeter={row['perimeter']:.0f}  alpha={row['alpha']:.2f}  "
            f"hetero edges={row['hetero_edges']:.0f}  "
            f"h/e={row['hetero_density']:.3f}"
        )
        print(snapshot)

    print("\nsummary:")
    print(result.summary_table())


if __name__ == "__main__":
    main()
