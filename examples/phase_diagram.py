#!/usr/bin/env python
"""Regenerate Figure 3: the (λ, γ) phase diagram.

Runs the chain from a shared initial configuration for every cell of a
bias-parameter grid and prints the resulting phase table, optionally
saving an SVG picture of each endpoint.

Usage::

    python examples/phase_diagram.py [iterations] [--svg OUTDIR]
"""

import sys
from pathlib import Path

from repro.experiments.figure3 import run_figure3
from repro.experiments.render import render_svg


def main() -> None:
    args = sys.argv[1:]
    svg_dir = None
    if "--svg" in args:
        index = args.index("--svg")
        svg_dir = Path(args[index + 1])
        svg_dir.mkdir(parents=True, exist_ok=True)
        del args[index : index + 2]
    iterations = int(args[0]) if args else 400_000

    print(f"sweeping the (lambda, gamma) grid, {iterations:,} iterations/cell...")
    result = run_figure3(n=100, iterations=iterations, seed=2018)
    print()
    print(result.grid_table())

    print("\nper-cell metrics:")
    for lam in result.lambdas:
        for gamma in result.gammas:
            metrics = result.metrics[(lam, gamma)]
            print(
                f"  lam={lam:<4} gamma={gamma:<4} "
                f"alpha={metrics['alpha']:5.2f}  "
                f"h/e={metrics['hetero_density']:5.3f}  "
                f"best beta={metrics['best_beta']:5.2f}"
            )

    if svg_dir is not None:
        # Re-run each corner cell to render its endpoint (run_figure3
        # does not retain per-cell systems to bound memory).
        from repro.core.separation_chain import SeparationChain
        from repro.system.initializers import random_blob_system

        for lam, gamma in (
            (0.5, 6.0), (1.0, 1.0), (6.0, 1.0), (6.0, 6.0), (4.0, 4.0),
        ):
            system = random_blob_system(100, seed=2018)
            SeparationChain(system, lam=lam, gamma=gamma, seed=2018).run(
                iterations
            )
            path = svg_dir / f"phase_lam{lam}_gamma{gamma}.svg"
            render_svg(system, path)
            print(f"wrote {path}")


if __name__ == "__main__":
    main()
