#!/usr/bin/env python
"""Inside the amoebot model: expansions, contractions, and locks.

The other examples use the abstract one-step-per-move chain.  This one
drops to the mechanical level the paper describes — particles that
physically expand into a neighboring node and later contract — and
demonstrates why naive concurrent moves need a locking discipline (two
individually valid in-flight moves can jointly disconnect the system).

Usage::

    python examples/amoebot_mechanics.py
"""

from repro.analysis.inference import estimate_gamma_pseudolikelihood
from repro.distributed.amoebot import AmoebotSimulator
from repro.experiments.render import render_ascii
from repro.system.initializers import hexagon_system


def mechanics_walkthrough() -> None:
    system = hexagon_system(30, seed=4)
    sim = AmoebotSimulator(system, lam=4.0, gamma=4.0, seed=4)

    print("activation-by-activation, until one full move completes:")
    shown = 0
    for _ in range(2_000):
        label = sim.activate()
        if label != "noop":
            shown += 1
            expanded = sim.expanded_count()
            print(
                f"  activation {sim.activations:>5}: {label:<19} "
                f"({expanded} particle(s) currently expanded)"
            )
        if label == "contracted-forward" or shown >= 12:
            break


def long_run_statistics() -> None:
    system = hexagon_system(60, seed=5)
    sim = AmoebotSimulator(system, lam=4.0, gamma=4.0, seed=5)
    sim.run(200_000)
    sim.settle()
    total = sim.contractions_forward + sim.contractions_back
    print("\nafter 200k activations (n=60, lam=gamma=4):")
    print(f"  expansions: {sim.expansions:,}")
    print(
        f"  contractions: {sim.contractions_forward:,} forward / "
        f"{sim.contractions_back:,} back "
        f"({sim.contractions_forward / total:.1%} of moves complete)"
    )
    print(f"  swaps: {sim.accepted_swaps:,}")
    print(
        f"  invariants: connected={system.is_connected()} "
        f"hole-free={not system.has_holes()}"
    )
    print("\nfinal configuration:")
    print(render_ascii(system))

    # Close the loop: recover the environmental gamma from the observed
    # configuration alone (pair-swap pseudo-likelihood).
    estimate = estimate_gamma_pseudolikelihood([system])
    print(
        f"\ngamma inferred from the final configuration alone: "
        f"{estimate:.2f} (true value: 4.0)"
    )


def main() -> None:
    mechanics_walkthrough()
    long_run_statistics()


if __name__ == "__main__":
    main()
