#!/usr/bin/env python
"""Robustness to device failure: separation with crash-stop particles.

Programmable-matter hardware loses devices; this example measures how
gracefully the separation algorithm degrades when a fraction of
particles crash (stop activating but keep occupying their nodes).  It
also demonstrates mid-run crashes: a healthy separated system whose
particles start failing.

Usage::

    python examples/fault_tolerance.py [iterations]
"""

import sys

from repro.analysis.interfaces import demixing_index
from repro.distributed.faults import FaultyRunner, degradation_curve
from repro.experiments.render import render_ascii
from repro.system.initializers import random_blob_system


def degradation_sweep(iterations: int) -> None:
    fractions = (0.0, 0.1, 0.2, 0.3, 0.5)
    print(f"endpoint quality vs crash fraction (n=80, {iterations:,} steps):\n")
    print(f"{'crashed':>8}  {'h/e':>6}  {'demixing index':>14}")
    for row in degradation_curve(
        n=80, crash_fractions=fractions, iterations=iterations, seed=12
    ):
        print(
            f"{row['crash_fraction']:>8.0%}  {row['hetero_density']:>6.3f}  "
            f"{row['demixing_index']:>14.2f}"
        )


def midrun_crashes(iterations: int) -> None:
    print("\nmid-run failure: separate cleanly, then lose 30% of devices\n")
    system = random_blob_system(80, seed=13)
    runner = FaultyRunner(system, lam=4.0, gamma=4.0, seed=13)
    runner.run(iterations)
    print(
        f"before crashes: demixing={demixing_index(system):.2f}, "
        f"h/e={system.hetero_total / system.edge_total:.3f}"
    )
    victims = sorted(system.colors)[:: 3][: int(0.3 * system.n)]
    runner.crash_nodes(victims)
    runner.run(iterations)
    print(
        f"after crashes + recovery time: demixing={demixing_index(system):.2f}, "
        f"h/e={system.hetero_total / system.edge_total:.3f} "
        f"({runner.crashed_count} devices dark)"
    )
    print()
    print(render_ascii(system))


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 250_000
    degradation_sweep(iterations)
    midrun_crashes(iterations)


if __name__ == "__main__":
    main()
