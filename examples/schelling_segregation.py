#!/usr/bin/env python
"""A Schelling-style segregation study on mobile particles.

The paper's introduction motivates separation with the Schelling model
of residential segregation: individuals with mild same-type preferences
induce macro-level segregation.  Here γ plays the role of individual
bias.  This example sweeps γ and reports sociological order parameters —
mean same-color neighbor fraction ("local homophily") and the size of
the largest monochromatic district — exposing the sharp onset of
segregation, including the paper's counterintuitive result that a mild
preference for like neighbors (γ slightly above 1) still provably fails
to segregate.

Usage::

    python examples/schelling_segregation.py [iterations]
"""

import sys

from repro.analysis.bounds import predicted_regime
from repro.core.separation_chain import SeparationChain
from repro.system.initializers import random_blob_system
from repro.system.observables import (
    largest_cluster_fraction,
    mean_same_color_neighbor_fraction,
)

GAMMAS = (0.8, 1.0, 1.02, 1.2, 1.5, 2.0, 3.0, 4.0, 6.0)


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 300_000
    lam = 4.0  # residents prefer dense neighborhoods throughout
    n = 100

    print(
        f"Schelling sweep: n={n}, lam={lam}, {iterations:,} steps per gamma\n"
    )
    print(
        f"{'gamma':>6}  {'homophily':>9}  {'largest district':>16}  "
        f"{'hetero edges':>12}  proven"
    )
    for gamma in GAMMAS:
        system = random_blob_system(n, seed=17)
        SeparationChain(system, lam=lam, gamma=gamma, seed=17).run(iterations)
        homophily = mean_same_color_neighbor_fraction(system)
        district = largest_cluster_fraction(system)
        print(
            f"{gamma:>6.2f}  {homophily:>9.3f}  {district:>16.2f}  "
            f"{system.hetero_total:>12}  {predicted_regime(lam, gamma)}"
        )

    print(
        "\nReading the table: a balanced integrated city has homophily"
        " near 0.5 and small districts; segregation drives both toward 1."
        "\nNote gamma = 1.02 (mild pro-similarity bias) still behaves"
        " integrated — Theorem 16's counterintuitive regime."
    )


if __name__ == "__main__":
    main()
