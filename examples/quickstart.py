#!/usr/bin/env python
"""Quickstart: separate a 100-particle bichromatic system.

Runs Algorithm 1 at the paper's Figure 2 parameters (λ = γ = 4) and
prints the trajectory of the key observables plus before/after pictures.

Usage::

    python examples/quickstart.py
"""

from repro import SeparationChain, hexagon_system
from repro.analysis.compression_metric import alpha_of
from repro.analysis.separation_metric import best_certificate
from repro.experiments.phases import classify_phase
from repro.experiments.render import render_ascii


def main() -> None:
    # 50 blue ('o') + 50 red ('x') particles, randomly mixed in a hexagon.
    system = hexagon_system(100, seed=1)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=1)

    print("initial configuration:")
    print(render_ascii(system))
    print(
        f"\nperimeter={system.perimeter()}  alpha={alpha_of(system):.2f}  "
        f"heterogeneous edges={system.hetero_total}\n"
    )

    for checkpoint in (10_000, 100_000, 500_000, 1_000_000):
        chain.run(checkpoint - chain.iterations)
        print(
            f"after {chain.iterations:>9,} steps: "
            f"perimeter={system.perimeter():>3}  "
            f"alpha={alpha_of(system):.2f}  "
            f"hetero={system.hetero_total:>3}  "
            f"phase={classify_phase(system)}"
        )

    print("\nfinal configuration:")
    print(render_ascii(system))

    certificate = best_certificate(system, beta=4.0, delta=0.2)
    if certificate is not None:
        print(
            f"\nseparation certificate: |R|={len(certificate.region)}, "
            f"cut edges={certificate.cut_edges} "
            f"(beta={certificate.beta_achieved:.2f}), "
            f"purity inside={certificate.density_inside:.2f}, "
            f"reference color leakage={certificate.density_outside:.2f}"
        )


if __name__ == "__main__":
    main()
