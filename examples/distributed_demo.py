#!/usr/bin/env python
"""The distributed algorithm A under asynchronous schedulers.

Demonstrates the translation of the centralized chain M into a fully
local algorithm: per-particle agents reading only their neighborhoods,
activated by a Poisson-clock scheduler, plus a genuinely concurrent
round-based execution with conflict resolution.

Usage::

    python examples/distributed_demo.py
"""

from repro.distributed import (
    ConcurrentRunner,
    DistributedRunner,
    LocalityViolation,
    LocalView,
    PoissonScheduler,
)
from repro.experiments.render import render_ascii
from repro.system.initializers import hexagon_system


def demonstrate_locality() -> None:
    """Show the view layer rejecting non-local reads."""
    system = hexagon_system(20, seed=0)
    location = sorted(system.colors)[0]
    from repro.lattice.triangular import neighbors

    view = LocalView(system.colors, location, neighbors(location)[0])
    print(f"particle at {location} reads its neighborhood fine:")
    print(f"  occupied neighbors: {view.occupied_neighbors(location)}")
    try:
        view.color_of((40, 40))
    except LocalityViolation as error:
        print(f"  far read rejected: {error}")


def run_asynchronous() -> None:
    """Algorithm A under Poisson clocks: same emergent separation."""
    system = hexagon_system(80, seed=3)
    scheduler = PoissonScheduler(system.n, seed=3)
    runner = DistributedRunner(
        system, lam=4.0, gamma=4.0, scheduler=scheduler, seed=3
    )
    print("\nPoisson-clock asynchronous execution (n=80, lam=gamma=4):")
    print(f"  start: hetero edges = {system.hetero_total}")
    for _ in range(5):
        runner.run(40_000)
        print(
            f"  t={scheduler.current_time:10.1f}  "
            f"activations={runner.iterations:>7,}  "
            f"hetero={system.hetero_total:>3}  "
            f"accepted: {runner.accepted_moves} moves, "
            f"{runner.accepted_swaps} swaps"
        )
    print("\n  rejection census:")
    for reason, count in sorted(
        runner.rejections.items(), key=lambda item: -item[1]
    )[:4]:
        print(f"    {count:>7,}  {reason}")
    print("\nfinal configuration:")
    print(render_ascii(system))


def run_concurrent() -> None:
    """Concurrent rounds: decisions on a snapshot, serialized with
    conflict resolution — the Section 2.1 equivalence in action."""
    system = hexagon_system(80, seed=4)
    runner = ConcurrentRunner(system, lam=4.0, gamma=4.0, round_size=20, seed=4)
    runner.run(10_000)
    total = runner.applied_actions + runner.conflicts_dropped
    print(
        f"\nconcurrent execution: {runner.rounds:,} rounds of 20, "
        f"{runner.applied_actions:,} actions applied, "
        f"{runner.conflicts_dropped:,} dropped to conflicts "
        f"({runner.conflicts_dropped / total:.1%})"
    )
    print(
        f"invariants held: connected={system.is_connected()}, "
        f"hole-free={not system.has_holes()}"
    )


def main() -> None:
    demonstrate_locality()
    run_asynchronous()
    run_concurrent()


if __name__ == "__main__":
    main()
