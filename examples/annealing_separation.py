#!/usr/bin/env python
"""Annealing the bias parameters: does ramping (λ, γ) help?

The paper runs the chain at fixed parameters.  Since the proven bounds
are not tight and convergence slows as biases grow (moves out of dense
regions become rare), a natural engineering question is whether ramping
the biases from weak to strong reaches separated states faster than
running cold from the start.  This example compares three strategies
over the same step budget.

Usage::

    python examples/annealing_separation.py [budget]
"""

import sys

from repro.core.schedule import (
    ConstantSchedule,
    GeometricSchedule,
    LinearSchedule,
    run_annealed,
)
from repro.core.separation_chain import SeparationChain
from repro.system.initializers import random_blob_system

STRATEGIES = {
    "fixed (4, 4)": ConstantSchedule(4.0, 4.0),
    "linear 1->4": LinearSchedule(1.0, 4.0, 1.0, 4.0),
    "geometric 1.2->4": GeometricSchedule(1.2, 4.0, 1.2, 4.0),
}


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 400_000

    print(f"step budget {budget:,}, n=100, three replicas per strategy\n")
    print(f"{'strategy':<18} {'final h/e':>10}  {'final alpha':>11}")
    for name, schedule in STRATEGIES.items():
        hetero_densities = []
        alphas = []
        for seed in (1, 2, 3):
            system = random_blob_system(100, seed=seed)
            chain = SeparationChain(system, lam=1.0, gamma=1.0, seed=seed)
            run_annealed(chain, schedule, total_steps=budget, updates=50)
            hetero_densities.append(system.hetero_total / system.edge_total)
            from repro.analysis.compression_metric import alpha_of

            alphas.append(alpha_of(system))
        print(
            f"{name:<18} "
            f"{sum(hetero_densities) / 3:>10.3f}  "
            f"{sum(alphas) / 3:>11.2f}"
        )

    print(
        "\nLower h/e is more separated; lower alpha is more compressed."
        "\nAt this scale fixed strong biases usually win — the chain"
        " at (4,4) separates quickly from random starts, so annealing"
        " mainly helps when biases are near the phase boundary."
    )


if __name__ == "__main__":
    main()
