"""E14 — strip decomposition: the Theorem 16 dichotomy, measured.

Runs the chain at an integrating γ (≈1) and a separating γ, decomposes
the endpoints into lattice-axis strips, and compares the maximum color
surplus against the Chernoff envelope for random colorings.  Shape
claim: the integrated endpoint stays within the envelope (its coloring
is statistically indistinguishable from random — how Theorem 16 rules
out separation), while the separated endpoint blows past it.
"""

from conftest import full_scale, write_result

from repro.analysis.strips import max_surplus_summary
from repro.core.separation_chain import SeparationChain
from repro.system.initializers import random_blob_system

CASES = (
    ("integrating", 4.0, 1.0),
    ("window edge", 4.0, 81 / 79.0),
    ("separating", 4.0, 6.0),
)


def _run():
    iterations = 5_000_000 if full_scale() else 400_000
    n = 100 if full_scale() else 80
    width = 3
    rows = []
    for label, lam, gamma in CASES:
        system = random_blob_system(n, seed=23)
        SeparationChain(system, lam=lam, gamma=gamma, seed=23).run(iterations)
        summary = max_surplus_summary(system, width=width)
        rows.append((label, lam, gamma, summary))
    return n, iterations, rows


def test_strip_surplus_dichotomy(benchmark):
    n, iterations, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"n={n}, {iterations} iterations, width-3 strips, best of 3 axes",
        f"{'case':<12} {'gamma':>7}  {'max surplus':>11}  "
        f"{'envelope':>9}  exceeds?",
    ]
    for label, lam, gamma, summary in rows:
        lines.append(
            f"{label:<12} {gamma:>7.3f}  {summary.max_surplus:>11.2f}  "
            f"{summary.chernoff_envelope:>9.2f}  {summary.exceeds_envelope}"
        )
    write_result("strip_dichotomy", "\n".join(lines))

    by_label = {label: summary for label, _, _, summary in rows}
    assert not by_label["integrating"].exceeds_envelope
    assert not by_label["window edge"].exceeds_envelope
    assert by_label["separating"].exceeds_envelope
