"""E5 — Lemma 9: the stationary distribution, exactly and empirically.

Builds the exact state space for small n, verifies detailed balance and
ergodicity, and measures the total-variation distance between the
simulated chain's visit frequencies and the closed-form π.
"""

import numpy as np
from conftest import full_scale, write_result

from repro.core.separation_chain import SeparationChain
from repro.markov.diagnostics import (
    empirical_distribution,
    empirical_vs_exact_tv,
    is_aperiodic,
    is_irreducible,
)
from repro.markov.exact import ExactChainAnalysis


def _run():
    steps = 2_000_000 if full_scale() else 300_000
    analysis = ExactChainAnalysis(5, [3, 2], lam=2.0, gamma=3.0)
    state = analysis.states[0].copy()
    chain = SeparationChain(state, lam=2.0, gamma=3.0, seed=11)
    empirical = empirical_distribution(
        chain,
        state_index=lambda: state.canonical_key(),
        steps=steps,
        record_every=5,
    )
    exact = {
        s.canonical_key(): float(p)
        for s, p in zip(analysis.states, analysis.pi)
    }
    tv = empirical_vs_exact_tv(empirical, exact)
    return analysis, steps, tv


def test_stationary_distribution(benchmark):
    analysis, steps, tv = benchmark.pedantic(_run, rounds=1, iterations=1)

    mixing = analysis.mixing_time_upper_bound(0.25)
    perimeters = np.array([s.perimeter() for s in analysis.states])
    heteros = np.array([float(s.hetero_total) for s in analysis.states])
    lines = [
        f"state space: n=5, counts (3,2): {len(analysis.states)} states",
        f"detailed balance max error: {analysis.detailed_balance_error():.2e}",
        f"irreducible: {is_irreducible(analysis.matrix)}",
        f"aperiodic: {is_aperiodic(analysis.matrix)}",
        f"mixing time (TV<0.25) <= {mixing} steps",
        f"E_pi[perimeter] = {analysis.pi @ perimeters:.4f}",
        f"E_pi[hetero edges] = {analysis.pi @ heteros:.4f}",
        f"empirical vs exact TV after {steps} steps: {tv:.4f}",
    ]
    write_result("stationary_distribution", "\n".join(lines))

    assert analysis.detailed_balance_error() < 1e-14
    assert is_irreducible(analysis.matrix)
    assert is_aperiodic(analysis.matrix)
    assert tv < 0.1
