"""E2 — Figure 3: the (λ, γ) phase diagram.

Sweeps the bias-parameter grid from a shared initial configuration and
classifies each endpoint into the paper's four phases.  Shape claims:
all four phases appear; the corners match the paper (large λ and γ →
compressed-separated; large λ, γ ≈ 1 → compressed-integrated; λ = γ = 1
→ expanded-integrated; small λ, large γ → expanded-separated).
"""

from conftest import full_scale, write_result

from repro.experiments.figure3 import run_figure3


def _run():
    iterations = 50_000_000 if full_scale() else 400_000
    n = 100 if full_scale() else 60
    return run_figure3(n=n, iterations=iterations, seed=2018)


def test_figure3_phase_diagram(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [result.grid_table(), "", "cell metrics:"]
    for lam in result.lambdas:
        for gamma in result.gammas:
            metrics = result.metrics[(lam, gamma)]
            lines.append(
                f"  lam={lam:<4} gamma={gamma:<4} "
                f"alpha={metrics['alpha']:.2f} "
                f"h/e={metrics['hetero_density']:.3f} "
                f"beta={metrics['best_beta']:.2f}"
            )
    write_result("figure3", "\n".join(lines))

    phases = set(result.phases.values())
    assert len(phases) >= 3, f"expected >=3 of the 4 phases, got {phases}"
    assert result.phase_of(4.0, 4.0) == "compressed-separated"
    assert result.phase_of(6.0, 1.0) == "compressed-integrated"
    assert result.phase_of(1.0, 1.0) == "expanded-integrated"
    assert result.phase_of(0.5, 6.0).endswith("separated")
