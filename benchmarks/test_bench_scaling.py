"""E15 — finite-size scaling of separation.

The paper's guarantees are w.h.p. statements with failure probability
:math:`\\zeta^{\\sqrt n}`.  This benchmark measures the finite-n face:
α concentrates near 1 at every size, every replica separates within a
per-particle budget, and the fitted interface exponent lands in the
coarsening band (≈1 rather than the equilibrium 0.5 — the measured
footprint of the slow interface merging discussed in Section 5).
"""

from conftest import full_scale, write_result

from repro.experiments.scaling import (
    interface_scaling_exponent,
    scaling_study,
    scaling_table,
)


def _run():
    if full_scale():
        sizes = (50, 100, 200, 400)
        steps_per_particle = 20_000
    else:
        sizes = (30, 60, 120)
        steps_per_particle = 2_000
    return scaling_study(
        sizes=sizes,
        lam=4.0,
        gamma=4.0,
        steps_per_particle=steps_per_particle,
        replicas=3,
        seed=5,
    )


def test_finite_size_scaling(benchmark):
    study = benchmark.pedantic(_run, rounds=1, iterations=1)

    exponent = interface_scaling_exponent(study)
    write_result(
        "finite_size_scaling",
        scaling_table(study)
        + f"\nfitted interface exponent b (h ~ n^b): {exponent:.2f}"
        + "\n(equilibrium b=0.5; fixed-budget coarsening keeps b near 1)",
    )

    assert all(p.fraction_separated_in_budget == 1.0 for p in study)
    assert all(p.mean_alpha < 2.0 for p in study)
    assert 0.4 <= exponent <= 1.35
    # Time to separation grows with n but stays within the budget.
    times = [p.mean_time_to_separation for p in study]
    assert all(t is not None for t in times)
    assert times[-1] > times[0]
