"""Shared helpers for the benchmark/experiment harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index) at a scaled-down iteration count, and
writes its quantitative output to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can cite concrete numbers.  Set ``REPRO_FULL_SCALE=1`` to
run at the paper's full iteration counts (minutes instead of seconds).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    """Whether the harness should run at the paper's full iteration counts."""
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


def scale_factor(default: float) -> float:
    """Iteration scale: 1.0 at full scale, ``default`` otherwise."""
    return 1.0 if full_scale() else default


def write_result(name: str, text: str) -> None:
    """Persist a benchmark's quantitative output for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
