"""E1 — Figure 2: time evolution of separation at λ = γ = 4.

Regenerates the paper's five-snapshot trajectory (n = 100, 50 + 50
colors) and checks its shape: compression and separation both improve
monotonically in the aggregate, with most of the progress inside the
first scaled "million" iterations, ending compressed-separated.
"""

from conftest import full_scale, write_result

from repro.experiments.figure2 import run_figure2


def _run():
    scale = 1.0 if full_scale() else 0.02
    return run_figure2(
        n=100, lam=4.0, gamma=4.0, scale=scale, seed=2018, keep_snapshots=True
    )


def test_figure2_time_evolution(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = result.summary_table()
    final_snapshot = result.snapshots[-1]
    write_result("figure2", table + "\n\nfinal configuration:\n" + final_snapshot)

    rows = result.rows
    # Shape claim 1: the run ends compressed-separated (Figure 2, right).
    assert result.phases[-1] == "compressed-separated"
    # Shape claim 2: both observables improve start-to-end.
    assert rows[-1]["alpha"] < rows[0]["alpha"]
    assert rows[-1]["hetero_density"] < 0.5 * rows[0]["hetero_density"]
    # Shape claim 3: "much of the system's compression and separation
    # occurs in the first million iterations" — the second-to-last
    # checkpoint (the scaled 17M mark) already realizes most of the
    # total improvement.
    total_drop = rows[0]["hetero_density"] - rows[-1]["hetero_density"]
    early_drop = rows[0]["hetero_density"] - rows[2]["hetero_density"]
    assert early_drop > 0.5 * total_drop
