"""E13 — zero-copy sweep engine: codec and checkpoint throughput.

Measures the binary columnar codec (:mod:`repro.util.codec`) against
the legacy JSON path on the engine's hot shapes: a full cell checkpoint
(final configuration plus a snapshot stack) encoded, decoded, and fully
materialized back into ``ParticleSystem`` objects, plus the on-disk
write/read cycle through the engine's checkpoint helpers.

The guard test exports a machine-readable perf baseline,
``benchmarks/results/BENCH_engine.json`` (versioned payload envelope;
see ``docs/performance.md`` for the schema), and *asserts* a floor at
n = 400 with 8 snapshots:

- binary over JSON full round-trip (encode + decode + materialize):
  at least ``REPRO_ENGINE_SPEEDUP_MIN`` (default 2.0 — chosen to
  absorb shared-runner noise below the ~3x the columnar codec
  delivers on quiet hardware).

Like the kernel guard, the assertion uses best-of-N wall timing so it
also runs under ``--benchmark-disable`` in CI.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR
from repro.experiments.parallel import (
    CellTask,
    read_checkpoint_payload,
    run_cell,
    task_payload,
    write_checkpoint_payload,
)
from repro.system.initializers import hexagon_system
from repro.util import codec
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    payload_from_json,
    payload_to_json,
    save_payload,
)

#: System sizes of the codec comparison; the guard reads n = 400.
CODEC_SIZES = (100, 400)

#: Snapshot-stack depth of the benchmark payloads (a figure-2 style
#: sweep checkpoints several intermediate configurations per cell).
SNAPSHOT_DEPTH = 8

#: Default floor on the binary/JSON round-trip speedup at n=400
#: (override with the ``REPRO_ENGINE_SPEEDUP_MIN`` environment
#: variable).
DEFAULT_ENGINE_SPEEDUP_MIN = 2.0

#: Schema version of the BENCH_engine.json payload body.
BENCH_VERSION = 1

#: Round-trips per timed round / timing rounds of the guard.
GUARD_REPS = 30
GUARD_ROUNDS = 5


def _git_commit() -> str:
    """Short commit hash of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def _cell_payload(system, encode):
    """A result payload shaped like the engine's checkpoint schema."""
    return {
        "version": 1,
        "key": "e" * 24,
        "final": encode(system),
        "snapshots": [encode(system) for _ in range(SNAPSHOT_DEPTH)],
        "iterations": 10_000,
        "accepted_moves": 1234,
        "accepted_swaps": 56,
        "wall_time": 0.5,
    }


def _binary_round_trip(system):
    blob = codec.encode_checkpoint(
        _cell_payload(system, codec.encode_configuration)
    )
    payload = codec.decode_checkpoint(blob)
    codec.decode_configuration(payload["final"])
    for snapshot in payload["snapshots"]:
        codec.decode_configuration(snapshot)
    return len(blob)


def _json_round_trip(system):
    text = payload_to_json(
        _cell_payload(
            system, lambda s: configuration_to_json(s, sort_nodes=False)
        )
    )
    payload = payload_from_json(text)
    configuration_from_json(payload["final"])
    for snapshot in payload["snapshots"]:
        configuration_from_json(snapshot)
    return len(text.encode())


def _seconds_per_round_trip(system, round_trip, reps=GUARD_REPS,
                            rounds=GUARD_ROUNDS):
    """Best-of-``rounds`` seconds per full encode+decode+materialize.

    Both codecs materialize every configuration — the engine's lazy
    snapshot decode only makes the binary side *faster* than this
    measurement, so the guard is conservative.
    """
    round_trip(system)  # warm caches outside the measured region
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            round_trip(system)
        best = min(best, time.perf_counter() - start)
    return best / reps


# ----------------------------------------------------------------------
# pytest-benchmark rows
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", CODEC_SIZES)
def test_binary_checkpoint_round_trip(benchmark, n):
    system = hexagon_system(n, seed=1)
    benchmark(_binary_round_trip, system)


@pytest.mark.parametrize("n", CODEC_SIZES)
def test_json_checkpoint_round_trip(benchmark, n):
    system = hexagon_system(n, seed=1)
    benchmark(_json_round_trip, system)


@pytest.mark.parametrize("codec_name", ("binary", "json"))
def test_checkpoint_disk_cycle(benchmark, tmp_path, codec_name):
    """Write-then-read through the engine's atomic checkpoint helpers."""
    system = hexagon_system(400, seed=1)
    encode = (
        codec.encode_configuration
        if codec_name == "binary"
        else lambda s: configuration_to_json(s, sort_nodes=False)
    )
    payload = _cell_payload(system, encode)
    path = tmp_path / f"cell-bench.{'bin' if codec_name == 'binary' else 'json'}"

    def cycle():
        write_checkpoint_payload(payload, path, codec_name)
        return read_checkpoint_payload(path)

    result = benchmark(cycle)
    assert result["iterations"] == payload["iterations"]


def test_worker_dispatch_overhead(benchmark):
    """One short cell through ``task_payload`` + ``run_cell`` under the
    binary transport — the per-dispatch overhead the warm-worker cache
    and columnar payloads amortize."""
    system = hexagon_system(100, seed=1)
    task = CellTask(
        lam=4.0,
        gamma=4.0,
        replica=0,
        seed=7,
        steps=200,
        system_json=configuration_to_json(system, sort_nodes=False),
    )
    benchmark(lambda: run_cell(task_payload(task, codec="binary")))


# ----------------------------------------------------------------------
# Guard + machine-readable baseline
# ----------------------------------------------------------------------


def test_engine_codec_speedup_guard_and_baseline():
    """Measure both codecs, export BENCH_engine.json, assert the floor."""
    threshold = float(
        os.environ.get(
            "REPRO_ENGINE_SPEEDUP_MIN", DEFAULT_ENGINE_SPEEDUP_MIN
        )
    )
    cells = []
    speedups = {}
    for n in CODEC_SIZES:
        system = hexagon_system(n, seed=1)
        binary_seconds = _seconds_per_round_trip(system, _binary_round_trip)
        json_seconds = _seconds_per_round_trip(system, _json_round_trip)
        binary_bytes = _binary_round_trip(system)
        json_bytes = _json_round_trip(system)
        cells.extend(
            [
                {
                    "n": n,
                    "codec": "binary",
                    "snapshots": SNAPSHOT_DEPTH,
                    "seconds_per_round_trip": binary_seconds,
                    "checkpoint_bytes": binary_bytes,
                },
                {
                    "n": n,
                    "codec": "json",
                    "snapshots": SNAPSHOT_DEPTH,
                    "seconds_per_round_trip": json_seconds,
                    "checkpoint_bytes": json_bytes,
                },
            ]
        )
        speedups[str(n)] = json_seconds / binary_seconds

    payload = {
        "benchmark": "engine_codec",
        "version": BENCH_VERSION,
        "snapshots": SNAPSHOT_DEPTH,
        "reps": GUARD_REPS,
        "rounds": GUARD_ROUNDS,
        "timing": "best-of-rounds wall clock",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": sys.platform,
        "git_commit": _git_commit(),
        "cells": cells,
        "speedups": speedups,
        "speedup_min": threshold,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    save_payload(payload, RESULTS_DIR / "BENCH_engine.json")

    table = [
        f"n={cell['n']:>4} codec={cell['codec']:<6} "
        f"{cell['seconds_per_round_trip'] * 1e3:>8.3f} ms/round-trip "
        f"{cell['checkpoint_bytes']:>8,} bytes"
        for cell in cells
    ]
    summary = "\n".join(
        table
        + [
            f"binary/json speedup n={n}: {speedups[str(n)]:.2f}x"
            for n in CODEC_SIZES
        ]
    )
    print(f"\n=== engine_codec ===\n{summary}")

    measured = speedups["400"]
    assert measured >= threshold, (
        f"binary codec speedup {measured:.2f}x at n=400 "
        f"({SNAPSHOT_DEPTH} snapshots) is below the {threshold:.2f}x "
        f"floor (REPRO_ENGINE_SPEEDUP_MIN overrides); see "
        f"BENCH_engine.json for the full measurement"
    )
