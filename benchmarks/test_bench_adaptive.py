"""E12 adaptive mode — wall-clock savings of convergence-based stopping.

Runs the same small (λ, γ) sweep twice through the parallel engine: once
at the fixed budget and once under ``--adaptive`` (stop when the
streaming diagnostics reach the ESS target, warm-starting down the
ladder).  The guard exports a machine-readable baseline,
``benchmarks/results/BENCH_adaptive.json`` (versioned payload envelope;
see ``docs/performance.md`` for the schema), and asserts:

- every cell stops with reason ``converged`` (the ESS target is
  reached inside the budget — the acceptance bar of the adaptive mode);
- the adaptive sweep's wall clock beats the fixed sweep by at least
  ``REPRO_ADAPTIVE_SPEEDUP_MIN`` (default 2.0 — the separated-regime
  cells of this grid converge within a small fraction of the budget,
  so quiet hardware measures well above the floor).

The statistical half of the adaptive contract (stopped ensembles sample
the same observables as fixed-budget ensembles) lives in
``tests/test_adaptive.py``; this file only meters time.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR
from repro.core.separation_chain import SeparationChain
from repro.experiments.parallel import CellTask, execute_cells
from repro.obs.convergence import (
    STOP_CONVERGED,
    ChainDiagnostics,
    DiagnosticsConfig,
    StopCondition,
)
from repro.system.initializers import random_blob_system
from repro.util.serialization import configuration_to_json, save_payload

#: The sweep: both proven regimes plus the λγ > 1 / γ < 1 cross terms.
LAMBDAS = (2.5, 4.0)
GAMMAS = (0.5, 4.0)
N = 48
BUDGET = 150_000

#: Stop rule of the measured sweep.  The burn-in floor dominates the
#: adaptive runtime, so the measured speedup is roughly
#: ``BUDGET / min_iterations`` with the diagnostics overhead folded in.
STOP = StopCondition(ess_target=10.0, geweke_max=50.0, min_iterations=10_000)

#: Default floor on the fixed/adaptive wall-clock ratio (override with
#: the ``REPRO_ADAPTIVE_SPEEDUP_MIN`` environment variable).
DEFAULT_ADAPTIVE_SPEEDUP_MIN = 2.0

#: Schema version of the BENCH_adaptive.json payload body.
BENCH_VERSION = 1


def _git_commit() -> str:
    """Short commit hash of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def _tasks():
    return [
        CellTask(
            lam=lam,
            gamma=gamma,
            replica=0,
            seed=9200 + index,
            steps=BUDGET,
            system_json=configuration_to_json(
                random_blob_system(N, seed=2018), sort_nodes=False
            ),
            label=f"lam={lam} gamma={gamma}",
        )
        for index, (lam, gamma) in enumerate(
            (lam, gamma) for lam in LAMBDAS for gamma in GAMMAS
        )
    ]


# ----------------------------------------------------------------------
# pytest-benchmark row: one adaptive cell end to end
# ----------------------------------------------------------------------


def test_adaptive_cell(benchmark):
    """One chain run to its stop condition (small budget: bench row)."""

    def run():
        system = random_blob_system(N, seed=2018)
        chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=11)
        chain.instrument(
            diagnostics=ChainDiagnostics(DiagnosticsConfig(stride=500))
        )
        return chain.run_until(
            40_000, StopCondition(ess_target=10.0, geweke_max=50.0)
        )

    reason = benchmark(run)
    assert reason in (STOP_CONVERGED, "budget")


# ----------------------------------------------------------------------
# Guard + machine-readable baseline
# ----------------------------------------------------------------------


def test_adaptive_speedup_guard_and_baseline():
    """Fixed vs adaptive sweep wall clock; export BENCH_adaptive.json."""
    threshold = float(
        os.environ.get(
            "REPRO_ADAPTIVE_SPEEDUP_MIN", DEFAULT_ADAPTIVE_SPEEDUP_MIN
        )
    )

    start = time.perf_counter()
    fixed = execute_cells(_tasks())
    fixed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    adaptive = execute_cells(_tasks(), adaptive=STOP)
    adaptive_seconds = time.perf_counter() - start

    assert all(r.iterations == BUDGET for r in fixed)
    for result in adaptive:
        assert result.stop_reason == STOP_CONVERGED, (
            f"{result.task.label}: expected every cell to reach the ESS "
            f"target inside the budget, got {result.stop_reason!r} at "
            f"{result.iterations} iterations"
        )

    executed = sum(r.iterations for r in adaptive)
    budgeted = sum(r.budget_steps for r in adaptive)
    speedup = fixed_seconds / adaptive_seconds

    cells = [
        {
            "lam": r.task.lam,
            "gamma": r.task.gamma,
            "iterations": r.iterations,
            "budget": r.budget_steps,
            "stop_reason": r.stop_reason,
            "ess_at_stop": r.ess_at_stop,
        }
        for r in adaptive
    ]
    payload = {
        "benchmark": "adaptive_sweep",
        "version": BENCH_VERSION,
        "n": N,
        "budget": BUDGET,
        "stop": STOP.to_payload(),
        "timing": "single-pass sweep wall clock, serial backend",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": sys.platform,
        "git_commit": _git_commit(),
        "fixed_seconds": fixed_seconds,
        "adaptive_seconds": adaptive_seconds,
        "executed_steps": executed,
        "budgeted_steps": budgeted,
        "step_savings": 1.0 - executed / budgeted,
        "speedup": speedup,
        "speedup_min": threshold,
        "cells": cells,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    save_payload(payload, RESULTS_DIR / "BENCH_adaptive.json")

    table = [
        f"lam={cell['lam']:<4} gamma={cell['gamma']:<4} "
        f"{cell['iterations']:>8,}/{cell['budget']:,} steps "
        f"stop={cell['stop_reason']:<10} ess={cell['ess_at_stop']:.1f}"
        for cell in cells
    ]
    summary = "\n".join(
        table
        + [
            f"fixed    {fixed_seconds:8.2f} s  ({budgeted:,} steps)",
            f"adaptive {adaptive_seconds:8.2f} s  ({executed:,} steps, "
            f"{100 * (1 - executed / budgeted):.0f}% saved)",
            f"speedup  {speedup:8.2f}x",
        ]
    )
    print(f"\n=== adaptive_sweep ===\n{summary}")

    assert speedup >= threshold, (
        f"adaptive sweep speedup {speedup:.2f}x is below the "
        f"{threshold:.2f}x floor (REPRO_ADAPTIVE_SPEEDUP_MIN overrides); "
        f"see BENCH_adaptive.json for the full measurement"
    )


if __name__ == "__main__":
    pytest.main([__file__, "-q", "-s", "--benchmark-disable"])
