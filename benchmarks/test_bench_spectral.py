"""E13 — spectral gaps across the phase diagram (§5 mixing discussion).

The paper cannot bound M's mixing time rigorously; on exactly
enumerable systems the spectrum is computable.  Shape claims: the gap
shrinks as γ grows (separation creates bottlenecks between mirror-image
sorted states), swaps never hurt the gap, and the Cheeger bound from the
"sorted-left vs sorted-right" cut explains the slowdown.
"""

from conftest import full_scale, write_result

from repro.markov.exact import ExactChainAnalysis
from repro.markov.spectral import (
    bottleneck_ratio,
    gap_versus_parameters,
    spectral_summary,
)

LAMBDAS = (1.5, 3.0)
GAMMAS = (1.0, 3.0, 8.0)


def _run():
    n = 5 if full_scale() else 4
    counts = [3, 2] if full_scale() else [2, 2]
    grid = gap_versus_parameters(n, counts, LAMBDAS, GAMMAS)
    no_swap = gap_versus_parameters(
        n, counts, [3.0], [8.0], swaps=False
    )[(3.0, 8.0)]

    analysis = ExactChainAnalysis(n, counts, lam=3.0, gamma=8.0)
    phi = bottleneck_ratio(
        analysis,
        in_cut=lambda s: s.hetero_total <= 1,
    )
    return n, counts, grid, no_swap, phi


def test_spectral_gaps(benchmark):
    n, counts, grid, no_swap, phi = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    lines = [f"exact spectrum on n={n}, counts={tuple(counts)}"]
    lines.append(f"{'lambda':>7}  {'gamma':>6}  {'gap':>9}  {'t_rel':>8}")
    for (lam, gamma), summary in sorted(grid.items()):
        lines.append(
            f"{lam:>7.2f}  {gamma:>6.2f}  {summary.spectral_gap:>9.6f}  "
            f"{summary.relaxation_time:>8.1f}"
        )
    lines.append(
        f"no-swap gap at (3, 8): {no_swap.spectral_gap:.6f} "
        f"(with swaps: {grid[(3.0, 8.0)].spectral_gap:.6f})"
    )
    lines.append(
        f"Cheeger: gap <= 2*phi(sorted cut) = {2 * phi:.6f} at (3, 8)"
    )
    write_result("spectral_gaps", "\n".join(lines))

    # Gap shrinks with gamma at both lambdas.
    for lam in LAMBDAS:
        gaps = [grid[(lam, gamma)].spectral_gap for gamma in GAMMAS]
        assert gaps[0] > gaps[-1], (lam, gaps)
    # Swaps never hurt.
    assert grid[(3.0, 8.0)].spectral_gap >= no_swap.spectral_gap - 1e-12
    # Cheeger bound is respected.
    assert grid[(3.0, 8.0)].spectral_gap <= 2 * phi + 1e-12
