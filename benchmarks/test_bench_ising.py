"""E9 — the high-temperature expansion and Ising correspondence.

Verifies the HT identity Z_spin = Z_HT exactly on triangular-lattice
patches (the rewriting behind Theorem 15), and reproduces the fixed-shape
conditional law of the chain as a fixed-magnetization Ising model:
expected heterogeneous edges fall monotonically in γ.
"""

import math

from conftest import full_scale, write_result

from repro.analysis.ising import (
    expected_heterogeneous_edges,
    gamma_to_coupling,
    ising_partition_function,
    ising_partition_function_high_temperature,
)
from repro.lattice.geometry import disk, hexagon
from repro.lattice.triangular import edges_of

GAMMAS = (0.5, 79 / 81, 1.0, 81 / 79, 2.0, 4.0, 8.0)


def _lattice_patch(n):
    nodes = sorted(hexagon(n))
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[a], index[b]) for a, b in edges_of(nodes)]
    return len(nodes), edges


def _run():
    patch_size = 16 if full_scale() else 12
    num_nodes, edges = _lattice_patch(patch_size)

    identity_errors = {}
    for gamma in GAMMAS:
        coupling = gamma_to_coupling(gamma)
        z_spin = ising_partition_function(num_nodes, edges, coupling)
        z_ht = ising_partition_function_high_temperature(
            num_nodes, edges, coupling
        )
        identity_errors[gamma] = abs(z_spin - z_ht) / z_spin

    hetero_curve = {
        gamma: expected_heterogeneous_edges(
            num_nodes, edges, num_nodes // 2, gamma
        )
        for gamma in GAMMAS
    }
    return num_nodes, len(edges), identity_errors, hetero_curve


def test_high_temperature_expansion(benchmark):
    num_nodes, num_edges, identity_errors, hetero_curve = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    lines = [
        f"patch: {num_nodes} nodes, {num_edges} edges",
        f"{'gamma':>8}  {'HT identity rel err':>20}  {'E[h] at half-half':>18}",
    ]
    for gamma in GAMMAS:
        lines.append(
            f"{gamma:>8.4f}  {identity_errors[gamma]:>20.2e}  "
            f"{hetero_curve[gamma]:>18.3f}"
        )
    write_result("ising_high_temperature", "\n".join(lines))

    assert all(err < 1e-10 for err in identity_errors.values())
    ordered = [hetero_curve[g] for g in GAMMAS]
    assert all(a >= b for a, b in zip(ordered, ordered[1:])), (
        "E[h] must be non-increasing in gamma"
    )
    # γ < 1 (anti-ferromagnetic) pushes h above the neutral value.
    assert hetero_curve[0.5] > hetero_curve[1.0] > hetero_curve[8.0]
