"""E12 — engineering throughput of the simulation engines.

Measures steps/second of the optimized centralized chain, the
locality-enforcing distributed runner, and a concurrent round, plus the
incremental-counter advantage over recomputation.  These are classic
pytest-benchmark microbenchmarks (multiple rounds, statistics reported
in the benchmark table).
"""

from repro.core.separation_chain import SeparationChain
from repro.distributed import ConcurrentRunner, DistributedRunner
from repro.system.initializers import hexagon_system

STEPS = 20_000


def test_separation_chain_throughput(benchmark):
    system = hexagon_system(100, seed=1)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=1)
    benchmark(chain.run, STEPS)
    assert system.is_connected()


def test_separation_chain_step_loop_throughput(benchmark):
    """Reference path: per-step RNG draws, no batching.

    ``run`` pre-draws uniform variates in chunks and inlines the move
    loop; this benchmark drives the same chain through ``step()`` so
    the table shows what the batched fast path buys.
    """
    system = hexagon_system(100, seed=1)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=1)

    def step_loop(steps):
        step = chain.step
        for _ in range(steps):
            step()

    benchmark(step_loop, STEPS)
    assert system.is_connected()


def test_separation_chain_no_swaps_throughput(benchmark):
    system = hexagon_system(100, seed=1)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, swaps=False, seed=1)
    benchmark(chain.run, STEPS)


def test_distributed_runner_throughput(benchmark):
    system = hexagon_system(100, seed=1)
    runner = DistributedRunner(system, lam=4.0, gamma=4.0, seed=1)
    benchmark(runner.run, STEPS // 10)


def test_concurrent_round_throughput(benchmark):
    system = hexagon_system(100, seed=1)
    runner = ConcurrentRunner(system, lam=4.0, gamma=4.0, round_size=25, seed=1)
    benchmark(runner.run, 40)


def test_counter_recompute_cost(benchmark):
    """The O(n) recount the incremental counters avoid paying per step."""
    system = hexagon_system(100, seed=1)
    benchmark(system.recompute_counters)


def test_exact_perimeter_walk_cost(benchmark):
    """Boundary-walk perimeter vs the O(1) identity used in the loop."""
    system = hexagon_system(100, seed=1)
    benchmark(system.perimeter, True)
