"""E12 — engineering throughput of the simulation engines.

Measures steps/second of the optimized centralized chain, the
locality-enforcing distributed runner, and a concurrent round, plus the
incremental-counter advantage over recomputation.  These are classic
pytest-benchmark microbenchmarks (multiple rounds, statistics reported
in the benchmark table).

The kernel comparison additionally exports a machine-readable perf
baseline, ``benchmarks/results/BENCH_throughput.json`` (versioned
payload envelope; see ``docs/performance.md`` for the schema), and
*asserts* two floors at n = 100:

- grid over dict (scalar steps/sec): at least
  ``REPRO_KERNEL_SPEEDUP_MIN`` (default 1.5 — chosen to absorb
  shared-runner noise below the ~2x the kernel delivers on quiet
  hardware);
- batch *aggregate replica throughput* at R = 32 over the grid
  kernel's scalar throughput: at least ``REPRO_BATCH_SPEEDUP_MIN``
  (default 2.5, below the ~3x+ the replica-batched NumPy kernel
  delivers on quiet hardware).

Like the observability overhead guard, the assertions use best-of-N
wall timing so they also run under ``--benchmark-disable`` in CI.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR
from repro.core.batch_kernel import BatchKernel
from repro.core.separation_chain import SeparationChain
from repro.distributed import ConcurrentRunner, DistributedRunner
from repro.system.initializers import hexagon_system
from repro.util.serialization import save_payload

STEPS = 20_000

#: System sizes of the kernel comparison.
KERNEL_SIZES = (25, 100, 400)

#: Scalar kernel backends compared by the perf baseline.
KERNEL_BACKENDS = ("dict", "grid")

#: Replica count of the batch-kernel rows (matches the acceptance
#: criterion: aggregate replica throughput at n = 100, R = 32).
BATCH_REPLICAS = 32

#: Default floor on grid/dict steps-per-second at n=100 (override with
#: the ``REPRO_KERNEL_SPEEDUP_MIN`` environment variable).
DEFAULT_SPEEDUP_MIN = 1.5

#: Default floor on batch-aggregate/grid throughput at n=100, R=32
#: (override with ``REPRO_BATCH_SPEEDUP_MIN``).
DEFAULT_BATCH_SPEEDUP_MIN = 2.5

#: Schema version of the BENCH_throughput.json payload body (the
#: envelope's ``format_version`` is versioned separately).  Version 2
#: adds the batch-kernel rows (``replica_steps_per_sec``), the numpy
#: version, and the git commit hash.
BENCH_VERSION = 2


def _git_commit() -> str:
    """Short commit hash of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def _kernel_chain(n: int, kernel: str) -> SeparationChain:
    system = hexagon_system(n, seed=1)
    return SeparationChain(system, lam=4.0, gamma=4.0, seed=1, backend=kernel)


#: Steps per timed round of the speedup guard.  Longer than the
#: pytest-benchmark rows so each timing is tens of milliseconds —
#: enough for the best-of protocol to shake off scheduler noise.
GUARD_STEPS = 60_000


def _steps_per_sec(n: int, kernel: str, steps: int, rounds: int = 5) -> float:
    """Best-of-``rounds`` steps/second (robust to scheduler noise).

    A fresh chain per round keeps the workload identical across rounds
    and kernels: same seed, same trajectory, same proposal mix.
    """
    best = float("inf")
    for _ in range(rounds):
        chain = _kernel_chain(n, kernel)
        chain.run(2_000)  # warm caches and the arena build
        start = time.perf_counter()
        chain.run(steps)
        best = min(best, time.perf_counter() - start)
    return steps / best


#: Per-replica steps per timed round of the batch guard; at R = 32 each
#: round advances 32x this many aggregate steps, so a round lasts a few
#: hundred milliseconds — long enough to amortize the vectorized
#: pipeline's per-call overheads the way production sweeps do.
BATCH_GUARD_STEPS = 60_000


def _batch_replica_steps_per_sec(
    n: int, replicas: int, steps: int, rounds: int = 3
) -> float:
    """Best-of-``rounds`` *aggregate* replica-steps/second.

    The batch kernel advances all ``replicas`` trajectories in lock
    step; its unit of useful work is a replica-step, so throughput is
    ``steps * replicas / wall``.
    """
    best = float("inf")
    for _ in range(rounds):
        system = hexagon_system(n, seed=1)
        kernel = BatchKernel(system, 4.0, 4.0, replicas=replicas, seed=1)
        kernel.run(2_000)  # warm the arena, tables, and RNG buffers
        start = time.perf_counter()
        kernel.run(steps)
        best = min(best, time.perf_counter() - start)
    return steps * replicas / best


def test_separation_chain_throughput(benchmark):
    system = hexagon_system(100, seed=1)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=1)
    benchmark(chain.run, STEPS)
    assert system.is_connected()


def test_separation_chain_step_loop_throughput(benchmark):
    """Reference path: per-step RNG draws, no batching.

    ``run`` pre-draws uniform variates in chunks and inlines the move
    loop; this benchmark drives the same chain through ``step()`` so
    the table shows what the batched fast path buys.
    """
    system = hexagon_system(100, seed=1)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=1)

    def step_loop(steps):
        step = chain.step
        for _ in range(steps):
            step()

    benchmark(step_loop, STEPS)
    assert system.is_connected()


def test_separation_chain_no_swaps_throughput(benchmark):
    system = hexagon_system(100, seed=1)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, swaps=False, seed=1)
    benchmark(chain.run, STEPS)


def test_distributed_runner_throughput(benchmark):
    system = hexagon_system(100, seed=1)
    runner = DistributedRunner(system, lam=4.0, gamma=4.0, seed=1)
    benchmark(runner.run, STEPS // 10)


def test_concurrent_round_throughput(benchmark):
    system = hexagon_system(100, seed=1)
    runner = ConcurrentRunner(system, lam=4.0, gamma=4.0, round_size=25, seed=1)
    benchmark(runner.run, 40)


def test_counter_recompute_cost(benchmark):
    """The O(n) recount the incremental counters avoid paying per step."""
    system = hexagon_system(100, seed=1)
    benchmark(system.recompute_counters)


def test_exact_perimeter_walk_cost(benchmark):
    """Boundary-walk perimeter vs the O(1) identity used in the loop."""
    system = hexagon_system(100, seed=1)
    benchmark(system.perimeter, True)


# ----------------------------------------------------------------------
# Kernel comparison: dict vs grid vs batch (perf baseline + guards)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", KERNEL_SIZES)
@pytest.mark.parametrize("kernel", KERNEL_BACKENDS)
def test_kernel_throughput(benchmark, n, kernel):
    """Side-by-side pytest-benchmark rows per (size, kernel)."""
    chain = _kernel_chain(n, kernel)
    chain.run(2_000)  # build the arena outside the measured region
    benchmark(chain.run, STEPS)
    assert chain.system.is_connected()


@pytest.mark.parametrize("n", KERNEL_SIZES)
def test_batch_kernel_throughput(benchmark, n):
    """pytest-benchmark row for the replica-batched kernel at R = 32.

    Note the unit mismatch against the scalar rows above: one call here
    advances ``STEPS`` steps in *each* of the 32 replicas, so divide
    the reported time by 32 before comparing per-replica cost.
    """
    system = hexagon_system(n, seed=1)
    kernel = BatchKernel(system, 4.0, 4.0, replicas=BATCH_REPLICAS, seed=1)
    kernel.run(2_000)
    benchmark(kernel.run, STEPS)
    check = kernel.export_system(0)
    assert check.is_connected()


def test_kernel_speedup_guard_and_baseline():
    """Measure all kernels, export BENCH_throughput.json, assert floors.

    The exported payload is the machine-readable perf trajectory future
    PRs diff against: per-(n, kernel) steps/sec (aggregate
    ``replica_steps_per_sec`` for the batch rows) plus per-size
    speedups, wrapped in the repo's versioned payload envelope.
    """
    threshold = float(
        os.environ.get("REPRO_KERNEL_SPEEDUP_MIN", DEFAULT_SPEEDUP_MIN)
    )
    batch_threshold = float(
        os.environ.get("REPRO_BATCH_SPEEDUP_MIN", DEFAULT_BATCH_SPEEDUP_MIN)
    )
    cells = []
    speedups = {}
    batch_speedups = {}
    for n in KERNEL_SIZES:
        rates = {
            kernel: _steps_per_sec(n, kernel, GUARD_STEPS)
            for kernel in KERNEL_BACKENDS
        }
        for kernel, rate in rates.items():
            cells.append(
                {
                    "n": n,
                    "kernel": kernel,
                    "steps": GUARD_STEPS,
                    "steps_per_sec": rate,
                }
            )
        batch_rate = _batch_replica_steps_per_sec(
            n, BATCH_REPLICAS, BATCH_GUARD_STEPS
        )
        cells.append(
            {
                "n": n,
                "kernel": "batch",
                "replicas": BATCH_REPLICAS,
                "steps": BATCH_GUARD_STEPS,
                "replica_steps_per_sec": batch_rate,
            }
        )
        speedups[str(n)] = rates["grid"] / rates["dict"]
        batch_speedups[str(n)] = batch_rate / rates["grid"]

    payload = {
        "benchmark": "kernel_throughput",
        "version": BENCH_VERSION,
        "lam": 4.0,
        "gamma": 4.0,
        "steps": GUARD_STEPS,
        "rounds": 5,
        "timing": "best-of-rounds wall clock",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": sys.platform,
        "git_commit": _git_commit(),
        "batch_replicas": BATCH_REPLICAS,
        "cells": cells,
        "speedups": speedups,
        "batch_speedups": batch_speedups,
        "speedup_min": threshold,
        "batch_speedup_min": batch_threshold,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    save_payload(payload, RESULTS_DIR / "BENCH_throughput.json")

    table = [
        f"n={cell['n']:>4} kernel={cell['kernel']:<5} "
        f"{cell.get('steps_per_sec', cell.get('replica_steps_per_sec')):>12,.0f}"
        f" {'replica-' if cell['kernel'] == 'batch' else ''}steps/s"
        for cell in cells
    ]
    summary = "\n".join(
        table
        + [
            f"grid/dict speedup n={n}: {speedups[str(n)]:.2f}x"
            for n in KERNEL_SIZES
        ]
        + [
            f"batch/grid speedup n={n} (R={BATCH_REPLICAS}): "
            f"{batch_speedups[str(n)]:.2f}x"
            for n in KERNEL_SIZES
        ]
    )
    print(f"\n=== kernel_throughput ===\n{summary}")

    measured = speedups["100"]
    assert measured >= threshold, (
        f"grid kernel speedup {measured:.2f}x at n=100 is below the "
        f"{threshold:.2f}x floor (REPRO_KERNEL_SPEEDUP_MIN overrides); "
        f"see BENCH_throughput.json for the full measurement"
    )
    batch_measured = batch_speedups["100"]
    assert batch_measured >= batch_threshold, (
        f"batch kernel aggregate speedup {batch_measured:.2f}x at n=100, "
        f"R={BATCH_REPLICAS} is below the {batch_threshold:.2f}x floor "
        f"(REPRO_BATCH_SPEEDUP_MIN overrides); see BENCH_throughput.json "
        f"for the full measurement"
    )
