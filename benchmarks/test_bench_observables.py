"""Measurement-path microbenchmarks: observables, counters, dense traces.

The measurement hot path matters as soon as ``measure_every`` gets
small: a dense Figure-2 trace at n = 400 reads observables hundreds of
times per run, so every read must be O(1) counter arithmetic rather
than an O(n) rescan.  This module times the three layers of that path:

- the O(1) incremental counter reads (``edge_count``,
  ``heterogeneous_edge_count``, the perimeter identity) against the
  from-scratch O(n) rescans they replace;
- the single-pass ``monochromatic_cluster_sizes`` traversal (the one
  genuinely O(n) observable left in the dense path) and
  ``largest_cluster_fraction`` on top of it;
- the end-to-end dense measurement mode, ``measure_figure2``, with
  incremental counters on vs off — guarded at ≥
  ``REPRO_MEASURE_SPEEDUP_MIN`` (default 1.5; the incremental path
  measures ~5x on quiet hardware at n = 400, measure_every = 100).

Like the other wall-clock guards, the assertion uses best-of-N timing
and also runs under ``--benchmark-disable`` in CI.
"""

import os
import time

from conftest import write_result
from repro.core.separation_chain import SeparationChain
from repro.experiments.figure2 import measure_figure2
from repro.system.initializers import random_blob_system
from repro.system.observables import (
    edge_count,
    edge_count_scratch,
    heterogeneous_edge_count,
    heterogeneous_edge_count_scratch,
    largest_cluster_fraction,
    monochromatic_cluster_sizes,
)

#: System size of the observable microbenchmarks (matches the dense
#: measurement acceptance scenario).
N = 400

#: Default floor on the incremental/from-scratch dense-measurement
#: speedup (override with ``REPRO_MEASURE_SPEEDUP_MIN``).
DEFAULT_MEASURE_SPEEDUP_MIN = 1.5


def _evolved_system(n: int = N, steps: int = 20_000):
    """A mid-separation configuration: realistic cluster structure."""
    system = random_blob_system(n, seed=7)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=7)
    chain.run(steps)
    return system


def test_cluster_sizes_cost(benchmark):
    """Single-pass same-color component traversal (O(n) by necessity)."""
    system = _evolved_system()
    sizes = benchmark(monochromatic_cluster_sizes, system)
    assert sum(sum(s) for s in sizes.values()) == system.n


def test_largest_cluster_fraction_cost(benchmark):
    system = _evolved_system()
    fraction = benchmark(largest_cluster_fraction, system)
    assert 0.0 < fraction <= 1.0


def test_incremental_counter_read_cost(benchmark):
    """The O(1) reads the dense measurement path performs per row."""
    system = _evolved_system()

    def read_all():
        return (
            edge_count(system),
            heterogeneous_edge_count(system),
            system.perimeter(),
        )

    e, h, p = benchmark(read_all)
    assert e >= h >= 0 and p == 3 * system.n - 3 - e


def test_scratch_counter_read_cost(benchmark):
    """The O(n) rescans those reads replace (the honest baseline)."""
    system = _evolved_system()

    def read_all():
        return (
            edge_count_scratch(system),
            heterogeneous_edge_count_scratch(system),
        )

    e, h = benchmark(read_all)
    assert e == system.edge_total and h == system.hetero_total


def test_dense_measurement_speedup_guard():
    """measure_figure2 incremental vs from-scratch at n=400, K=100.

    Best-of-3 wall timing per mode; asserts the acceptance floor
    (incremental ≥ 1.5x faster) and writes the measured ratio to
    ``benchmarks/results/observable_speedup.txt``.
    """
    threshold = float(
        os.environ.get(
            "REPRO_MEASURE_SPEEDUP_MIN", DEFAULT_MEASURE_SPEEDUP_MIN
        )
    )
    steps = 10_000
    measure_every = 100

    def best_wall(incremental: bool) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            trace = measure_figure2(
                n=N,
                steps=steps,
                measure_every=measure_every,
                seed=2018,
                incremental=incremental,
            )
            best = min(best, time.perf_counter() - start)
            assert len(trace.rows) == steps // measure_every + 1
        return best

    scratch = best_wall(False)
    incremental = best_wall(True)
    ratio = scratch / incremental
    write_result(
        "observable_speedup",
        (
            f"dense measurement, n={N}, steps={steps}, "
            f"measure_every={measure_every}\n"
            f"from-scratch rescan per row: {scratch:.3f}s\n"
            f"incremental O(1) counters:   {incremental:.3f}s\n"
            f"speedup: {ratio:.2f}x (floor {threshold:.2f}x)"
        ),
    )
    assert ratio >= threshold, (
        f"incremental measurement speedup {ratio:.2f}x is below the "
        f"{threshold:.2f}x floor (REPRO_MEASURE_SPEEDUP_MIN overrides)"
    )
