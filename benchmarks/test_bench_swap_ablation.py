"""E3 — swap-move ablation.

Section 3.2: "Separation still occurs even when swap moves are
disallowed, but takes much longer to achieve."  Measures iterations to a
separation threshold with and without swaps, from the same start.
"""

from conftest import full_scale, write_result

from repro.analysis.estimators import time_to_threshold
from repro.core.separation_chain import SeparationChain
from repro.system.initializers import hexagon_system

THRESHOLD = 0.18  # heterogeneous-edge density marking "separated"


def _time_to_separation(swaps: bool, budget: int, step: int, seed: int):
    system = hexagon_system(60, seed=seed)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, swaps=swaps, seed=seed)
    times, values = [], []
    for i in range(budget // step):
        chain.run(step)
        times.append((i + 1) * step)
        values.append(system.hetero_total / system.edge_total)
    return time_to_threshold(times, values, THRESHOLD, "below", patience=2)


def _run():
    budget = 5_000_000 if full_scale() else 400_000
    step = budget // 80
    rows = []
    for seed in (1, 2, 3):
        with_swaps = _time_to_separation(True, budget, step, seed)
        without = _time_to_separation(False, budget, step, seed)
        rows.append((seed, with_swaps, without))
    return budget, rows


def test_swap_ablation(benchmark):
    budget, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"time to h/e <= {THRESHOLD} (budget {budget} iterations)",
        f"{'seed':>4}  {'with swaps':>12}  {'without swaps':>14}",
    ]
    for seed, with_swaps, without in rows:
        lines.append(
            f"{seed:>4}  {str(with_swaps):>12}  {str(without):>14}"
        )
    write_result("swap_ablation", "\n".join(lines))

    # Shape claims: swaps always reach the threshold in budget, and in
    # the majority of seeds strictly earlier than the no-swap run.
    assert all(w is not None for _, w, _ in rows)
    faster = sum(
        1
        for _, with_swaps, without in rows
        if without is None or with_swaps <= without
    )
    assert faster >= 2, rows
