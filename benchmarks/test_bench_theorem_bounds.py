"""E8 — Theorems 13-16: proven parameter regions versus simulation.

Evaluates the paper's closed-form conditions and runs the chain at
representative points of each proven region, checking the predicted
behavior materializes.  Also quantifies the paper's own observation that
the proven bounds "are likely not tight": the Figure 2 point (4, 4) is
unproven yet clearly separates.
"""

from conftest import full_scale, write_result

from repro.analysis.bounds import (
    predicted_regime,
    theorem13_min_alpha,
    theorem14_min_gamma,
    theorem15_min_alpha,
    theorem16_condition,
)
from repro.core.separation_chain import SeparationChain
from repro.experiments.phases import classify_phase
from repro.system.initializers import random_blob_system

POINTS = (
    (1.3, 6.0),   # proven separation (Thm 13+14): γ>4^{5/4}, λγ>6.83
    (4.0, 8.0),   # deep in the proven separation region
    (7.0, 1.0),   # proven integration (Thm 15+16)
    (10.0, 81 / 80.0),  # proven integration, γ slightly above one
    (4.0, 4.0),   # Figure 2's setting: unproven, separates in practice
    (2.0, 1.0),   # unproven, integrates in practice
)


def _run():
    iterations = 10_000_000 if full_scale() else 350_000
    n = 100 if full_scale() else 70
    rows = []
    for lam, gamma in POINTS:
        system = random_blob_system(n, seed=13)
        SeparationChain(system, lam=lam, gamma=gamma, seed=13).run(iterations)
        rows.append(
            (lam, gamma, predicted_regime(lam, gamma), classify_phase(system))
        )
    return rows


def test_theorem_bounds_vs_simulation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'lambda':>7}  {'gamma':>7}  {'proven':>11}  simulated phase",
    ]
    for lam, gamma, proven, phase in rows:
        lines.append(f"{lam:>7.2f}  {gamma:>7.3f}  {proven:>11}  {phase}")
    lines.append("")
    lines.append(
        f"Thm 13 min alpha at (1.3, 6.0): {theorem13_min_alpha(1.3, 6.0):.2f}"
    )
    lines.append(
        f"Thm 14 min gamma at (alpha=1.1, beta=8, delta=0.1): "
        f"{theorem14_min_gamma(1.1, 8.0, 0.1):.1f}"
    )
    lines.append(
        f"Thm 15 min alpha at (7.0, 1.0): {theorem15_min_alpha(7.0, 1.0):.2f}"
    )
    lines.append(
        f"Thm 16 holds at (delta=0.1, gamma=1.0): "
        f"{theorem16_condition(0.1, 1.0)}"
    )
    write_result("theorem_bounds", "\n".join(lines))

    by_point = {(lam, gamma): (proven, phase) for lam, gamma, proven, phase in rows}
    # Proven separation points separate.
    for point in ((1.3, 6.0), (4.0, 8.0)):
        proven, phase = by_point[point]
        assert proven == "separates" and phase == "compressed-separated", rows
    # Proven integration points integrate.
    for point in ((7.0, 1.0), (10.0, 81 / 80.0)):
        proven, phase = by_point[point]
        assert proven == "integrates" and phase == "compressed-integrated", rows
    # The bounds are not tight: (4, 4) is unproven yet separates.
    proven, phase = by_point[(4.0, 4.0)]
    assert proven == "unproven" and phase == "compressed-separated", rows
