"""E11 — the k-color extension (Section 5).

"Our algorithm performs well in practice for larger values of k."
Runs balanced k = 2, 3, 4 systems at λ = γ = 4 and reports the dominant
cluster fractions and interface density; each color should gather into
one near-complete cluster.
"""

from conftest import full_scale, write_result

from repro.core.potts import (
    PottsSeparationChain,
    dominant_cluster_fractions,
    interface_density,
)

KS = (2, 3, 4)


def _run():
    iterations = 5_000_000 if full_scale() else 600_000
    n = 120 if full_scale() else 72
    rows = {}
    for k in KS:
        chain = PottsSeparationChain.balanced(
            n, k=k, lam=4.0, gamma=4.0, seed=61
        )
        start_interface = interface_density(chain.system)
        chain.run(iterations)
        rows[k] = (
            start_interface,
            interface_density(chain.system),
            dominant_cluster_fractions(chain.system),
        )
        assert chain.system.is_connected()
        assert not chain.system.has_holes()
    return n, iterations, rows


def test_potts_separation(benchmark):
    n, iterations, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"n={n}, {iterations} iterations, lam=gamma=4",
        f"{'k':>2}  {'interface start':>15}  {'interface end':>13}  dominant fractions",
    ]
    for k, (start, end, fractions) in rows.items():
        fraction_text = ", ".join(f"{f:.2f}" for f in fractions)
        lines.append(f"{k:>2}  {start:>15.3f}  {end:>13.3f}  [{fraction_text}]")
    write_result("potts_kcolor", "\n".join(lines))

    for k, (start, end, fractions) in rows.items():
        # Interfaces shrink substantially for every k...
        assert end < 0.6 * start, (k, start, end)
        # ...and colors gather into large clusters.  A color may
        # transiently sit in two equal domains mid-coarsening, so the
        # minimum allows one split color while the average must be high.
        assert min(fractions) >= 0.45, (k, fractions)
        assert sum(fractions) / k > 0.7, (k, fractions)
