"""E6 — Lemmas 1 and 2: perimeter geometry.

Exact perimeter censuses against the ν^k counting bound, and the
hexagon construction against the 2√3·√n bound across six orders of
magnitude.
"""

import math

from conftest import full_scale, write_result

from repro.experiments.lemmas import (
    check_lemma1_counting_bound,
    check_lemma2_constructive_bound,
    smallest_valid_nu,
)


def _run_lemma1():
    max_n = 8 if full_scale() else 7
    checks = {}
    for n in range(2, max_n + 1):
        checks[n] = (
            check_lemma1_counting_bound(n, nu=2 + math.sqrt(2)),
            smallest_valid_nu(n),
        )
    return checks


def test_lemma1_counting_bound(benchmark):
    checks = benchmark.pedantic(_run_lemma1, rounds=1, iterations=1)

    lines = [f"{'n':>3}  {'holds at nu=3.41':>16}  {'smallest valid nu':>18}"]
    for n, (check, nu) in checks.items():
        lines.append(f"{n:>3}  {str(check.holds):>16}  {nu:>18.2f}")
    write_result("lemma1_counting", "\n".join(lines))

    assert all(check.holds for check, _ in checks.values())
    # The empirical growth constant approaches but stays below 2+√2.
    assert all(nu <= 2 + math.sqrt(2) for _, nu in checks.values())


def test_lemma2_perimeter_bound(benchmark):
    sizes = (1, 2, 5, 7, 19, 37, 100, 1_000, 10_000, 100_000)

    def run():
        return {n: check_lemma2_constructive_bound(n) for n in sizes}

    checks = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'n':>7}  {'constructed p':>13}  {'p_min':>6}  {'2sqrt(3n)':>10}"]
    for n, check in checks.items():
        lines.append(
            f"{n:>7}  {check.constructed_perimeter:>13}  "
            f"{check.minimum:>6}  {check.bound:>10.1f}"
        )
    write_result("lemma2_perimeter", "\n".join(lines))

    assert all(check.holds for check in checks.values())
    # The bound is asymptotically tight: ratio -> 1 for large n.
    big = checks[100_000]
    assert big.constructed_perimeter / big.bound > 0.95
