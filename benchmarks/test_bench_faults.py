"""E16 — crash-stop robustness (extension study).

Not a paper experiment: the amoebot model in the paper has no failure
story.  This ablation quantifies how the separation objective degrades
when a fraction of particles crash-stop (occupy their nodes but never
activate).  Shape claims: moderate crash fractions barely hurt the
endpoint quality, heavy ones destroy it, and invariants hold at every
level of damage.
"""

from conftest import full_scale, write_result

from repro.distributed.faults import degradation_curve

FRACTIONS = (0.0, 0.1, 0.25, 0.5)


def _run():
    iterations = 3_000_000 if full_scale() else 300_000
    n = 100 if full_scale() else 80
    return n, iterations, degradation_curve(
        n=n,
        crash_fractions=FRACTIONS,
        iterations=iterations,
        seed=29,
    )


def test_crash_stop_degradation(benchmark):
    n, iterations, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"n={n}, {iterations} iterations, lam=gamma=4",
        f"{'crashed':>8}  {'h/e':>6}  {'demixing':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['crash_fraction']:>8.0%}  {row['hetero_density']:>6.3f}  "
            f"{row['demixing_index']:>8.2f}"
        )
    write_result("fault_robustness", "\n".join(lines))

    by_fraction = {row["crash_fraction"]: row for row in rows}
    # Healthy and lightly damaged systems both demix strongly...
    assert by_fraction[0.0]["demixing_index"] > 0.5
    assert by_fraction[0.1]["demixing_index"] > 0.4
    # ...while half-dead systems are clearly worse than healthy ones.
    assert (
        by_fraction[0.5]["demixing_index"]
        < by_fraction[0.0]["demixing_index"]
    )
    assert (
        by_fraction[0.5]["hetero_density"]
        > by_fraction[0.0]["hetero_density"]
    )
