"""Instrumentation overhead guard for the chain's hot path.

The observability hooks (``SeparationChain.instrument``) are designed
to fire once per ``run()`` call — never per step — so a fully wired
chain (logger + metrics + trace) must stay within a few percent of the
uninstrumented batched fast path.  This module both benchmarks the two
variants side by side (so the pytest-benchmark table shows the gap) and
*asserts* the ratio: the guard fails if instrumentation costs more than
5 % throughput, which is the regression this subsystem promised not to
introduce.

The assertion uses best-of-N wall timing rather than the benchmark
fixture so it also runs (and guards) under ``--benchmark-disable`` in
CI.  On noisy shared runners the threshold can be relaxed via the
``REPRO_OBS_OVERHEAD_MAX`` environment variable (fractional, e.g.
``0.10`` for 10 %).
"""

import os
import time

from repro.core.separation_chain import SeparationChain
from repro.obs import Instrumentation, JsonLogger, MetricsRegistry, TraceRecorder
from repro.system.initializers import hexagon_system

STEPS = 20_000

#: Default ceiling on (instrumented - plain) / plain run time.
DEFAULT_OVERHEAD_MAX = 0.05


def _make_chain(instrumented: bool) -> SeparationChain:
    system = hexagon_system(100, seed=1)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=1)
    if instrumented:
        chain.instrument(
            Instrumentation(
                logger=JsonLogger.collecting(level="debug"),
                metrics=MetricsRegistry(),
                trace=TraceRecorder(process_name="bench"),
            )
        )
    return chain


def _best_of(chain: SeparationChain, rounds: int = 5) -> float:
    """Minimum wall time of ``rounds`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        chain.run(STEPS)
        best = min(best, time.perf_counter() - start)
    return best


def test_instrumented_chain_throughput(benchmark):
    chain = _make_chain(instrumented=True)
    benchmark(chain.run, STEPS)
    assert chain.system.is_connected()


def test_instrumentation_overhead_guard():
    threshold = float(
        os.environ.get("REPRO_OBS_OVERHEAD_MAX", DEFAULT_OVERHEAD_MAX)
    )
    # Interleave a warmup so both variants run on a warm cache.
    plain = _make_chain(instrumented=False)
    wired = _make_chain(instrumented=True)
    plain.run(STEPS)
    wired.run(STEPS)

    plain_time = _best_of(plain)
    wired_time = _best_of(wired)
    overhead = (wired_time - plain_time) / plain_time
    assert overhead < threshold, (
        f"instrumentation overhead {overhead:.1%} exceeds {threshold:.1%} "
        f"(plain {STEPS / plain_time:,.0f} steps/s, "
        f"instrumented {STEPS / wired_time:,.0f} steps/s)"
    )


def test_instrumented_trajectory_matches_plain():
    """Same seed, same trajectory — the other half of the guarantee."""
    plain = _make_chain(instrumented=False)
    wired = _make_chain(instrumented=True)
    plain.run(STEPS)
    wired.run(STEPS)
    assert dict(plain.system.colors) == dict(wired.system.colors)
    assert plain.accepted_moves == wired.accepted_moves
    assert plain.accepted_swaps == wired.accepted_swaps
