"""Instrumentation overhead guard for the chain's hot path.

The observability hooks (``SeparationChain.instrument``) are designed
to fire once per ``run()`` call — never per step — so a fully wired
chain (logger + metrics + trace) must stay within a few percent of the
uninstrumented batched fast path.  This module both benchmarks the two
variants side by side (so the pytest-benchmark table shows the gap) and
*asserts* the ratio: the guard fails if instrumentation costs more than
5 % throughput, which is the regression this subsystem promised not to
introduce.

The assertion uses best-of-N CPU timing on a *single* chain that
alternates between detached and attached hooks each round, rather
than the benchmark fixture, so it also runs (and guards) under
``--benchmark-disable`` in CI.  Timing one object sidesteps the
allocation-layout luck that makes two "identical" chains differ by
several percent, and the attach/detach alternation works because the
hooks are bit-identity-preserving: the trajectory is the same either
way, so the comparison is pure overhead.  On noisy shared runners the
threshold can be relaxed via the ``REPRO_OBS_OVERHEAD_MAX``
environment variable (fractional, e.g. ``0.10`` for 10 %).
"""

import os
import time

from repro.core.separation_chain import SeparationChain
from repro.obs import Instrumentation, JsonLogger, MetricsRegistry, TraceRecorder
from repro.system.initializers import hexagon_system

STEPS = 20_000

#: Default ceiling on (instrumented - plain) / plain run time.
DEFAULT_OVERHEAD_MAX = 0.05


def _make_chain(instrumented: bool) -> SeparationChain:
    system = hexagon_system(100, seed=1)
    chain = SeparationChain(system, lam=4.0, gamma=4.0, seed=1)
    if instrumented:
        chain.instrument(
            Instrumentation(
                logger=JsonLogger.collecting(level="debug"),
                metrics=MetricsRegistry(),
                trace=TraceRecorder(process_name="bench"),
            )
        )
    return chain


def _toggled_overhead(attach, rounds: int = 10) -> "tuple[float, float]":
    """Best-of-N CPU times of one chain, hooks toggled every round.

    ``attach`` receives the chain and wires the variant under test;
    ``chain.instrument()`` detaches everything for the baseline
    rounds.  Using a single chain keeps the memory layout identical
    across variants (two separately allocated chains can differ by
    several percent from cache-line luck alone), CPU time ignores
    co-tenant load, and the round-robin toggle spreads frequency
    drift over both variants.  Returns (plain_best, attached_best).
    """
    chain = _make_chain(instrumented=False)
    chain.run(STEPS)  # warm the caches and the RNG buffer
    best_plain = best_attached = float("inf")
    for _ in range(rounds):
        chain.instrument()  # detach all hooks
        start = time.process_time()
        chain.run(STEPS)
        best_plain = min(best_plain, time.process_time() - start)
        attach(chain)
        start = time.process_time()
        chain.run(STEPS)
        best_attached = min(best_attached, time.process_time() - start)
    chain.instrument()
    return best_plain, best_attached


def _assert_overhead(attach, threshold: float, what: str) -> None:
    """Measure toggled overhead, re-measuring once on a miss.

    A single measurement can land a few percent high purely from a
    co-tenant burst; retries shrink that flake probability
    geometrically while a genuine regression fails every pass.
    """
    for attempt in range(3):
        plain_time, attached_time = _toggled_overhead(attach)
        overhead = (attached_time - plain_time) / plain_time
        if overhead < threshold:
            return
    raise AssertionError(
        f"{what} overhead {overhead:.1%} exceeds {threshold:.1%} "
        f"(plain {STEPS / plain_time:,.0f} steps/s, "
        f"attached {STEPS / attached_time:,.0f} steps/s)"
    )


def test_instrumented_chain_throughput(benchmark):
    chain = _make_chain(instrumented=True)
    benchmark(chain.run, STEPS)
    assert chain.system.is_connected()


def test_instrumentation_overhead_guard():
    threshold = float(
        os.environ.get("REPRO_OBS_OVERHEAD_MAX", DEFAULT_OVERHEAD_MAX)
    )
    obs = Instrumentation(
        logger=JsonLogger.collecting(level="debug"),
        metrics=MetricsRegistry(),
        trace=TraceRecorder(process_name="bench"),
    )
    _assert_overhead(
        lambda chain: chain.instrument(obs), threshold, "instrumentation"
    )


def test_instrumented_trajectory_matches_plain():
    """Same seed, same trajectory — the other half of the guarantee."""
    plain = _make_chain(instrumented=False)
    wired = _make_chain(instrumented=True)
    plain.run(STEPS)
    wired.run(STEPS)
    assert dict(plain.system.colors) == dict(wired.system.colors)
    assert plain.accepted_moves == wired.accepted_moves
    assert plain.accepted_swaps == wired.accepted_swaps


def _make_diagnosed_chain(diag_every: int = 2_000) -> SeparationChain:
    """Fully wired chain *plus* streaming convergence diagnostics."""
    from repro.obs.convergence import ChainDiagnostics, DiagnosticsConfig

    chain = _make_chain(instrumented=False)
    chain.instrument(
        Instrumentation(
            logger=JsonLogger.collecting(level="debug"),
            metrics=MetricsRegistry(),
            trace=TraceRecorder(process_name="bench"),
        ),
        diagnostics=ChainDiagnostics(DiagnosticsConfig(stride=diag_every)),
    )
    return chain


def test_diagnosed_chain_throughput(benchmark):
    chain = _make_diagnosed_chain()
    benchmark(chain.run, STEPS)
    assert chain.system.is_connected()


def test_diagnostics_overhead_guard():
    """Convergence sampling at the default-ish stride stays under 5%.

    The diagnostics segment each ``run()`` at stride boundaries (with
    the refill horizon preserving RNG draw-ahead), so the cost scales
    with STEPS/stride ticks — estimator pushes per tick plus a full
    verdict every ``verdict_every`` ticks, far off the per-step hot
    path.  The attached variant carries the full logger + metrics +
    trace bundle *and* the diagnostics, so this bounds the complete
    observability stack, not just the sampler.
    """
    from repro.obs.convergence import ChainDiagnostics, DiagnosticsConfig

    threshold = float(
        os.environ.get("REPRO_OBS_OVERHEAD_MAX", DEFAULT_OVERHEAD_MAX)
    )
    obs = Instrumentation(
        logger=JsonLogger.collecting(level="debug"),
        metrics=MetricsRegistry(),
        trace=TraceRecorder(process_name="bench"),
    )
    diag = ChainDiagnostics(DiagnosticsConfig(stride=2_000))
    _assert_overhead(
        lambda chain: chain.instrument(obs, diagnostics=diag),
        threshold,
        "diagnostics",
    )


def test_diagnosed_trajectory_matches_plain():
    """Diagnostics at any stride leave the trajectory bit-identical."""
    plain = _make_chain(instrumented=False)
    diagnosed = _make_diagnosed_chain(diag_every=777)
    plain.run(STEPS)
    diagnosed.run(STEPS)
    assert dict(plain.system.colors) == dict(diagnosed.system.colors)
    assert plain.accepted_moves == diagnosed.accepted_moves
    assert plain.accepted_swaps == diagnosed.accepted_swaps
    assert plain.rng.getstate() == diagnosed.rng.getstate()
