"""E4 — the PODC '16 compression baseline.

Sweeps λ for the homogeneous compression chain from a line start and
reports the final compression factor α.  Shape claims from
[CannonDRR16]: compression for λ > 2+√2 ≈ 3.41, expansion for λ < 2.17,
with α decreasing in λ.  Also verifies the separation chain at γ = 1
degenerates to the compression chain step-for-step.
"""

from conftest import full_scale, write_result

from repro.analysis.compression_metric import alpha_of
from repro.core.compression_chain import CompressionChain
from repro.core.separation_chain import SeparationChain
from repro.system.initializers import hexagon_system

LAMBDAS = (1.0, 1.5, 2.17, 3.41, 4.0, 6.0)


def _run():
    iterations = 3_000_000 if full_scale() else 500_000
    n = 100 if full_scale() else 50
    alphas = {}
    for lam in LAMBDAS:
        chain = CompressionChain.from_line(n, lam=lam, seed=7)
        chain.run(iterations)
        alphas[lam] = alpha_of(chain.system)
    return iterations, n, alphas


def test_compression_lambda_sweep(benchmark):
    iterations, n, alphas = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [f"compression from a line of n={n} after {iterations} iterations"]
    lines.append(f"{'lambda':>8}  {'alpha':>7}")
    for lam, alpha in alphas.items():
        lines.append(f"{lam:>8.2f}  {alpha:>7.2f}")
    write_result("compression_baseline", "\n".join(lines))

    # Shape claims: strongly biased runs compress, unbiased ones do not,
    # and α at λ=6 beats α at λ=1.5 by a wide margin.  (A line start
    # converges slowly, so thresholds allow residual relaxation.)
    assert alphas[6.0] < 2.2
    assert alphas[4.0] < 2.8
    assert alphas[1.0] > 3.0
    assert alphas[6.0] < alphas[1.5] - 0.8


def test_gamma_one_equivalence(benchmark):
    """The separation chain at γ=1 IS the compression chain."""

    def run_pair():
        a = hexagon_system(30, counts=[30, 0], seed=5, shuffle=False)
        b = a.copy()
        CompressionChain(a, lam=4.0, seed=123).run(50_000)
        SeparationChain(b, lam=4.0, gamma=1.0, swaps=False, seed=123).run(50_000)
        return a, b

    a, b = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert sorted(a.colors) == sorted(b.colors)
