"""E7 — the cluster expansion machinery (Theorems 10-11, Lemma 12).

Numerically exercises the paper's statistical-physics toolkit with the
natural surrogate loop weights w(ξ) = γ^{-|ξ|}:

* the Kotecký–Preiss condition: satisfiable constants c(γ) shrink as γ
  grows, and no constant exists for small γ;
* convergence of the truncated cluster expansion to exact ln Ξ;
* the Theorem 11 volume/surface sandwich on concrete regions.
"""

from conftest import full_scale, write_result

from repro.analysis.cluster_expansion import (
    PolymerModel,
    find_kp_constant,
    log_partition_function,
    psi_per_edge,
    truncated_cluster_expansion,
    volume_surface_split,
)
from repro.analysis.polymers import (
    REFERENCE_EDGE,
    all_polymers_in_region,
    enumerate_loops_through_edge,
    loop_closure_size,
    triangle_edges,
)
from repro.lattice.geometry import disk
from repro.lattice.triangular import edge_key, neighbors

GAMMAS = (3.0, 4.0, 5.66, 8.0, 12.0, 20.0)


def _boundary_size(region_edges):
    boundary = 0
    for a, b in region_edges:
        for vertex in (a, b):
            if any(
                edge_key(vertex, nbr) not in region_edges
                for nbr in neighbors(vertex)
            ):
                boundary += 1
                break
    return boundary


def _run():
    max_loop = 10 if full_scale() else 8
    loops = enumerate_loops_through_edge(max_loop)

    kp_constants = {
        gamma: find_kp_constant(
            loops, lambda p, g=gamma: g ** (-len(p)), loop_closure_size
        )
        for gamma in GAMMAS
    }

    # Truncation convergence and the Theorem 11 sandwich at γ = 8.
    gamma = 8.0

    def weight(p):
        return gamma ** (-len(p))

    region = triangle_edges(set(disk((0, 0), 2)))
    polymers = all_polymers_in_region(region, 6, kind="loop")
    model = PolymerModel(polymers, weight, lambda a, b: a.isdisjoint(b))
    exact = log_partition_function(model)
    truncations = {
        m: truncated_cluster_expansion(model, m) for m in (1, 2, 3)
    }

    psi = psi_per_edge(
        model,
        element_of=lambda p: p,
        reference_element=REFERENCE_EDGE,
        max_cluster_size=3,
    )
    c = kp_constants[gamma]
    sandwiches = {}
    for radius in (1, 2):
        sub_region = triangle_edges(set(disk((0, 0), radius)))
        sub_polymers = all_polymers_in_region(sub_region, 6, kind="loop")
        sub_model = PolymerModel(
            sub_polymers, weight, lambda a, b: a.isdisjoint(b)
        )
        log_xi = log_partition_function(sub_model)
        sandwiches[radius] = volume_surface_split(
            log_xi,
            psi,
            volume=len(sub_region),
            boundary=_boundary_size(sub_region),
            c=c,
        ) + (log_xi,)
    return kp_constants, exact, truncations, psi, c, sandwiches


def test_cluster_expansion_suite(benchmark):
    kp_constants, exact, truncations, psi, c, sandwiches = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    lines = ["Kotecky-Preiss constants for loop weights gamma^-|xi|:"]
    for gamma, constant in kp_constants.items():
        lines.append(f"  gamma={gamma:<6} c={constant}")
    lines.append("")
    lines.append(f"ln Xi exact (disk r=2, gamma=8): {exact:.6f}")
    for m, value in truncations.items():
        lines.append(f"  truncated at cluster size {m}: {value:.6f}")
    lines.append(f"psi per edge: {psi:.6f} (|psi| <= c = {c})")
    for radius, (lower, upper, holds, log_xi) in sandwiches.items():
        lines.append(
            f"Theorem 11 sandwich r={radius}: "
            f"{lower:.4f} <= {log_xi:.4f} <= {upper:.4f} -> {holds}"
        )
    write_result("cluster_expansion", "\n".join(lines))

    # Shape claims: KP constants exist for large γ, shrink as γ grows,
    # and disappear for γ <= 3 (heavy weights).
    assert kp_constants[3.0] is None
    assert kp_constants[8.0] is not None
    assert kp_constants[20.0] < kp_constants[8.0]
    # Truncation error decreases and is tiny by cluster size 3.
    errors = [abs(truncations[m] - exact) for m in (1, 2, 3)]
    assert errors[2] < errors[0]
    assert errors[2] < 1e-4
    # Theorem 11 sandwich holds on every region tested.
    assert all(holds for (_, _, holds, _) in sandwiches.values())
    assert abs(psi) <= c
